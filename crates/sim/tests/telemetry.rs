//! Exact-count checks for the `vlsa.sim.*` profiling metrics, isolated
//! in their own test binary.

use std::sync::Mutex;
use vlsa_netlist::Netlist;
use vlsa_sim::{adder_sums, fault_coverage, simulate, Stimulus};
use vlsa_telemetry::{Json, ScopedRecorder};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A gate-level ripple-carry adder following the harness port scheme.
fn ripple(nbits: usize) -> Netlist {
    let mut nl = Netlist::new("ripple");
    let a = nl.input_bus("a", nbits);
    let b = nl.input_bus("b", nbits);
    let mut carry = nl.constant(false);
    let mut sum = Vec::new();
    for i in 0..nbits {
        let x = nl.xor2(a[i], b[i]);
        sum.push(nl.xor2(x, carry));
        carry = nl.maj3(a[i], b[i], carry);
    }
    for (i, s) in sum.iter().enumerate() {
        nl.output(format!("s[{i}]"), *s);
    }
    nl.output("cout", carry);
    nl
}

#[test]
fn simulate_counts_passes_and_gate_evals() {
    let _guard = serial();
    let scope = ScopedRecorder::install();

    let mut nl = Netlist::new("xor");
    let a = nl.input("a");
    let b = nl.input("b");
    let x = nl.xor2(a, b);
    let y = nl.and2(x, a);
    nl.output("y", y);
    let mut stim = Stimulus::new();
    stim.set("a", 0b1100).set("b", 0b1010);
    simulate(&nl, &stim).expect("simulate");
    simulate(&nl, &stim).expect("simulate");

    let registry = scope.registry();
    assert_eq!(registry.counter_value("vlsa.sim.passes"), 2);
    // Two evaluated cells (xor, and) per pass; inputs don't count.
    assert_eq!(registry.counter_value("vlsa.sim.gate_evals"), 4);

    let snapshot = scope.snapshot();
    let per_pass = snapshot
        .get("histograms")
        .and_then(|h| h.get("vlsa.sim.gate_evals_per_pass"))
        .expect("per-pass histogram");
    assert_eq!(per_pass.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(per_pass.get("max").and_then(Json::as_u64), Some(2));
    let sweep = snapshot
        .get("histograms")
        .and_then(|h| h.get("vlsa.sim.sweep_ns"))
        .expect("sweep timing histogram");
    assert_eq!(sweep.get("count").and_then(Json::as_u64), Some(2));
}

#[test]
fn adder_sums_records_lane_utilization() {
    let _guard = serial();
    let scope = ScopedRecorder::install();

    let nl = ripple(8);
    // 130 pairs = two full 64-lane passes plus a 2-lane tail.
    let pairs: Vec<(Vec<u64>, Vec<u64>)> = (0..130u64)
        .map(|i| (vec![i & 0xFF], vec![(i * 7) & 0xFF]))
        .collect();
    adder_sums(&nl, 8, &pairs).expect("simulate");

    let registry = scope.registry();
    let lanes = registry.histogram("vlsa.sim.lanes_per_pass", vlsa_telemetry::DEFAULT_BUCKETS);
    assert_eq!(lanes.count(), 3);
    assert_eq!(lanes.sum(), 130);
    assert_eq!(lanes.min(), Some(2));
    assert_eq!(lanes.max(), Some(64));
    // Each batched pass is one engine pass.
    assert_eq!(registry.counter_value("vlsa.sim.passes"), 3);
}

#[test]
fn fault_coverage_counts_injected_propagated_masked() {
    let _guard = serial();
    let scope = ScopedRecorder::install();

    let mut nl = Netlist::new("andor");
    let a = nl.input("a");
    let b = nl.input("b");
    let x = nl.and2(a, b);
    nl.output("x", x);
    let mut stim = Stimulus::new();
    stim.set("a", 0).set("b", 0); // single all-zero vector
    let cov = fault_coverage(&nl, &stim).expect("coverage");
    assert_eq!((cov.detected, cov.total), (1, 2));

    let registry = scope.registry();
    assert_eq!(registry.counter_value("vlsa.sim.faults_injected"), 2);
    assert_eq!(registry.counter_value("vlsa.sim.faults_propagated"), 1);
    assert_eq!(registry.counter_value("vlsa.sim.faults_masked"), 1);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = serial();
    assert!(!vlsa_telemetry::is_enabled());
    let before = vlsa_telemetry::recorder().counter_value("vlsa.sim.passes");
    let nl = ripple(4);
    let pairs = vec![(vec![1u64], vec![2u64])];
    adder_sums(&nl, 4, &pairs).expect("simulate");
    assert_eq!(
        vlsa_telemetry::recorder().counter_value("vlsa.sim.passes"),
        before
    );
}
