//! Combinational equivalence checking between two netlists.
//!
//! Two netlists are compared by *port name*: they must expose the same
//! primary input and output names, and are checked either exhaustively
//! (few inputs) or on random vectors. Used to verify that structurally
//! different adder architectures implement the same function, and that
//! error recovery makes the speculative adder exact.

use crate::{simulate, SimulateError, Stimulus};
use rand::Rng;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use vlsa_netlist::Netlist;

/// Why two netlists failed equivalence checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivError {
    /// The interfaces differ (input or output name sets are not equal).
    InterfaceMismatch {
        /// Ports present in exactly one of the two netlists.
        differing: Vec<String>,
    },
    /// A simulation failed.
    Simulate(SimulateError),
    /// A counterexample was found.
    Mismatch {
        /// The output port that differs.
        output: String,
        /// Input assignment, as `(port, bit)` pairs.
        assignment: Vec<(String, bool)>,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::InterfaceMismatch { differing } => {
                write!(f, "interfaces differ on ports: {differing:?}")
            }
            EquivError::Simulate(e) => write!(f, "simulation failed: {e}"),
            EquivError::Mismatch { output, .. } => {
                write!(f, "outputs differ on `{output}`")
            }
        }
    }
}

impl Error for EquivError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EquivError::Simulate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimulateError> for EquivError {
    fn from(e: SimulateError) -> Self {
        EquivError::Simulate(e)
    }
}

fn check_interfaces(left: &Netlist, right: &Netlist) -> Result<(), EquivError> {
    let li: BTreeSet<_> = left
        .primary_inputs()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let ri: BTreeSet<_> = right
        .primary_inputs()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let lo: BTreeSet<_> = left
        .primary_outputs()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let ro: BTreeSet<_> = right
        .primary_outputs()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let mut differing: Vec<String> = li.symmetric_difference(&ri).cloned().collect();
    differing.extend(lo.symmetric_difference(&ro).cloned());
    if differing.is_empty() {
        Ok(())
    } else {
        Err(EquivError::InterfaceMismatch { differing })
    }
}

fn compare_under(
    left: &Netlist,
    right: &Netlist,
    stim: &Stimulus,
    lanes_used: u64,
) -> Result<(), EquivError> {
    let lw = simulate(left, stim)?;
    let rw = simulate(right, stim)?;
    for (name, _) in left.primary_outputs() {
        let l = lw.output(name)?;
        let r = rw.output(name)?;
        let diff = (l ^ r) & lanes_used;
        if diff != 0 {
            let lane = diff.trailing_zeros();
            let assignment = left
                .primary_inputs()
                .iter()
                .map(|(n, _)| {
                    let bit = stim.get(n).unwrap_or(0) >> lane & 1 == 1;
                    (n.clone(), bit)
                })
                .collect();
            return Err(EquivError::Mismatch {
                output: name.clone(),
                assignment,
            });
        }
    }
    Ok(())
}

/// Exhaustively proves equivalence of two netlists with at most 16
/// primary inputs.
///
/// # Panics
///
/// Panics if either netlist has more than 16 inputs.
///
/// # Errors
///
/// Returns [`EquivError::InterfaceMismatch`] for differing port sets and
/// [`EquivError::Mismatch`] with a counterexample when the functions
/// differ.
pub fn equiv_exhaustive(left: &Netlist, right: &Netlist) -> Result<(), EquivError> {
    check_interfaces(left, right)?;
    let inputs: Vec<String> = left
        .primary_inputs()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    assert!(
        inputs.len() <= 16,
        "exhaustive equivalence limited to 16 inputs"
    );
    let total: u64 = 1 << inputs.len();
    let mut assignment = 0u64;
    while assignment < total {
        // Fill up to 64 assignments per pass: lane j gets assignment+j.
        let lanes = (total - assignment).min(64);
        let mut stim = Stimulus::new();
        for (i, name) in inputs.iter().enumerate() {
            let mut word = 0u64;
            for lane in 0..lanes {
                word |= ((assignment + lane) >> i & 1) << lane;
            }
            stim.set(name.clone(), word);
        }
        let used = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        compare_under(left, right, &stim, used)?;
        assignment += lanes;
    }
    Ok(())
}

/// Checks equivalence on `rounds * 64` random vectors.
///
/// # Errors
///
/// As [`equiv_exhaustive`]; a passing result is evidence, not proof.
pub fn equiv_random<R: Rng + ?Sized>(
    left: &Netlist,
    right: &Netlist,
    rounds: usize,
    rng: &mut R,
) -> Result<(), EquivError> {
    check_interfaces(left, right)?;
    for _ in 0..rounds {
        let mut stim = Stimulus::new();
        for (name, _) in left.primary_inputs() {
            stim.set(name.clone(), rng.gen::<u64>());
        }
        compare_under(left, right, &stim, u64::MAX)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vlsa_netlist::Netlist;

    fn xor_gate() -> Netlist {
        let mut nl = Netlist::new("x");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor2(a, b);
        nl.output("y", y);
        nl
    }

    fn xor_via_nands() -> Netlist {
        let mut nl = Netlist::new("x2");
        let a = nl.input("a");
        let b = nl.input("b");
        let nab = nl.nand2(a, b);
        let l = nl.nand2(a, nab);
        let r = nl.nand2(b, nab);
        let y = nl.nand2(l, r);
        nl.output("y", y);
        nl
    }

    fn or_gate() -> Netlist {
        let mut nl = Netlist::new("o");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.or2(a, b);
        nl.output("y", y);
        nl
    }

    #[test]
    fn structurally_different_xors_are_equivalent() {
        equiv_exhaustive(&xor_gate(), &xor_via_nands()).expect("equivalent");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        equiv_random(&xor_gate(), &xor_via_nands(), 4, &mut rng).expect("equivalent");
    }

    #[test]
    fn mismatch_produces_counterexample() {
        let err = equiv_exhaustive(&xor_gate(), &or_gate()).unwrap_err();
        match err {
            EquivError::Mismatch { output, assignment } => {
                assert_eq!(output, "y");
                // XOR and OR differ exactly on a = b = 1.
                assert!(assignment.iter().all(|(_, v)| *v), "{assignment:?}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn random_also_finds_easy_mismatch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let err = equiv_random(&xor_gate(), &or_gate(), 4, &mut rng).unwrap_err();
        assert!(matches!(err, EquivError::Mismatch { .. }));
    }

    #[test]
    fn interface_mismatch_detected() {
        let mut other = xor_gate();
        other.output("extra", vlsa_netlist::Netlist::primary_inputs(&other)[0].1);
        let err = equiv_exhaustive(&xor_gate(), &other).unwrap_err();
        match err {
            EquivError::InterfaceMismatch { differing } => {
                assert_eq!(differing, vec!["extra".to_string()]);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn exhaustive_handles_more_than_64_assignments() {
        // 7 inputs = 128 assignments = 2 passes.
        let mk = |name: &str| {
            let mut nl = Netlist::new(name);
            let bits: Vec<_> = (0..7).map(|i| nl.input(format!("i{i}"))).collect();
            let y = nl.and_tree(&bits);
            nl.output("y", y);
            nl
        };
        equiv_exhaustive(&mk("l"), &mk("r")).expect("equivalent");
    }

    #[test]
    fn error_display() {
        let e = EquivError::InterfaceMismatch {
            differing: vec!["p".into()],
        };
        assert!(e.to_string().contains("p"));
    }
}
