//! Waveform capture: dumping netlist simulations as VCD.
//!
//! [`NetlistVcd`] registers nets of a [`Netlist`] as VCD wires and
//! records one timestep per simulated cycle from the [`crate::Waves`]
//! (or [`crate::FaultWaves`]) of each pass, projecting out a single
//! lane. Open the result in GTKWave to see exactly what the paper's
//! Figs. 6–7 argue about: the speculative sum settling, the detector
//! firing, the recovery bubble.
//!
//! Injected faults are first-class: [`NetlistVcd::record_fault`] drives
//! dedicated `fault_active` / `fault_value` / `fault_net` annotation
//! wires and drops a `$comment` naming the stuck net into the stream.

use crate::{lane_bit, FaultWaves, StuckAt, Waves};
use vlsa_netlist::{NetId, Netlist};
use vlsa_trace::{VcdId, VcdWriter};

/// Which nets of the netlist a [`NetlistVcd`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcdNets {
    /// Primary inputs and outputs only — compact, the default for long
    /// workloads.
    Ports,
    /// Every net in the graph, internal nodes included — the full
    /// debugging view.
    All,
}

/// A VCD recorder over successive simulation passes of one netlist.
///
/// # Examples
///
/// ```
/// use vlsa_netlist::Netlist;
/// use vlsa_sim::{simulate, NetlistVcd, Stimulus, VcdNets};
///
/// let mut nl = Netlist::new("xor");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let y = nl.xor2(a, b);
/// nl.output("y", y);
///
/// let mut rec = NetlistVcd::new(&nl, VcdNets::Ports, 0);
/// for (va, vb) in [(0u64, 0u64), (1, 0), (1, 1)] {
///     let mut stim = Stimulus::new();
///     stim.set("a", va).set("b", vb);
///     let waves = simulate(&nl, &stim)?;
///     rec.record(&waves);
/// }
/// let vcd = rec.finish();
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#2"));
/// # Ok::<(), vlsa_sim::SimulateError>(())
/// ```
#[derive(Debug)]
pub struct NetlistVcd<'a> {
    netlist: &'a Netlist,
    vcd: VcdWriter,
    recorded: Vec<(NetId, VcdId)>,
    lane: usize,
    cycle: u64,
    fault_active: VcdId,
    fault_value: VcdId,
    fault_net: VcdId,
}

impl<'a> NetlistVcd<'a> {
    /// A recorder over `netlist` capturing lane `lane` of the selected
    /// nets each cycle.
    ///
    /// Port nets are named after their ports; in [`VcdNets::All`] mode
    /// internal nets are named `n<index>_<kind>`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn new(netlist: &'a Netlist, nets: VcdNets, lane: usize) -> NetlistVcd<'a> {
        assert!(lane < 64, "lane must be in 0..64");
        let mut vcd = VcdWriter::new(netlist.name());
        let mut recorded = Vec::new();
        match nets {
            VcdNets::Ports => {
                for (name, net) in netlist.primary_inputs() {
                    recorded.push((*net, vcd.wire(name, 1)));
                }
                for (name, net) in netlist.primary_outputs() {
                    recorded.push((*net, vcd.wire(name, 1)));
                }
            }
            VcdNets::All => {
                // Port names where available, positional names otherwise.
                let mut names: Vec<Option<String>> = vec![None; netlist.len()];
                for (name, net) in netlist.primary_inputs() {
                    names[net.index()] = Some(name.clone());
                }
                for (name, net) in netlist.primary_outputs() {
                    names[net.index()].get_or_insert_with(|| name.clone());
                }
                for (id, node) in netlist.nodes() {
                    let name = names[id.index()]
                        .take()
                        .unwrap_or_else(|| format!("n{}_{}", id.index(), node.kind()));
                    recorded.push((id, vcd.wire(&name, 1)));
                }
            }
        }
        let fault_active = vcd.wire("fault_active", 1);
        let fault_value = vcd.wire("fault_value", 1);
        let fault_net = vcd.wire("fault_net", 32);
        NetlistVcd {
            netlist,
            vcd,
            recorded,
            lane,
            cycle: 0,
            fault_active,
            fault_value,
            fault_net,
        }
    }

    /// Declares an extra caller-driven wire (e.g. the pipeline's
    /// `stall`/`valid` handshake next to the gate-level nets). Must be
    /// called before the first recorded cycle.
    pub fn extra_wire(&mut self, name: &str, width: u32) -> VcdId {
        self.vcd.wire(name, width)
    }

    /// Number of simulated cycles recorded so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Records one fault-free cycle from `waves`.
    ///
    /// # Panics
    ///
    /// Panics if `waves` comes from a different (smaller) netlist.
    pub fn record(&mut self, waves: &Waves<'_>) {
        self.vcd.timestamp(self.cycle);
        for &(net, sig) in &self.recorded {
            self.vcd
                .change(sig, u64::from(lane_bit(waves.net(net), self.lane)));
        }
        self.vcd.change(self.fault_active, 0);
        self.cycle += 1;
    }

    /// Records one cycle simulated under an injected fault, driving the
    /// annotation wires and a `$comment` naming the stuck net.
    ///
    /// # Panics
    ///
    /// Panics if `waves` comes from a different (smaller) netlist.
    pub fn record_fault(&mut self, waves: &FaultWaves<'_>, fault: StuckAt) {
        self.vcd.timestamp(self.cycle);
        self.vcd.comment(&format!(
            "cycle {}: stuck-at-{} on {} ({})",
            self.cycle,
            u64::from(fault.value),
            fault.net,
            self.netlist.node(fault.net).kind()
        ));
        for &(net, sig) in &self.recorded {
            self.vcd
                .change(sig, u64::from(lane_bit(waves.net(net), self.lane)));
        }
        self.vcd.change(self.fault_active, 1);
        self.vcd.change(self.fault_value, u64::from(fault.value));
        self.vcd.change(self.fault_net, fault.net.index() as u64);
        self.cycle += 1;
    }

    /// Drives an [`NetlistVcd::extra_wire`] for the most recently
    /// recorded cycle.
    pub fn annotate(&mut self, wire: VcdId, value: u64) {
        self.vcd.change(wire, value);
    }

    /// Advances one cycle with every signal held (a stall bubble: the
    /// netlist outputs are frozen while recovery runs).
    pub fn hold(&mut self) {
        self.vcd.timestamp(self.cycle);
        self.cycle += 1;
    }

    /// Finishes the dump and returns the VCD text.
    pub fn finish(self) -> String {
        let cycle = self.cycle;
        self.vcd.finish(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, simulate_with_fault, Stimulus};

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("cin");
        let x = nl.xor2(a, b);
        let s = nl.xor2(x, c);
        let m = nl.maj3(a, b, c);
        nl.output("sum", s);
        nl.output("cout", m);
        nl
    }

    fn stim(a: u64, b: u64, cin: u64) -> Stimulus {
        let mut s = Stimulus::new();
        s.set("a", a).set("b", b).set("cin", cin);
        s
    }

    #[test]
    fn ports_mode_records_port_waveforms() {
        let nl = full_adder();
        let mut rec = NetlistVcd::new(&nl, VcdNets::Ports, 0);
        for (a, b) in [(0u64, 0u64), (1, 1), (1, 0)] {
            let waves = simulate(&nl, &stim(a, b, 0)).expect("sim");
            rec.record(&waves);
        }
        assert_eq!(rec.cycles(), 3);
        let vcd = rec.finish();
        assert!(vcd.contains("$var wire 1 ! a $end"), "{vcd}");
        assert!(vcd.contains(" cout $end"));
        // 1+1 = 10: cout rises at cycle 1, falls at cycle 2.
        assert!(vcd.contains("#1"));
        assert!(vcd.contains("#3\n"), "{vcd}");
        // Internal nets are absent in Ports mode.
        assert!(!vcd.contains("n3_"), "{vcd}");
    }

    #[test]
    fn all_mode_names_internals_by_index_and_kind() {
        let nl = full_adder();
        let mut rec = NetlistVcd::new(&nl, VcdNets::All, 0);
        let waves = simulate(&nl, &stim(1, 1, 1)).expect("sim");
        rec.record(&waves);
        let vcd = rec.finish();
        // The first XOR is node 3 (after inputs a, b, cin).
        assert!(vcd.contains("n3_xor2"), "{vcd}");
        // Output nets keep their port name.
        assert!(vcd.contains(" sum $end"), "{vcd}");
    }

    #[test]
    fn lanes_select_different_vectors() {
        let nl = full_adder();
        // Lane 0 adds 0+0, lane 1 adds 1+1.
        let waves = simulate(&nl, &stim(0b10, 0b10, 0)).expect("sim");
        let mut lane0 = NetlistVcd::new(&nl, VcdNets::Ports, 0);
        lane0.record(&waves);
        let mut lane1 = NetlistVcd::new(&nl, VcdNets::Ports, 1);
        lane1.record(&waves);
        let v0 = lane0.finish();
        let v1 = lane1.finish();
        // `a` is identifier `!`: low in lane 0, high in lane 1.
        assert!(v0.contains("0!"), "{v0}");
        assert!(v1.contains("1!"), "{v1}");
    }

    #[test]
    fn fault_cycles_are_annotated() {
        let mut nl = Netlist::new("fa");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("cin");
        let x = nl.xor2(a, b);
        let s = nl.xor2(x, c);
        let m = nl.maj3(a, b, c);
        nl.output("sum", s);
        nl.output("cout", m);
        let clean = simulate(&nl, &stim(1, 0, 0)).expect("sim");
        let faulty = simulate_with_fault(&nl, &stim(1, 0, 0), StuckAt::zero(x)).expect("sim");
        let mut rec = NetlistVcd::new(&nl, VcdNets::Ports, 0);
        rec.record(&clean);
        rec.record_fault(&faulty, StuckAt::zero(x));
        rec.record(&clean);
        let vcd = rec.finish();
        assert!(
            vcd.contains("$comment cycle 1: stuck-at-0 on n3 (xor2) $end"),
            "{vcd}"
        );
        // fault_active pulses 0 → 1 → 0.
        let id = vcd
            .lines()
            .find(|l| l.contains(" fault_active $end"))
            .and_then(|l| l.split_whitespace().nth(3))
            .expect("fault_active declared")
            .to_string();
        assert!(vcd.contains(&format!("0{id}")));
        assert!(vcd.contains(&format!("1{id}")));
    }

    #[test]
    fn extra_wires_and_hold_cycles() {
        let nl = full_adder();
        let mut rec = NetlistVcd::new(&nl, VcdNets::Ports, 0);
        let stall = rec.extra_wire("stall", 1);
        let waves = simulate(&nl, &stim(1, 1, 0)).expect("sim");
        rec.record(&waves);
        rec.annotate(stall, 1);
        rec.hold();
        rec.record(&waves);
        rec.annotate(stall, 0);
        assert_eq!(rec.cycles(), 3);
        let vcd = rec.finish();
        assert!(vcd.contains(" stall $end"), "{vcd}");
        assert!(vcd.ends_with("#3\n"), "{vcd}");
    }
}
