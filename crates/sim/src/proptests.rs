//! Property-based tests for lane packing and reference arithmetic.

use crate::*;
use proptest::prelude::*;

/// An arbitrary wide word of up to 3 limbs, masked to `nbits`.
fn wide(nbits: usize) -> impl Strategy<Value = WideWord> {
    let nwords = nbits.div_ceil(64).max(1);
    proptest::collection::vec(any::<u64>(), nwords).prop_map(move |mut w| {
        let rem = nbits % 64;
        if rem != 0 {
            *w.last_mut().expect("at least one word") &= (1u64 << rem) - 1;
        }
        w
    })
}

proptest! {
    #[test]
    fn pack_unpack_round_trip(
        nbits in 1usize..150,
        seed in any::<u64>(),
        lanes in 1usize..=64,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nwords = nbits.div_ceil(64);
        let rem = nbits % 64;
        let ops: Vec<WideWord> = (0..lanes)
            .map(|_| {
                let mut w: WideWord = (0..nwords).map(|_| rng.gen()).collect();
                if rem != 0 {
                    *w.last_mut().unwrap() &= (1u64 << rem) - 1;
                }
                w
            })
            .collect();
        let packed = pack_lanes(&ops, nbits);
        prop_assert_eq!(unpack_lanes(&packed, nbits, lanes), ops);
    }

    #[test]
    fn wide_add_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let aw = vec![a as u64, (a >> 64) as u64];
        let bw = vec![b as u64, (b >> 64) as u64];
        let expected = a.wrapping_add(b);
        prop_assert_eq!(
            wide_add(&aw, &bw, 128),
            vec![expected as u64, (expected >> 64) as u64]
        );
    }

    #[test]
    fn wide_add_commutes_and_has_identity(a in wide(100), b in wide(100)) {
        prop_assert_eq!(wide_add(&a, &b, 100), wide_add(&b, &a, 100));
        prop_assert_eq!(wide_add(&a, &[0], 100), a.clone());
    }

    #[test]
    fn wide_add_is_associative(a in wide(90), b in wide(90), c in wide(90)) {
        let left = wide_add(&wide_add(&a, &b, 90), &c, 90);
        let right = wide_add(&a, &wide_add(&b, &c, 90), 90);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn wide_xor_involution(a in wide(77), b in wide(77)) {
        let p = wide_xor(&a, &b, 77);
        prop_assert_eq!(wide_xor(&p, &b, 77), a.clone());
    }
}
