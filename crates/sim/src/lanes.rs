//! Lane packing: transposing between per-operand bit vectors and the
//! per-bit lane words the simulator consumes.
//!
//! To simulate 64 additions at once, operand `j`'s bit `i` must land in
//! bit `j` (the lane) of the stimulus word for input `a[i]`. These
//! helpers perform that transposition for arbitrarily wide operands
//! stored as little-endian `u64` slices.

/// A multi-bit operand stored as little-endian `u64` words.
pub type WideWord = Vec<u64>;

/// Extracts bit `bit` of a wide word.
fn wide_bit(value: &[u64], bit: usize) -> u64 {
    value.get(bit / 64).map_or(0, |w| (w >> (bit % 64)) & 1)
}

/// Extracts one lane's bit from a 64-lane simulation word: the value
/// test vector `lane` drives on that net. This is the projection the
/// VCD capture ([`crate::NetlistVcd`]) applies to every net per cycle.
///
/// # Panics
///
/// Panics if `lane >= 64`.
#[inline]
pub fn lane_bit(word: u64, lane: usize) -> bool {
    assert!(lane < 64, "lane must be in 0..64");
    (word >> lane) & 1 == 1
}

/// Sets bit `bit` of a wide word, growing it as needed.
fn set_wide_bit(value: &mut WideWord, bit: usize) {
    let word = bit / 64;
    if value.len() <= word {
        value.resize(word + 1, 0);
    }
    value[word] |= 1u64 << (bit % 64);
}

/// Packs up to 64 `nbits`-wide operands into per-bit lane words:
/// `result[i]` has bit `j` equal to bit `i` of `operands[j]`.
///
/// # Panics
///
/// Panics if more than 64 operands are supplied.
///
/// # Examples
///
/// ```
/// use vlsa_sim::pack_lanes;
///
/// let ops = vec![vec![0b01u64], vec![0b10u64]];
/// let lanes = pack_lanes(&ops, 2);
/// assert_eq!(lanes, vec![0b01, 0b10]); // bit0: lane0 only; bit1: lane1 only
/// ```
pub fn pack_lanes(operands: &[WideWord], nbits: usize) -> Vec<u64> {
    assert!(operands.len() <= 64, "at most 64 lanes per pass");
    let mut out = vec![0u64; nbits];
    for (lane, op) in operands.iter().enumerate() {
        for (bit, word) in out.iter_mut().enumerate() {
            *word |= wide_bit(op, bit) << lane;
        }
    }
    out
}

/// Inverse of [`pack_lanes`]: recovers `nlanes` operands of `nbits` bits
/// from per-bit lane words.
///
/// # Panics
///
/// Panics if `nlanes > 64` or `words.len() < nbits`.
pub fn unpack_lanes(words: &[u64], nbits: usize, nlanes: usize) -> Vec<WideWord> {
    assert!(nlanes <= 64, "at most 64 lanes per pass");
    assert!(words.len() >= nbits, "missing per-bit words");
    let mut out = vec![vec![0u64; nbits.div_ceil(64).max(1)]; nlanes];
    for (bit, &word) in words.iter().enumerate().take(nbits) {
        for (lane, op) in out.iter_mut().enumerate() {
            if (word >> lane) & 1 == 1 {
                set_wide_bit(op, bit);
            }
        }
    }
    out
}

/// Adds two wide words modulo `2^nbits`, returning the wide sum.
/// The reference model all adders are checked against.
///
/// # Examples
///
/// ```
/// use vlsa_sim::wide_add;
///
/// // 2^64 - 1 + 1 = 2^64 (carry into the second word).
/// let s = wide_add(&[u64::MAX], &[1], 128);
/// assert_eq!(s, vec![0, 1]);
/// // Truncated at 64 bits the carry is lost.
/// assert_eq!(wide_add(&[u64::MAX], &[1], 64), vec![0]);
/// ```
pub fn wide_add(a: &[u64], b: &[u64], nbits: usize) -> WideWord {
    let nwords = nbits.div_ceil(64).max(1);
    let mut out = vec![0u64; nwords];
    let mut carry = 0u64;
    for (i, word) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *word = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let rem = nbits % 64;
    if rem != 0 {
        *out.last_mut().expect("nwords >= 1") &= (1u64 << rem) - 1;
    }
    out
}

/// Bitwise XOR of two wide words over `nbits` bits — the propagate
/// vector of an addition.
pub fn wide_xor(a: &[u64], b: &[u64], nbits: usize) -> WideWord {
    let nwords = nbits.div_ceil(64).max(1);
    let mut out = vec![0u64; nwords];
    for (i, word) in out.iter_mut().enumerate() {
        *word = a.get(i).copied().unwrap_or(0) ^ b.get(i).copied().unwrap_or(0);
    }
    let rem = nbits % 64;
    if rem != 0 {
        *out.last_mut().expect("nwords >= 1") &= (1u64 << rem) - 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pack_unpack_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for nbits in [1usize, 17, 64, 65, 130] {
            let nwords = nbits.div_ceil(64);
            let ops: Vec<WideWord> = (0..64)
                .map(|_| {
                    let mut w: WideWord = (0..nwords).map(|_| rng.gen()).collect();
                    let rem = nbits % 64;
                    if rem != 0 {
                        *w.last_mut().unwrap() &= (1u64 << rem) - 1;
                    }
                    w
                })
                .collect();
            let lanes = pack_lanes(&ops, nbits);
            let back = unpack_lanes(&lanes, nbits, 64);
            assert_eq!(back, ops, "nbits={nbits}");
        }
    }

    #[test]
    fn pack_fewer_than_64_lanes() {
        let ops = vec![vec![0b11u64], vec![0b01u64], vec![0b10u64]];
        let lanes = pack_lanes(&ops, 2);
        assert_eq!(lanes[0], 0b011); // bit0 set in ops 0 and 1
        assert_eq!(lanes[1], 0b101); // bit1 set in ops 0 and 2
        let back = unpack_lanes(&lanes, 2, 3);
        assert_eq!(back.len(), 3);
        assert_eq!(back[0][0], 0b11);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn pack_rejects_too_many_lanes() {
        let ops = vec![vec![0u64]; 65];
        pack_lanes(&ops, 1);
    }

    #[test]
    fn wide_add_matches_u128() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let a: u128 = rng.gen();
            let b: u128 = rng.gen();
            let aw = vec![a as u64, (a >> 64) as u64];
            let bw = vec![b as u64, (b >> 64) as u64];
            let s = wide_add(&aw, &bw, 128);
            let expected = a.wrapping_add(b);
            assert_eq!(s, vec![expected as u64, (expected >> 64) as u64]);
        }
    }

    #[test]
    fn wide_add_truncates_to_nbits() {
        let s = wide_add(&[0b1111], &[0b0001], 4);
        assert_eq!(s, vec![0]); // 16 mod 2^4
                                // All-ones + 1 wraps through both words; the final carry is lost
                                // and the high word is masked to nbits.
        let s = wide_add(&[u64::MAX, u64::MAX], &[1], 100);
        assert_eq!(s, vec![0, 0]);
    }

    #[test]
    fn wide_xor_is_propagate_vector() {
        let p = wide_xor(&[0b1100], &[0b1010], 4);
        assert_eq!(p, vec![0b0110]);
        // Masks above nbits.
        let p = wide_xor(&[u64::MAX], &[0], 8);
        assert_eq!(p, vec![0xFF]);
    }

    #[test]
    fn wide_bit_out_of_range_is_zero() {
        assert_eq!(wide_bit(&[1], 100), 0);
    }
}
