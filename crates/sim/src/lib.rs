//! Bit-parallel functional simulation for VLSA netlists.
//!
//! Simulates [`vlsa_netlist::Netlist`] DAGs 64 test vectors at a time
//! ([`simulate`]), packs wide operands into simulation lanes
//! ([`pack_lanes`] / [`unpack_lanes`]), checks adder netlists against
//! reference arithmetic ([`check_adder`], [`check_adder_random`],
//! [`check_adder_exhaustive`]) and proves or refutes combinational
//! equivalence between netlists ([`equiv_exhaustive`], [`equiv_random`]),
//! and dumps simulation passes as VCD waveforms ([`NetlistVcd`]).
//!
//! The measured error rates of Almost Correct Adders (experiment E3 in
//! `DESIGN.md`) come from this crate's [`AdderReport`].
//!
//! # Examples
//!
//! ```
//! use vlsa_netlist::Netlist;
//! use vlsa_sim::{simulate, Stimulus};
//!
//! let mut nl = Netlist::new("andor");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let y = nl.ao21(a, b, a);
//! nl.output("y", y);
//! let mut stim = Stimulus::new();
//! stim.set("a", 0b11).set("b", 0b01);
//! let waves = simulate(&nl, &stim)?;
//! assert_eq!(waves.output("y")? & 0b11, 0b11);
//! # Ok::<(), vlsa_sim::SimulateError>(())
//! ```

mod adder_harness;
mod engine;
mod equiv;
mod fault;
mod lanes;
mod vcd;

pub use adder_harness::{
    adder_sums, check_adder, check_adder_exhaustive, check_adder_random, random_pairs, AdderReport,
};
pub use engine::{simulate, SimulateError, Stimulus, Waves};
pub use equiv::{equiv_exhaustive, equiv_random, EquivError};
pub use fault::{
    fault_coverage, inject_into_waves, simulate_with_fault, simulate_with_faults, FaultCoverage,
    FaultSpec, FaultWaves, StuckAt,
};
pub use lanes::{lane_bit, pack_lanes, unpack_lanes, wide_add, wide_xor, WideWord};
pub use vcd::{NetlistVcd, VcdNets};

#[cfg(test)]
mod proptests;
