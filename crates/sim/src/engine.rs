//! The levelized bit-parallel simulation engine.
//!
//! A [`Netlist`]'s construction order is topological, so simulation is a
//! single forward sweep. Each net carries a `u64`, giving 64 independent
//! test vectors ("lanes") per pass.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use vlsa_netlist::{CellKind, NetId, Netlist};

/// Failure while driving or reading a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulateError {
    /// A primary input was left undriven.
    UndrivenInput {
        /// The input port name.
        name: String,
    },
    /// A stimulus names a port that does not exist.
    UnknownPort {
        /// The unknown port name.
        name: String,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::UndrivenInput { name } => {
                write!(f, "primary input `{name}` is undriven")
            }
            SimulateError::UnknownPort { name } => write!(f, "no port named `{name}`"),
        }
    }
}

impl Error for SimulateError {}

/// A set of 64-lane input assignments, keyed by input port name.
///
/// # Examples
///
/// ```
/// use vlsa_sim::Stimulus;
///
/// let mut stim = Stimulus::new();
/// stim.set("a", 0b1010);
/// stim.set("b", 0b0110);
/// assert_eq!(stim.get("a"), Some(0b1010));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stimulus {
    values: HashMap<String, u64>,
}

impl Stimulus {
    /// Creates an empty stimulus.
    pub fn new() -> Self {
        Stimulus::default()
    }

    /// Drives port `name` with 64 lanes of values.
    pub fn set(&mut self, name: impl Into<String>, lanes: u64) -> &mut Self {
        self.values.insert(name.into(), lanes);
        self
    }

    /// Drives the bits of a bus `name[i]` from per-bit lane words,
    /// LSB first.
    pub fn set_bus(&mut self, name: &str, bit_lanes: &[u64]) -> &mut Self {
        for (i, &word) in bit_lanes.iter().enumerate() {
            self.set(format!("{name}[{i}]"), word);
        }
        self
    }

    /// The lanes driving `name`, if set.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Number of driven ports.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no ports are driven.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The value of every net after a simulation pass: 64 lanes per net.
#[derive(Clone, Debug, PartialEq)]
pub struct Waves<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl Waves<'_> {
    /// The 64-lane value of an arbitrary net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the simulated netlist.
    pub fn net(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// The 64-lane value of the primary output named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::UnknownPort`] if no output has that name.
    pub fn output(&self, name: &str) -> Result<u64, SimulateError> {
        self.netlist
            .primary_outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, net)| self.net(*net))
            .ok_or_else(|| SimulateError::UnknownPort {
                name: name.to_string(),
            })
    }

    /// Collects output bus `name[0..width]` into per-bit lane words.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::UnknownPort`] on the first missing bit.
    pub fn output_bus(&self, name: &str, width: usize) -> Result<Vec<u64>, SimulateError> {
        (0..width)
            .map(|i| self.output(&format!("{name}[{i}]")))
            .collect()
    }
}

/// Simulates `netlist` under `stimulus`, returning all net values.
///
/// # Errors
///
/// Returns [`SimulateError::UndrivenInput`] if any primary input has no
/// stimulus, or [`SimulateError::UnknownPort`] if the stimulus drives a
/// port the netlist does not have.
///
/// # Examples
///
/// ```
/// use vlsa_netlist::Netlist;
/// use vlsa_sim::{simulate, Stimulus};
///
/// let mut nl = Netlist::new("xor");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let y = nl.xor2(a, b);
/// nl.output("y", y);
///
/// let mut stim = Stimulus::new();
/// stim.set("a", 0b1100).set("b", 0b1010);
/// let waves = simulate(&nl, &stim)?;
/// assert_eq!(waves.output("y")? & 0xF, 0b0110);
/// # Ok::<(), vlsa_sim::SimulateError>(())
/// ```
pub fn simulate<'a>(netlist: &'a Netlist, stimulus: &Stimulus) -> Result<Waves<'a>, SimulateError> {
    // Reject stimulus for ports that do not exist (catches typos early).
    for name in stimulus.values.keys() {
        if !netlist.primary_inputs().iter().any(|(n, _)| n == name) {
            return Err(SimulateError::UnknownPort { name: name.clone() });
        }
    }
    let telemetry_on = vlsa_telemetry::is_enabled();
    let sweep_start = telemetry_on.then(std::time::Instant::now);
    let mut values = vec![0u64; netlist.len()];
    for (name, net) in netlist.primary_inputs() {
        let lanes = stimulus
            .get(name)
            .ok_or_else(|| SimulateError::UndrivenInput { name: name.clone() })?;
        values[net.index()] = lanes;
    }
    let mut input_buf = Vec::with_capacity(4);
    let mut gate_evals = 0u64;
    for (id, node) in netlist.nodes() {
        match node.kind() {
            CellKind::Input => {}
            kind => {
                input_buf.clear();
                input_buf.extend(node.inputs().iter().map(|i| values[i.index()]));
                values[id.index()] = kind.eval_words(&input_buf);
                gate_evals += 1;
            }
        }
    }
    if let Some(start) = sweep_start {
        let recorder = vlsa_telemetry::recorder();
        recorder.counter("vlsa.sim.passes").incr();
        recorder.counter("vlsa.sim.gate_evals").add(gate_evals);
        recorder
            .histogram(
                "vlsa.sim.gate_evals_per_pass",
                vlsa_telemetry::DEFAULT_BUCKETS,
            )
            .record(gate_evals);
        recorder
            .histogram("vlsa.sim.sweep_ns", vlsa_telemetry::DEFAULT_BUCKETS)
            .record(start.elapsed().as_nanos() as u64);
    }
    Ok(Waves { netlist, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_netlist::Netlist;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("cin");
        let x = nl.xor2(a, b);
        let s = nl.xor2(x, c);
        let m = nl.maj3(a, b, c);
        nl.output("sum", s);
        nl.output("cout", m);
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        // All 8 assignments in the low 8 lanes.
        let mut stim = Stimulus::new();
        stim.set("a", 0b1111_0000)
            .set("b", 0b1100_1100)
            .set("cin", 0b1010_1010);
        let waves = simulate(&nl, &stim).expect("simulate");
        assert_eq!(waves.output("sum").unwrap() & 0xFF, 0b1001_0110);
        assert_eq!(waves.output("cout").unwrap() & 0xFF, 0b1110_1000);
    }

    #[test]
    fn constants_simulate() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(true);
        let zero = nl.constant(false);
        let y = nl.and2(one, zero);
        nl.output("y", y);
        let waves = simulate(&nl, &Stimulus::new()).expect("simulate");
        assert_eq!(waves.output("y").unwrap(), 0);
        assert_eq!(waves.net(one), u64::MAX);
    }

    #[test]
    fn undriven_input_is_error() {
        let nl = full_adder();
        let mut stim = Stimulus::new();
        stim.set("a", 1);
        let err = simulate(&nl, &stim).unwrap_err();
        assert!(matches!(err, SimulateError::UndrivenInput { .. }));
        assert!(err.to_string().contains("undriven"));
    }

    #[test]
    fn unknown_stimulus_port_is_error() {
        let nl = full_adder();
        let mut stim = Stimulus::new();
        stim.set("a", 1).set("b", 1).set("cin", 0).set("bogus", 1);
        assert_eq!(
            simulate(&nl, &stim),
            Err(SimulateError::UnknownPort {
                name: "bogus".to_string()
            })
        );
    }

    #[test]
    fn unknown_output_is_error() {
        let nl = full_adder();
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0).set("cin", 0);
        let waves = simulate(&nl, &stim).expect("simulate");
        assert!(waves.output("nope").is_err());
    }

    #[test]
    fn bus_round_trip() {
        let mut nl = Netlist::new("pass");
        let bus = nl.input_bus("a", 3);
        nl.output_bus("y", &bus);
        let mut stim = Stimulus::new();
        stim.set_bus("a", &[0xF0, 0x0F, 0xFF]);
        let waves = simulate(&nl, &stim).expect("simulate");
        assert_eq!(waves.output_bus("y", 3).unwrap(), vec![0xF0, 0x0F, 0xFF]);
    }

    #[test]
    fn stimulus_bookkeeping() {
        let mut stim = Stimulus::new();
        assert!(stim.is_empty());
        stim.set("x", 7);
        assert_eq!(stim.len(), 1);
        assert_eq!(stim.get("x"), Some(7));
        assert_eq!(stim.get("y"), None);
    }
}
