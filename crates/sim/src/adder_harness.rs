//! Harness for exercising adder netlists against reference arithmetic.
//!
//! All adder generators in this workspace follow one port convention:
//! input buses `a[0..n]` and `b[0..n]`, output bus `s[0..n]`, and an
//! optional carry-out `cout`. This harness drives batches of 64 operand
//! pairs per simulation pass and compares against [`wide_add`], reporting
//! the mismatch rate — the measured error probability of speculative
//! adders.

use crate::{pack_lanes, simulate, unpack_lanes, wide_add, SimulateError, Stimulus, WideWord};
use rand::Rng;
use vlsa_netlist::Netlist;

/// Outcome of checking an adder netlist on a set of operand pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdderReport {
    /// Number of operand pairs simulated.
    pub total: u64,
    /// Number of pairs whose gate-level sum differed from the reference.
    pub mismatches: u64,
    /// First failing pair, as `(a, b, got, expected)`.
    pub first_failure: Option<(WideWord, WideWord, WideWord, WideWord)>,
}

impl AdderReport {
    /// Fraction of pairs that were wrong.
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.mismatches as f64 / self.total as f64
        }
    }

    /// Whether every simulated pair was correct.
    pub fn is_exact(&self) -> bool {
        self.mismatches == 0
    }
}

/// Computes the gate-level sums an adder netlist produces for the given
/// operand pairs (batched 64 lanes at a time).
///
/// # Errors
///
/// Propagates [`SimulateError`] if the netlist does not follow the
/// `a`/`b`/`s` port convention at width `nbits`.
pub fn adder_sums(
    netlist: &Netlist,
    nbits: usize,
    pairs: &[(WideWord, WideWord)],
) -> Result<Vec<WideWord>, SimulateError> {
    let lane_hist = vlsa_telemetry::is_enabled().then(|| {
        vlsa_telemetry::recorder()
            .histogram("vlsa.sim.lanes_per_pass", vlsa_telemetry::DEFAULT_BUCKETS)
    });
    let mut sums = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(64) {
        if let Some(hist) = &lane_hist {
            // Lane utilization: a partial tail chunk wastes 64−len lanes.
            hist.record(chunk.len() as u64);
        }
        let a_ops: Vec<WideWord> = chunk.iter().map(|(a, _)| a.clone()).collect();
        let b_ops: Vec<WideWord> = chunk.iter().map(|(_, b)| b.clone()).collect();
        let mut stim = Stimulus::new();
        stim.set_bus("a", &pack_lanes(&a_ops, nbits));
        stim.set_bus("b", &pack_lanes(&b_ops, nbits));
        let waves = simulate(netlist, &stim)?;
        let s_lanes = waves.output_bus("s", nbits)?;
        sums.extend(unpack_lanes(&s_lanes, nbits, chunk.len()));
    }
    Ok(sums)
}

/// Checks an adder netlist against the reference sum on explicit pairs.
///
/// # Errors
///
/// Propagates [`SimulateError`] from [`adder_sums`].
pub fn check_adder(
    netlist: &Netlist,
    nbits: usize,
    pairs: &[(WideWord, WideWord)],
) -> Result<AdderReport, SimulateError> {
    let sums = adder_sums(netlist, nbits, pairs)?;
    let mut report = AdderReport::default();
    for ((a, b), got) in pairs.iter().zip(&sums) {
        report.total += 1;
        let expected = wide_add(a, b, nbits);
        if *got != expected {
            report.mismatches += 1;
            if report.first_failure.is_none() {
                report.first_failure = Some((a.clone(), b.clone(), got.clone(), expected));
            }
        }
    }
    Ok(report)
}

/// Generates `count` uniformly random `nbits`-bit operand pairs.
pub fn random_pairs<R: Rng + ?Sized>(
    nbits: usize,
    count: usize,
    rng: &mut R,
) -> Vec<(WideWord, WideWord)> {
    let nwords = nbits.div_ceil(64).max(1);
    let rem = nbits % 64;
    let gen_one = |rng: &mut R| -> WideWord {
        let mut w: WideWord = (0..nwords).map(|_| rng.gen()).collect();
        if rem != 0 {
            *w.last_mut().expect("nwords >= 1") &= (1u64 << rem) - 1;
        }
        w
    };
    (0..count).map(|_| (gen_one(rng), gen_one(rng))).collect()
}

/// Checks an adder netlist on `count` random pairs.
///
/// # Errors
///
/// Propagates [`SimulateError`] from [`adder_sums`].
pub fn check_adder_random<R: Rng + ?Sized>(
    netlist: &Netlist,
    nbits: usize,
    count: usize,
    rng: &mut R,
) -> Result<AdderReport, SimulateError> {
    let pairs = random_pairs(nbits, count, rng);
    check_adder(netlist, nbits, &pairs)
}

/// Exhaustively checks an adder netlist over all `2^(2n)` operand pairs.
///
/// # Panics
///
/// Panics if `nbits > 8` (the sweep would exceed 4 billion pairs).
///
/// # Errors
///
/// Propagates [`SimulateError`] from [`adder_sums`].
pub fn check_adder_exhaustive(
    netlist: &Netlist,
    nbits: usize,
) -> Result<AdderReport, SimulateError> {
    assert!(nbits <= 8, "exhaustive check limited to 8-bit adders");
    let mut pairs = Vec::with_capacity(1 << (2 * nbits));
    for a in 0u64..(1 << nbits) {
        for b in 0u64..(1 << nbits) {
            pairs.push((vec![a], vec![b]));
        }
    }
    check_adder(netlist, nbits, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vlsa_netlist::Netlist;

    /// A simple gate-level ripple-carry adder for harness testing.
    fn ripple(nbits: usize) -> Netlist {
        let mut nl = Netlist::new("ripple");
        let a = nl.input_bus("a", nbits);
        let b = nl.input_bus("b", nbits);
        let mut carry = nl.constant(false);
        let mut sum = Vec::new();
        for i in 0..nbits {
            let x = nl.xor2(a[i], b[i]);
            sum.push(nl.xor2(x, carry));
            carry = nl.maj3(a[i], b[i], carry);
        }
        for (i, s) in sum.iter().enumerate() {
            nl.output(format!("s[{i}]"), *s);
        }
        nl.output("cout", carry);
        nl
    }

    /// An adder that drops the carry chain entirely (always speculates
    /// with window 1): wrong whenever any carry is generated.
    fn broken(nbits: usize) -> Netlist {
        let mut nl = Netlist::new("broken");
        let a = nl.input_bus("a", nbits);
        let b = nl.input_bus("b", nbits);
        for i in 0..nbits {
            let s = nl.xor2(a[i], b[i]);
            nl.output(format!("s[{i}]"), s);
        }
        nl
    }

    #[test]
    fn ripple_is_exhaustively_correct() {
        let nl = ripple(5);
        let report = check_adder_exhaustive(&nl, 5).expect("simulate");
        assert!(report.is_exact(), "{:?}", report.first_failure);
        assert_eq!(report.total, 1 << 10);
        assert_eq!(report.error_rate(), 0.0);
    }

    #[test]
    fn ripple_is_correct_on_wide_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let nl = ripple(100);
        let report = check_adder_random(&nl, 100, 256, &mut rng).expect("simulate");
        assert!(report.is_exact(), "{:?}", report.first_failure);
    }

    #[test]
    fn broken_adder_is_detected() {
        let nl = broken(8);
        let report = check_adder_exhaustive(&nl, 8).expect("simulate");
        assert!(!report.is_exact());
        // XOR-only addition is right only when no position generates a
        // carry: per bit pair 3 of 4 assignments, so (3/4)^7 of pairs for
        // the low 7 positions (the MSB carry-out is truncated anyway).
        let expected = 1.0 - 0.75f64.powi(7);
        assert!((report.error_rate() - expected).abs() < 0.01);
        let (a, b, got, want) = report.first_failure.clone().expect("failure recorded");
        assert_ne!(got, want);
        assert_eq!(got, crate::wide_xor(&a, &b, 8));
    }

    #[test]
    fn random_pairs_respect_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for (a, b) in random_pairs(67, 50, &mut rng) {
            assert_eq!(a.len(), 2);
            assert_eq!(a[1] >> 3, 0);
            assert_eq!(b[1] >> 3, 0);
        }
    }

    #[test]
    fn sums_batch_across_lane_boundary() {
        // More than 64 pairs forces multiple simulation passes.
        let nl = ripple(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pairs = random_pairs(16, 130, &mut rng);
        let sums = adder_sums(&nl, 16, &pairs).expect("simulate");
        assert_eq!(sums.len(), 130);
        for ((a, b), s) in pairs.iter().zip(&sums) {
            assert_eq!(*s, wide_add(a, b, 16));
        }
    }

    #[test]
    #[should_panic(expected = "limited to 8-bit")]
    fn exhaustive_rejects_wide_adders() {
        let nl = ripple(9);
        let _ = check_adder_exhaustive(&nl, 9);
    }

    #[test]
    fn empty_report_rates() {
        let report = AdderReport::default();
        assert_eq!(report.error_rate(), 0.0);
        assert!(report.is_exact());
    }
}
