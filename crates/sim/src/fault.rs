//! Stuck-at fault injection.
//!
//! Classic manufacturing-test machinery: force one net to a constant
//! and observe the outputs. Used here to validate testbench vector
//! quality (do the vectors *detect* faults?) and to study how stuck-at
//! defects interact with the speculative adder's error detector.

use crate::{simulate, SimulateError, Stimulus};
use vlsa_netlist::{CellKind, NetId, Netlist};

/// A single stuck-at fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StuckAt {
    /// The faulted net.
    pub net: NetId,
    /// The value it is stuck at.
    pub value: bool,
}

impl StuckAt {
    /// Stuck-at-0 on `net`.
    pub fn zero(net: NetId) -> Self {
        StuckAt { net, value: false }
    }

    /// Stuck-at-1 on `net`.
    pub fn one(net: NetId) -> Self {
        StuckAt { net, value: true }
    }
}

/// Simulates `netlist` under `stimulus` with `fault` injected.
///
/// Implemented by rebuilding the netlist with the faulted net replaced
/// by a constant (fanout of the faulty net sees the stuck value; logic
/// upstream still switches, as in the classic single-stuck-at model).
///
/// # Errors
///
/// Propagates [`SimulateError`] from the underlying simulation.
///
/// # Panics
///
/// Panics if `fault.net` is out of range.
pub fn simulate_with_fault<'a>(
    netlist: &'a Netlist,
    stimulus: &Stimulus,
    fault: StuckAt,
) -> Result<FaultWaves<'a>, SimulateError> {
    assert!(fault.net.index() < netlist.len(), "fault net out of range");
    let waves = simulate(netlist, stimulus)?;
    // Recompute downstream values with the fault forced, reusing the
    // fault-free values for everything not in the faulted cone.
    let mut values: Vec<u64> = netlist.nodes().map(|(id, _)| waves.net(id)).collect();
    values[fault.net.index()] = if fault.value { u64::MAX } else { 0 };
    let mut dirty = vec![false; netlist.len()];
    dirty[fault.net.index()] = true;
    let mut input_buf = Vec::with_capacity(4);
    for (id, node) in netlist.nodes() {
        if id == fault.net || !node.kind().is_gate() {
            continue;
        }
        if node.inputs().iter().any(|i| dirty[i.index()]) {
            input_buf.clear();
            input_buf.extend(node.inputs().iter().map(|i| values[i.index()]));
            let new = match node.kind() {
                CellKind::Input => unreachable!(),
                kind => kind.eval_words(&input_buf),
            };
            if new != values[id.index()] {
                values[id.index()] = new;
                dirty[id.index()] = true;
            }
        }
    }
    Ok(FaultWaves { netlist, values })
}

/// Net values under an injected fault (mirrors [`crate::Waves`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultWaves<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl FaultWaves<'_> {
    /// The 64-lane value of a net under the fault.
    pub fn net(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// The faulted value of output `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::UnknownPort`] if no output has that name.
    pub fn output(&self, name: &str) -> Result<u64, SimulateError> {
        self.netlist
            .primary_outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, net)| self.net(*net))
            .ok_or_else(|| SimulateError::UnknownPort {
                name: name.to_string(),
            })
    }
}

/// Fault-coverage summary of a stimulus set (see [`fault_coverage`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCoverage {
    /// Faults whose effect reached some primary output.
    pub detected: usize,
    /// Total faults injected (two per gate output).
    pub total: usize,
}

impl FaultCoverage {
    /// Detected fraction.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Measures single-stuck-at coverage of `stimulus` over every gate
/// output of `netlist`: a fault counts as detected if any primary
/// output differs from the fault-free run in any lane.
///
/// # Errors
///
/// Propagates [`SimulateError`] from the underlying simulations.
pub fn fault_coverage(
    netlist: &Netlist,
    stimulus: &Stimulus,
) -> Result<FaultCoverage, SimulateError> {
    let golden = simulate(netlist, stimulus)?;
    let mut cov = FaultCoverage::default();
    for (id, node) in netlist.nodes() {
        if !node.kind().is_gate() {
            continue;
        }
        for value in [false, true] {
            cov.total += 1;
            let faulty = simulate_with_fault(netlist, stimulus, StuckAt { net: id, value })?;
            let detected = netlist
                .primary_outputs()
                .iter()
                .any(|(_, net)| faulty.net(*net) != golden.net(*net));
            if detected {
                cov.detected += 1;
            }
        }
    }
    if vlsa_telemetry::is_enabled() {
        let recorder = vlsa_telemetry::recorder();
        recorder
            .counter("vlsa.sim.faults_injected")
            .add(cov.total as u64);
        recorder
            .counter("vlsa.sim.faults_propagated")
            .add(cov.detected as u64);
        recorder
            .counter("vlsa.sim.faults_masked")
            .add((cov.total - cov.detected) as u64);
    }
    Ok(cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_netlist::Netlist;

    fn xor_chain() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("xc");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let y = nl.xor2(x, a);
        nl.output("y", y);
        (nl, x, y)
    }

    #[test]
    fn stuck_net_holds_its_value() {
        let (nl, x, y) = xor_chain();
        let mut stim = Stimulus::new();
        stim.set("a", 0b1100).set("b", 0b1010);
        let faulty = simulate_with_fault(&nl, &stim, StuckAt::one(x)).expect("sim");
        assert_eq!(faulty.net(x), u64::MAX);
        // y = x ^ a with x stuck at 1 = !a.
        assert_eq!(faulty.net(y) & 0xF, !0b1100u64 & 0xF);
        assert_eq!(faulty.output("y").expect("port") & 0xF, 0b0011);
    }

    #[test]
    fn fault_off_the_sensitized_path_is_invisible() {
        let mut nl = Netlist::new("masked");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let zero = nl.constant(false);
        let y = nl.and2(x, zero); // output is 0 regardless of x
        nl.output("y", y);
        let mut stim = Stimulus::new();
        stim.set("a", u64::MAX).set("b", 0);
        let golden = simulate(&nl, &stim).expect("sim");
        let faulty = simulate_with_fault(&nl, &stim, StuckAt::zero(x)).expect("sim");
        assert_eq!(golden.net(y), faulty.net(y));
    }

    #[test]
    fn input_faults_are_injectable() {
        let (nl, _, y) = xor_chain();
        let a = nl.primary_inputs()[0].1;
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0b1111);
        let faulty = simulate_with_fault(&nl, &stim, StuckAt::one(a)).expect("sim");
        // y = (a^b)^a; with a stuck at 1: (1^b)^1 = b.
        assert_eq!(faulty.net(y) & 0xF, 0b1111);
    }

    #[test]
    fn coverage_of_exhaustive_vectors_is_high() {
        let (nl, _, _) = xor_chain();
        // All 4 input assignments in 4 lanes: XOR logic is fully
        // sensitized.
        let mut stim = Stimulus::new();
        stim.set("a", 0b1100).set("b", 0b1010);
        let cov = fault_coverage(&nl, &stim).expect("coverage");
        assert_eq!(cov.total, 4);
        assert_eq!(cov.detected, 4);
        assert_eq!(cov.ratio(), 1.0);
    }

    #[test]
    fn coverage_of_a_single_vector_is_partial() {
        let mut nl = Netlist::new("andor");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and2(a, b);
        nl.output("x", x);
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0); // single all-zero vector
        let cov = fault_coverage(&nl, &stim).expect("coverage");
        // Only stuck-at-1 on the AND output is visible.
        assert_eq!(cov.detected, 1);
        assert_eq!(cov.total, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_net() {
        let (nl, _, _) = xor_chain();
        let mut other = Netlist::new("o");
        let big: Vec<_> = (0..100).map(|i| other.input(format!("i{i}"))).collect();
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0);
        let _ = simulate_with_fault(&nl, &stim, StuckAt::zero(big[99]));
    }
}
