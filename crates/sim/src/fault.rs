//! Fault injection: stuck-at defects and transient upsets.
//!
//! Classic manufacturing-test machinery: force one net to a constant
//! and observe the outputs. Used here to validate testbench vector
//! quality (do the vectors *detect* faults?) and to study how stuck-at
//! defects interact with the speculative adder's error detector.
//!
//! Two fault models share one injection engine:
//!
//! - [`StuckAt`] — the permanent single-stuck-at model: a net holds a
//!   constant in every simulated lane.
//! - [`FaultSpec`] with a sparse lane mask — a transient single-event
//!   upset: the 64 simulation lanes double as the time axis (one test
//!   vector per lane), so a fault active in lanes `[cycle, cycle+dur)`
//!   is an SEU with an injection cycle and a duration. Multiple
//!   [`FaultSpec`]s can be injected at once for multi-fault campaigns
//!   (`vlsa-resilience`).

use crate::{simulate, SimulateError, Stimulus, Waves};
use vlsa_netlist::{CellKind, NetId, Netlist};

/// A single stuck-at fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StuckAt {
    /// The faulted net.
    pub net: NetId,
    /// The value it is stuck at.
    pub value: bool,
}

impl StuckAt {
    /// Stuck-at-0 on `net`.
    pub fn zero(net: NetId) -> Self {
        StuckAt { net, value: false }
    }

    /// Stuck-at-1 on `net`.
    pub fn one(net: NetId) -> Self {
        StuckAt { net, value: true }
    }
}

/// A generalized fault: `net` is forced to `value` in the lanes set in
/// `lanes`. `lanes == u64::MAX` is the stuck-at model; a sparse mask is
/// a transient upset over the lane/time axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// The faulted net.
    pub net: NetId,
    /// The value forced onto the masked lanes.
    pub value: bool,
    /// Which of the 64 simulation lanes see the fault.
    pub lanes: u64,
}

impl FaultSpec {
    /// A permanent stuck-at fault (all lanes).
    pub fn stuck_at(fault: StuckAt) -> Self {
        FaultSpec {
            net: fault.net,
            value: fault.value,
            lanes: u64::MAX,
        }
    }

    /// A single-event upset: `net` flips to `value` at lane/cycle
    /// `cycle` and holds for `duration` lanes.
    ///
    /// # Panics
    ///
    /// Panics unless `cycle < 64` and `duration >= 1`.
    pub fn transient(net: NetId, value: bool, cycle: usize, duration: usize) -> Self {
        assert!(cycle < 64, "injection cycle must be in 0..64");
        assert!(duration >= 1, "duration must be at least one cycle");
        let span = duration.min(64 - cycle);
        let mask = if span == 64 {
            u64::MAX
        } else {
            ((1u64 << span) - 1) << cycle
        };
        FaultSpec {
            net,
            value,
            lanes: mask,
        }
    }

    /// The lane pattern this fault forces: `value` in the masked lanes.
    fn pattern(&self) -> u64 {
        if self.value {
            self.lanes
        } else {
            0
        }
    }
}

impl From<StuckAt> for FaultSpec {
    fn from(fault: StuckAt) -> Self {
        FaultSpec::stuck_at(fault)
    }
}

/// Simulates `netlist` under `stimulus` with `fault` injected.
///
/// Implemented by rebuilding the netlist with the faulted net replaced
/// by a constant (fanout of the faulty net sees the stuck value; logic
/// upstream still switches, as in the classic single-stuck-at model).
///
/// # Errors
///
/// Propagates [`SimulateError`] from the underlying simulation.
///
/// # Panics
///
/// Panics if `fault.net` is out of range.
pub fn simulate_with_fault<'a>(
    netlist: &'a Netlist,
    stimulus: &Stimulus,
    fault: StuckAt,
) -> Result<FaultWaves<'a>, SimulateError> {
    simulate_with_faults(netlist, stimulus, &[FaultSpec::stuck_at(fault)])
}

/// Simulates `netlist` under `stimulus` with every fault in `faults`
/// injected at once (multi-fault, lane-masked).
///
/// # Errors
///
/// Propagates [`SimulateError`] from the underlying simulation.
///
/// # Panics
///
/// Panics if any fault net is out of range.
pub fn simulate_with_faults<'a>(
    netlist: &'a Netlist,
    stimulus: &Stimulus,
    faults: &[FaultSpec],
) -> Result<FaultWaves<'a>, SimulateError> {
    let waves = simulate(netlist, stimulus)?;
    Ok(inject_into_waves(netlist, &waves, faults))
}

/// Injects `faults` into a precomputed fault-free simulation,
/// recomputing only the faulted cones. Campaign runners simulate the
/// golden pass once per stimulus and call this per fault.
///
/// Implemented by rebuilding the netlist values with each faulted net
/// overridden on its masked lanes (fanout of a faulty net sees the
/// forced lanes; logic upstream still switches, as in the classic
/// single-stuck-at model — a faulted gate output is re-clamped after
/// any recomputation of the gate).
///
/// # Panics
///
/// Panics if any fault net is out of range, or `waves` came from a
/// different netlist.
pub fn inject_into_waves<'a>(
    netlist: &'a Netlist,
    waves: &Waves<'_>,
    faults: &[FaultSpec],
) -> FaultWaves<'a> {
    let mut values: Vec<u64> = netlist.nodes().map(|(id, _)| waves.net(id)).collect();
    // forced[net] = (mask, pattern) merged over all faults on that net;
    // later faults win on overlapping lanes.
    let mut forced: Vec<Option<(u64, u64)>> = vec![None; netlist.len()];
    let mut dirty = vec![false; netlist.len()];
    for fault in faults {
        assert!(fault.net.index() < netlist.len(), "fault net out of range");
        let (mask, pattern) = forced[fault.net.index()].unwrap_or((0, 0));
        forced[fault.net.index()] = Some((
            mask | fault.lanes,
            (pattern & !fault.lanes) | fault.pattern(),
        ));
    }
    for (idx, force) in forced.iter().enumerate() {
        if let Some((mask, pattern)) = force {
            let new = (values[idx] & !mask) | pattern;
            if new != values[idx] {
                values[idx] = new;
                dirty[idx] = true;
            }
        }
    }
    let mut input_buf = Vec::with_capacity(4);
    for (id, node) in netlist.nodes() {
        if !node.kind().is_gate() {
            continue;
        }
        if node.inputs().iter().any(|i| dirty[i.index()]) {
            input_buf.clear();
            input_buf.extend(node.inputs().iter().map(|i| values[i.index()]));
            let mut new = match node.kind() {
                CellKind::Input => unreachable!(),
                kind => kind.eval_words(&input_buf),
            };
            // A faulted gate output stays clamped on its forced lanes.
            if let Some((mask, pattern)) = forced[id.index()] {
                new = (new & !mask) | pattern;
            }
            if new != values[id.index()] {
                values[id.index()] = new;
                dirty[id.index()] = true;
            }
        }
    }
    FaultWaves { netlist, values }
}

/// Net values under an injected fault (mirrors [`crate::Waves`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultWaves<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl FaultWaves<'_> {
    /// The 64-lane value of a net under the fault.
    pub fn net(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// The faulted value of output `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::UnknownPort`] if no output has that name.
    pub fn output(&self, name: &str) -> Result<u64, SimulateError> {
        self.netlist
            .primary_outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, net)| self.net(*net))
            .ok_or_else(|| SimulateError::UnknownPort {
                name: name.to_string(),
            })
    }

    /// Collects faulted output bus `name[0..width]` into per-bit lane
    /// words (mirrors [`crate::Waves::output_bus`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::UnknownPort`] on the first missing bit.
    pub fn output_bus(&self, name: &str, width: usize) -> Result<Vec<u64>, SimulateError> {
        (0..width)
            .map(|i| self.output(&format!("{name}[{i}]")))
            .collect()
    }
}

/// Fault-coverage summary of a stimulus set (see [`fault_coverage`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCoverage {
    /// Faults whose effect reached some primary output.
    pub detected: usize,
    /// Total faults injected (two per gate output).
    pub total: usize,
}

impl FaultCoverage {
    /// Detected fraction.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Measures single-stuck-at coverage of `stimulus` over every gate
/// output of `netlist`: a fault counts as detected if any primary
/// output differs from the fault-free run in any lane.
///
/// # Errors
///
/// Propagates [`SimulateError`] from the underlying simulations.
pub fn fault_coverage(
    netlist: &Netlist,
    stimulus: &Stimulus,
) -> Result<FaultCoverage, SimulateError> {
    let golden = simulate(netlist, stimulus)?;
    let mut cov = FaultCoverage::default();
    for (id, node) in netlist.nodes() {
        if !node.kind().is_gate() {
            continue;
        }
        for value in [false, true] {
            cov.total += 1;
            let faulty = simulate_with_fault(netlist, stimulus, StuckAt { net: id, value })?;
            let detected = netlist
                .primary_outputs()
                .iter()
                .any(|(_, net)| faulty.net(*net) != golden.net(*net));
            if detected {
                cov.detected += 1;
            }
        }
    }
    if vlsa_telemetry::is_enabled() {
        let recorder = vlsa_telemetry::recorder();
        recorder
            .counter("vlsa.sim.faults_injected")
            .add(cov.total as u64);
        recorder
            .counter("vlsa.sim.faults_propagated")
            .add(cov.detected as u64);
        recorder
            .counter("vlsa.sim.faults_masked")
            .add((cov.total - cov.detected) as u64);
    }
    Ok(cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_netlist::Netlist;

    fn xor_chain() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("xc");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let y = nl.xor2(x, a);
        nl.output("y", y);
        (nl, x, y)
    }

    #[test]
    fn stuck_net_holds_its_value() {
        let (nl, x, y) = xor_chain();
        let mut stim = Stimulus::new();
        stim.set("a", 0b1100).set("b", 0b1010);
        let faulty = simulate_with_fault(&nl, &stim, StuckAt::one(x)).expect("sim");
        assert_eq!(faulty.net(x), u64::MAX);
        // y = x ^ a with x stuck at 1 = !a.
        assert_eq!(faulty.net(y) & 0xF, !0b1100u64 & 0xF);
        assert_eq!(faulty.output("y").expect("port") & 0xF, 0b0011);
    }

    #[test]
    fn fault_off_the_sensitized_path_is_invisible() {
        let mut nl = Netlist::new("masked");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        let zero = nl.constant(false);
        let y = nl.and2(x, zero); // output is 0 regardless of x
        nl.output("y", y);
        let mut stim = Stimulus::new();
        stim.set("a", u64::MAX).set("b", 0);
        let golden = simulate(&nl, &stim).expect("sim");
        let faulty = simulate_with_fault(&nl, &stim, StuckAt::zero(x)).expect("sim");
        assert_eq!(golden.net(y), faulty.net(y));
    }

    #[test]
    fn input_faults_are_injectable() {
        let (nl, _, y) = xor_chain();
        let a = nl.primary_inputs()[0].1;
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0b1111);
        let faulty = simulate_with_fault(&nl, &stim, StuckAt::one(a)).expect("sim");
        // y = (a^b)^a; with a stuck at 1: (1^b)^1 = b.
        assert_eq!(faulty.net(y) & 0xF, 0b1111);
    }

    #[test]
    fn coverage_of_exhaustive_vectors_is_high() {
        let (nl, _, _) = xor_chain();
        // All 4 input assignments in 4 lanes: XOR logic is fully
        // sensitized.
        let mut stim = Stimulus::new();
        stim.set("a", 0b1100).set("b", 0b1010);
        let cov = fault_coverage(&nl, &stim).expect("coverage");
        assert_eq!(cov.total, 4);
        assert_eq!(cov.detected, 4);
        assert_eq!(cov.ratio(), 1.0);
    }

    #[test]
    fn coverage_of_a_single_vector_is_partial() {
        let mut nl = Netlist::new("andor");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and2(a, b);
        nl.output("x", x);
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0); // single all-zero vector
        let cov = fault_coverage(&nl, &stim).expect("coverage");
        // Only stuck-at-1 on the AND output is visible.
        assert_eq!(cov.detected, 1);
        assert_eq!(cov.total, 2);
    }

    #[test]
    fn transient_fault_hits_only_its_lanes() {
        let (nl, x, y) = xor_chain();
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0); // fault-free y = 0 in every lane
                                      // Upset x→1 at cycle 2 for 3 cycles: lanes 2..5.
        let seu = FaultSpec::transient(x, true, 2, 3);
        assert_eq!(seu.lanes, 0b11100);
        let faulty = simulate_with_faults(&nl, &stim, &[seu]).expect("sim");
        // y = x ^ a = x: upset lanes read 1, the rest stay 0.
        assert_eq!(faulty.net(y), 0b11100);
    }

    #[test]
    fn transient_duration_clamps_at_lane_63() {
        let (nl, x, _) = xor_chain();
        let seu = FaultSpec::transient(x, true, 60, 100);
        assert_eq!(seu.lanes, 0b1111u64 << 60);
        let full = FaultSpec::transient(x, false, 0, 64);
        assert_eq!(full.lanes, u64::MAX);
        assert_eq!(full.pattern(), 0);
        let _ = nl;
    }

    #[test]
    fn multi_fault_injection_composes() {
        let mut nl = Netlist::new("pair");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and2(a, b);
        let z = nl.or2(a, b);
        nl.output("x", x);
        nl.output("z", z);
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0);
        let faulty = simulate_with_faults(
            &nl,
            &stim,
            &[
                FaultSpec::stuck_at(StuckAt::one(x)),
                FaultSpec::transient(z, true, 0, 2),
            ],
        )
        .expect("sim");
        assert_eq!(faulty.output("x").expect("x"), u64::MAX);
        assert_eq!(faulty.output("z").expect("z"), 0b11);
    }

    #[test]
    fn stuck_at_wrapper_matches_generalized_engine() {
        let (nl, x, y) = xor_chain();
        let mut stim = Stimulus::new();
        stim.set("a", 0b1100).set("b", 0b1010);
        let via_wrapper = simulate_with_fault(&nl, &stim, StuckAt::one(x)).expect("sim");
        let via_specs =
            simulate_with_faults(&nl, &stim, &[FaultSpec::from(StuckAt::one(x))]).expect("sim");
        assert_eq!(via_wrapper.net(y), via_specs.net(y));
    }

    #[test]
    fn injection_reuses_golden_waves() {
        let (nl, x, y) = xor_chain();
        let mut stim = Stimulus::new();
        stim.set("a", 0b1100).set("b", 0b1010);
        let golden = simulate(&nl, &stim).expect("sim");
        let faulty = inject_into_waves(&nl, &golden, &[FaultSpec::stuck_at(StuckAt::one(x))]);
        assert_eq!(faulty.net(x), u64::MAX);
        assert_eq!(faulty.net(y) & 0xF, !0b1100u64 & 0xF);
        // No faults: identical to golden everywhere.
        let clean = inject_into_waves(&nl, &golden, &[]);
        assert_eq!(clean.net(y), golden.net(y));
    }

    #[test]
    #[should_panic(expected = "injection cycle must be in 0..64")]
    fn transient_rejects_wide_cycle() {
        let (_, x, _) = xor_chain();
        FaultSpec::transient(x, true, 64, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_net() {
        let (nl, _, _) = xor_chain();
        let mut other = Netlist::new("o");
        let big: Vec<_> = (0..100).map(|i| other.input(format!("i{i}"))).collect();
        let mut stim = Stimulus::new();
        stim.set("a", 0).set("b", 0);
        let _ = simulate_with_fault(&nl, &stim, StuckAt::zero(big[99]));
    }
}
