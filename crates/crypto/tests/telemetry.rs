//! Exact-count checks for the `vlsa.crypto.*` attack metrics and
//! progress events, isolated in their own test binary.

use std::sync::{Arc, Mutex};
use vlsa_crypto::{candidate_keys, run_attack, ArxCipher, ExactAdder32, SAMPLE_CORPUS};
use vlsa_telemetry::{Event, ScopedRecorder, Sink};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const KEY: [u32; 4] = [0xFEED_F00D, 0xCAFE_BABE, 0x0BAD_F00D, 0xDEAD_0F15];
const ROUNDS: u32 = 12;

fn ciphertext() -> Vec<u64> {
    let cipher = ArxCipher::new(KEY, ROUNDS);
    let mut adder = ExactAdder32::new();
    cipher.encrypt_bytes(SAMPLE_CORPUS.as_bytes(), &mut adder)
}

/// Captures every event it receives.
#[derive(Default)]
struct CapturingSink {
    events: Mutex<Vec<Event>>,
}

impl Sink for CapturingSink {
    fn event(&self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

#[test]
fn attack_counts_candidates_blocks_and_progress() {
    let _guard = serial();
    let scope = ScopedRecorder::install();
    let sink = Arc::new(CapturingSink::default());
    let previous = vlsa_telemetry::set_sink(Arc::clone(&sink) as Arc<dyn Sink>);

    let ct = ciphertext();
    let candidates = candidate_keys(KEY, 5); // 32 candidates
    let mut adder = ExactAdder32::new();
    let outcome = run_attack(&ct, &candidates, ROUNDS, &mut adder);
    assert_eq!(outcome.best_key(), KEY);

    let registry = scope.registry();
    assert_eq!(registry.counter_value("vlsa.crypto.candidates"), 32);
    assert_eq!(
        registry.counter_value("vlsa.crypto.blocks_tried"),
        32 * ct.len() as u64
    );
    // The exact adder never errs, so no decryption was corrupted.
    assert_eq!(registry.counter_value("vlsa.crypto.mis_decryptions"), 0);

    // 32 candidates with an event every 16: two progress events, the
    // last one reporting completion.
    let events = sink.events.lock().expect("sink lock");
    assert_eq!(events.len(), 2);
    match &events[1] {
        Event::Progress {
            source,
            done,
            total,
        } => {
            assert_eq!(source, "vlsa.crypto.attack");
            assert_eq!((*done, *total), (32, 32));
        }
        other => panic!("unexpected event {other:?}"),
    }

    drop(events);
    match previous {
        Some(p) => {
            vlsa_telemetry::set_sink(p);
        }
        None => {
            vlsa_telemetry::clear_sink();
        }
    }
}

#[test]
fn speculative_adder_mis_decryptions_are_counted() {
    let _guard = serial();
    let scope = ScopedRecorder::install();

    let ct = ciphertext();
    let candidates = candidate_keys(KEY, 3); // 8 candidates
                                             // Window 10 errs roughly once per couple hundred additions, so on
                                             // a corpus this size every candidate decryption is corrupted.
    let mut adder = vlsa_crypto::AcaAdder32::new(10).expect("valid");
    let outcome = run_attack(&ct, &candidates, ROUNDS, &mut adder);
    assert!(outcome.adder_errors > 0);

    let registry = scope.registry();
    let mis = registry.counter_value("vlsa.crypto.mis_decryptions");
    assert!(mis > 0, "expected corrupted candidate decryptions");
    assert!(mis <= registry.counter_value("vlsa.crypto.candidates"));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = serial();
    assert!(!vlsa_telemetry::is_enabled());
    let before = vlsa_telemetry::recorder().counter_value("vlsa.crypto.candidates");
    let ct = ciphertext();
    let mut adder = ExactAdder32::new();
    run_attack(&ct, &candidate_keys(KEY, 1), ROUNDS, &mut adder);
    assert_eq!(
        vlsa_telemetry::recorder().counter_value("vlsa.crypto.candidates"),
        before
    );
}
