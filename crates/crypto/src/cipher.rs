//! A TEA-style ARX block cipher whose additions route through a
//! pluggable [`Adder32`].
//!
//! 64-bit blocks, 128-bit keys, a Feistel-like structure built from
//! additions, shifts and XORs. Not cryptographically serious — it exists
//! so the ciphertext-only attack exercises exactly the code path the
//! paper describes: a decryption kernel dominated by integer additions
//! that may silently be approximate.

use crate::Adder32;

/// Golden-ratio round constant (as in TEA).
const DELTA: u32 = 0x9E37_79B9;

/// The toy ARX cipher.
///
/// # Examples
///
/// ```
/// use vlsa_crypto::{ArxCipher, ExactAdder32};
///
/// let cipher = ArxCipher::new([1, 2, 3, 4], 16);
/// let mut adder = ExactAdder32::new();
/// let ct = cipher.encrypt_block(0x0123_4567_89AB_CDEF, &mut adder);
/// let pt = cipher.decrypt_block(ct, &mut adder);
/// assert_eq!(pt, 0x0123_4567_89AB_CDEF);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArxCipher {
    key: [u32; 4],
    rounds: u32,
}

impl ArxCipher {
    /// Creates a cipher with a 128-bit key and the given round count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(key: [u32; 4], rounds: u32) -> Self {
        assert!(rounds > 0, "at least one round required");
        ArxCipher { key, rounds }
    }

    /// The key schedule words.
    pub fn key(&self) -> [u32; 4] {
        self.key
    }

    /// Number of rounds.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    fn round_fn<A: Adder32 + ?Sized>(
        &self,
        v: u32,
        sum: u32,
        k0: u32,
        k1: u32,
        adder: &mut A,
    ) -> u32 {
        // ((v << 4) + k0) ^ (v + sum) ^ ((v >> 5) + k1)
        let t0 = adder.add(v << 4, k0);
        let t1 = adder.add(v, sum);
        let t2 = adder.add(v >> 5, k1);
        t0 ^ t1 ^ t2
    }

    /// Encrypts one 64-bit block through `adder`.
    pub fn encrypt_block<A: Adder32 + ?Sized>(&self, block: u64, adder: &mut A) -> u64 {
        let [k0, k1, k2, k3] = self.key;
        let mut v0 = block as u32;
        let mut v1 = (block >> 32) as u32;
        let mut sum = 0u32;
        for _ in 0..self.rounds {
            sum = adder.add(sum, DELTA);
            let f0 = self.round_fn(v1, sum, k0, k1, adder);
            v0 = adder.add(v0, f0);
            let f1 = self.round_fn(v0, sum, k2, k3, adder);
            v1 = adder.add(v1, f1);
        }
        (v1 as u64) << 32 | v0 as u64
    }

    /// Decrypts one 64-bit block through `adder`.
    pub fn decrypt_block<A: Adder32 + ?Sized>(&self, block: u64, adder: &mut A) -> u64 {
        let [k0, k1, k2, k3] = self.key;
        let mut v0 = block as u32;
        let mut v1 = (block >> 32) as u32;
        // sum after `rounds` exact increments; the schedule is public so
        // it is not routed through the speculative datapath.
        let mut sum = DELTA.wrapping_mul(self.rounds);
        for _ in 0..self.rounds {
            let f1 = self.round_fn(v0, sum, k2, k3, adder);
            v1 = adder.sub(v1, f1);
            let f0 = self.round_fn(v1, sum, k0, k1, adder);
            v0 = adder.sub(v0, f0);
            sum = sum.wrapping_sub(DELTA);
        }
        (v1 as u64) << 32 | v0 as u64
    }

    /// Encrypts a byte slice in ECB fashion (the paper's "fixed-size
    /// blocks encrypted individually"), zero-padding the tail.
    pub fn encrypt_bytes<A: Adder32 + ?Sized>(&self, data: &[u8], adder: &mut A) -> Vec<u64> {
        data.chunks(8)
            .map(|chunk| {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                self.encrypt_block(u64::from_le_bytes(b), adder)
            })
            .collect()
    }

    /// Decrypts blocks back to bytes.
    pub fn decrypt_bytes<A: Adder32 + ?Sized>(&self, blocks: &[u64], adder: &mut A) -> Vec<u8> {
        let mut out = Vec::with_capacity(blocks.len() * 8);
        for &blk in blocks {
            out.extend_from_slice(&self.decrypt_block(blk, adder).to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcaAdder32, ExactAdder32};
    use rand::{Rng, SeedableRng};

    const KEY: [u32; 4] = [0xDEAD_BEEF, 0x0123_4567, 0x89AB_CDEF, 0x5555_AAAA];

    #[test]
    fn round_trips_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(173);
        let cipher = ArxCipher::new(KEY, 16);
        let mut adder = ExactAdder32::new();
        for _ in 0..200 {
            let pt: u64 = rng.gen();
            let ct = cipher.encrypt_block(pt, &mut adder);
            assert_ne!(ct, pt);
            assert_eq!(cipher.decrypt_block(ct, &mut adder), pt);
        }
    }

    #[test]
    fn byte_interface_round_trips() {
        let cipher = ArxCipher::new(KEY, 12);
        let mut adder = ExactAdder32::new();
        let msg = b"attack at dawn! bring the big ladder.";
        let ct = cipher.encrypt_bytes(msg, &mut adder);
        let pt = cipher.decrypt_bytes(&ct, &mut adder);
        assert_eq!(&pt[..msg.len()], msg);
        // Padding zeros beyond the message.
        assert!(pt[msg.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn wrong_key_scrambles() {
        let cipher = ArxCipher::new(KEY, 16);
        let wrong = ArxCipher::new([1, 2, 3, 4], 16);
        let mut adder = ExactAdder32::new();
        let pt = 0x1122_3344_5566_7788u64;
        let ct = cipher.encrypt_block(pt, &mut adder);
        assert_ne!(wrong.decrypt_block(ct, &mut adder), pt);
    }

    #[test]
    fn diffusion_is_nontrivial() {
        let cipher = ArxCipher::new(KEY, 16);
        let mut adder = ExactAdder32::new();
        let base = cipher.encrypt_block(0, &mut adder);
        let flipped = cipher.encrypt_block(1, &mut adder);
        let diff = (base ^ flipped).count_ones();
        assert!(diff > 16, "only {diff} bits differ");
    }

    #[test]
    fn speculative_decryption_mostly_correct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(179);
        let cipher = ArxCipher::new(KEY, 16);
        let mut exact = ExactAdder32::new();
        let mut aca = AcaAdder32::for_accuracy(0.9999).expect("valid");
        let mut wrong_blocks = 0;
        let total = 2_000;
        for _ in 0..total {
            let pt: u64 = rng.gen();
            let ct = cipher.encrypt_block(pt, &mut exact);
            if cipher.decrypt_block(ct, &mut aca) != pt {
                wrong_blocks += 1;
            }
        }
        // ~100 additions per block at 1e-4 per-add error: a few percent
        // of blocks at most.
        assert!(wrong_blocks < total / 10, "{wrong_blocks} of {total} wrong");
        assert!(aca.errors() > 0 || wrong_blocks == 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        ArxCipher::new(KEY, 0);
    }
}
