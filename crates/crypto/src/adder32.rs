//! The pluggable 32-bit adder the toy cipher's datapath is built on.
//!
//! The paper's motivating application swaps the ALU adder inside a
//! decryption kernel for an Almost Correct Adder. This trait is that
//! swap point: the cipher is generic over it, and implementations count
//! how many additions were performed and how many speculated wrong.

use vlsa_core::{SpecError, SpeculativeAdder};

/// A 32-bit two's-complement adder with bookkeeping.
pub trait Adder32 {
    /// Adds two words modulo `2^32` (possibly approximately).
    fn add(&mut self, a: u32, b: u32) -> u32;

    /// Subtracts modulo `2^32` by adding the two's complement (the
    /// negation itself is not routed through the speculative datapath).
    fn sub(&mut self, a: u32, b: u32) -> u32 {
        self.add(a, b.wrapping_neg())
    }

    /// Number of additions performed so far.
    fn additions(&self) -> u64;

    /// Number of additions whose result differed from the exact sum.
    fn errors(&self) -> u64;
}

/// An exact adder (the reliable baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactAdder32 {
    additions: u64,
}

impl ExactAdder32 {
    /// Creates the adder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adder32 for ExactAdder32 {
    fn add(&mut self, a: u32, b: u32) -> u32 {
        self.additions += 1;
        a.wrapping_add(b)
    }

    fn additions(&self) -> u64 {
        self.additions
    }

    fn errors(&self) -> u64 {
        0
    }
}

/// A 32-bit Almost Correct Adder (the paper's fast unreliable adder).
///
/// # Examples
///
/// ```
/// use vlsa_crypto::{Adder32, AcaAdder32};
///
/// let mut adder = AcaAdder32::for_accuracy(0.999)?;
/// let s = adder.add(700_000, 42);
/// assert_eq!(s, 700_042);
/// assert_eq!(adder.additions(), 1);
/// # Ok::<(), vlsa_core::SpecError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcaAdder32 {
    inner: SpeculativeAdder,
    additions: u64,
    errors: u64,
}

impl AcaAdder32 {
    /// Wraps an explicit 32-bit speculative adder.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidWindow`] if `window` is invalid for
    /// 32-bit operands.
    pub fn new(window: usize) -> Result<Self, SpecError> {
        Ok(AcaAdder32 {
            inner: SpeculativeAdder::new(32, window)?,
            additions: 0,
            errors: 0,
        })
    }

    /// Sizes the window for a per-addition accuracy target.
    ///
    /// # Errors
    ///
    /// As [`SpeculativeAdder::for_accuracy`].
    pub fn for_accuracy(accuracy: f64) -> Result<Self, SpecError> {
        Ok(AcaAdder32 {
            inner: SpeculativeAdder::for_accuracy(32, accuracy)?,
            additions: 0,
            errors: 0,
        })
    }

    /// The wrapped speculative adder.
    pub fn speculative(&self) -> &SpeculativeAdder {
        &self.inner
    }
}

impl Adder32 for AcaAdder32 {
    fn add(&mut self, a: u32, b: u32) -> u32 {
        self.additions += 1;
        let r = self.inner.add_u64(a as u64, b as u64);
        if !r.is_correct() {
            self.errors += 1;
        }
        r.speculative as u32
    }

    fn additions(&self) -> u64 {
        self.additions
    }

    fn errors(&self) -> u64 {
        self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_adder_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(157);
        let mut adder = ExactAdder32::new();
        for _ in 0..100 {
            let a: u32 = rng.gen();
            let b: u32 = rng.gen();
            assert_eq!(adder.add(a, b), a.wrapping_add(b));
            assert_eq!(adder.sub(a, b), a.wrapping_sub(b));
        }
        assert_eq!(adder.additions(), 200);
        assert_eq!(adder.errors(), 0);
    }

    #[test]
    fn aca_with_full_window_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(163);
        let mut adder = AcaAdder32::new(32).expect("valid");
        for _ in 0..100 {
            let a: u32 = rng.gen();
            let b: u32 = rng.gen();
            assert_eq!(adder.add(a, b), a.wrapping_add(b));
        }
        assert_eq!(adder.errors(), 0);
    }

    #[test]
    fn aca_counts_its_errors() {
        let mut adder = AcaAdder32::new(3).expect("valid");
        // Full-width carry defeats a window of 3.
        let wrong = adder.add(0x7FFF_FFFF, 1);
        assert_ne!(wrong, 0x8000_0000);
        assert_eq!(adder.errors(), 1);
        assert_eq!(adder.additions(), 1);
    }

    #[test]
    fn error_rate_small_at_design_accuracy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(167);
        let mut adder = AcaAdder32::for_accuracy(0.999).expect("valid");
        for _ in 0..20_000 {
            adder.add(rng.gen(), rng.gen());
        }
        let rate = adder.errors() as f64 / adder.additions() as f64;
        assert!(rate < 0.001, "rate {rate}");
        assert!(adder.speculative().window() < 32);
    }

    #[test]
    fn subtraction_via_complement() {
        let mut adder = AcaAdder32::new(32).expect("valid");
        assert_eq!(adder.sub(10, 3), 7);
        assert_eq!(adder.sub(3, 10), 3u32.wrapping_sub(10));
    }
}
