//! The paper's motivating application: a ciphertext-only
//! frequency-analysis attack whose decryption kernel runs on an
//! Almost Correct Adder.
//!
//! §1 of the DATE 2008 paper argues that attacks which aggregate a
//! statistic over many independently decrypted blocks tolerate a rare
//! mis-decryption, so the ALU adder in the hot loop may be speculative.
//! This crate builds that scenario end to end:
//!
//! - [`Adder32`] / [`ExactAdder32`] / [`AcaAdder32`]: the pluggable
//!   adder datapath with error accounting,
//! - [`ArxCipher`]: a TEA-style ARX block cipher generic over the adder,
//! - [`EnglishScorer`]: letter-frequency scoring of candidate plaintext,
//! - [`run_attack`]: the key search itself, plus [`candidate_keys`] and
//!   a built-in [`SAMPLE_CORPUS`].
//!
//! # Examples
//!
//! ```
//! use vlsa_crypto::{
//!     candidate_keys, run_attack, AcaAdder32, ArxCipher, ExactAdder32, SAMPLE_CORPUS,
//! };
//!
//! let key = [7, 11, 13, 17];
//! let cipher = ArxCipher::new(key, 12);
//! let mut enc = ExactAdder32::new();
//! let ct = cipher.encrypt_bytes(SAMPLE_CORPUS.as_bytes(), &mut enc);
//!
//! // Attack with a speculative adder in the decryption kernel.
//! let mut aca = AcaAdder32::for_accuracy(0.9999)?;
//! let outcome = run_attack(&ct, &candidate_keys(key, 4), 12, &mut aca);
//! assert_eq!(outcome.best_key(), key);
//! # Ok::<(), vlsa_core::SpecError>(())
//! ```

mod adder32;
mod attack;
mod cipher;
mod freq;

pub use adder32::{AcaAdder32, Adder32, ExactAdder32};
pub use attack::{candidate_keys, run_attack, AttackOutcome, KeyScore, SAMPLE_CORPUS};
pub use cipher::ArxCipher;
pub use freq::{EnglishScorer, ENGLISH_LETTER_FREQ};
