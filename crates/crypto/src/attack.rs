//! The ciphertext-only key-search attack (paper §1).
//!
//! The attacker holds ECB ciphertext and a pruned candidate key set.
//! Every candidate is used to decrypt the corpus; candidates whose
//! plaintext scores English-like survive. Swapping the decryption
//! adder for an ACA speeds the inner loop up without changing the
//! ranking, because a rare mis-decrypted block cannot move the corpus
//! letter frequencies far.

use crate::{Adder32, ArxCipher, EnglishScorer};

/// A built-in public-domain-style English corpus for demos and tests.
pub const SAMPLE_CORPUS: &str = "\
The evening fog rolled in over the harbour while the last of the fishing \
boats tied up along the quay. In the tavern by the water the talk turned, \
as it always did, to the storm of the previous winter and the ships that \
had never come home. An old engineer sat in the corner with a notebook, \
sketching adders and carry chains by candlelight, convinced that a machine \
which was allowed to be wrong one time in ten thousand could be made twice \
as fast as one that never erred. Nobody believed him, of course, and the \
innkeeper poured another round while the rain began again. Still he wrote \
on, numbering every page, certain that speculation and recovery together \
could be stronger than caution alone. The harbour bell rang midnight and \
the fog pressed close against the windows like a patient audience.";

/// The attack's verdict on one candidate key.
#[derive(Clone, Debug, PartialEq)]
pub struct KeyScore {
    /// The candidate key.
    pub key: [u32; 4],
    /// English-likeness score of the decrypted corpus (lower = better).
    pub score: f64,
}

/// Result of a ciphertext-only attack run.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// Candidates ranked best (most English) first.
    pub ranking: Vec<KeyScore>,
    /// Total additions spent in the decryption kernel.
    pub additions: u64,
    /// Additions whose speculative result was wrong.
    pub adder_errors: u64,
}

impl AttackOutcome {
    /// The best-ranked key.
    ///
    /// # Panics
    ///
    /// Panics if no candidates were scored.
    pub fn best_key(&self) -> [u32; 4] {
        self.ranking.first().expect("at least one candidate").key
    }

    /// Rank (0-based) of `key` in the outcome, if present.
    pub fn rank_of(&self, key: [u32; 4]) -> Option<usize> {
        self.ranking.iter().position(|k| k.key == key)
    }
}

/// How often [`run_attack`] emits a progress event (in candidates).
const PROGRESS_EVERY: usize = 16;

/// Runs the ciphertext-only attack: decrypts `ciphertext` under every
/// candidate key with `adder` and ranks candidates by English score.
///
/// `rounds` must match the encryption round count (it is public).
///
/// When telemetry is enabled, counts candidates, blocks tried, and
/// mis-decryptions (candidate decryptions corrupted by at least one
/// speculative adder error) under `vlsa.crypto.*`, and emits progress
/// events from source `vlsa.crypto.attack` every few candidates.
pub fn run_attack<A: Adder32 + ?Sized>(
    ciphertext: &[u64],
    candidates: &[[u32; 4]],
    rounds: u32,
    adder: &mut A,
) -> AttackOutcome {
    let telemetry_on = vlsa_telemetry::is_enabled();
    let scorer = EnglishScorer::new();
    let mut ranking: Vec<KeyScore> = Vec::with_capacity(candidates.len());
    for (i, &key) in candidates.iter().enumerate() {
        let errors_before = adder.errors();
        let cipher = ArxCipher::new(key, rounds);
        let plain = cipher.decrypt_bytes(ciphertext, adder);
        ranking.push(KeyScore {
            key,
            score: scorer.score(&plain),
        });
        if telemetry_on {
            let recorder = vlsa_telemetry::recorder();
            recorder.counter("vlsa.crypto.candidates").incr();
            recorder
                .counter("vlsa.crypto.blocks_tried")
                .add(ciphertext.len() as u64);
            if adder.errors() > errors_before {
                recorder.counter("vlsa.crypto.mis_decryptions").incr();
            }
            if (i + 1) % PROGRESS_EVERY == 0 || i + 1 == candidates.len() {
                vlsa_telemetry::emit(vlsa_telemetry::Event::Progress {
                    source: "vlsa.crypto.attack".to_string(),
                    done: (i + 1) as u64,
                    total: candidates.len() as u64,
                });
            }
        }
    }
    ranking.sort_by(|a, b| a.score.total_cmp(&b.score));
    AttackOutcome {
        ranking,
        additions: adder.additions(),
        adder_errors: adder.errors(),
    }
}

/// Builds a candidate key set around `true_key` by varying its low
/// 16 bits through all values — the paper's "pruned set of potential
/// keys" after the analytic phase.
pub fn candidate_keys(true_key: [u32; 4], bits: u32) -> Vec<[u32; 4]> {
    assert!(bits <= 16, "candidate space limited to 2^16");
    (0..(1u32 << bits))
        .map(|low| {
            let mut k = true_key;
            k[3] = (k[3] & !((1 << bits) - 1)) | low;
            k
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcaAdder32, ExactAdder32};

    const KEY: [u32; 4] = [0xFEED_F00D, 0xCAFE_BABE, 0x0BAD_F00D, 0xDEAD_0F15];
    const ROUNDS: u32 = 12;

    fn ciphertext() -> Vec<u64> {
        let cipher = ArxCipher::new(KEY, ROUNDS);
        let mut adder = ExactAdder32::new();
        cipher.encrypt_bytes(SAMPLE_CORPUS.as_bytes(), &mut adder)
    }

    #[test]
    fn exact_attack_recovers_key() {
        let ct = ciphertext();
        let candidates = candidate_keys(KEY, 6);
        let mut adder = ExactAdder32::new();
        let outcome = run_attack(&ct, &candidates, ROUNDS, &mut adder);
        assert_eq!(outcome.best_key(), KEY);
        assert_eq!(outcome.rank_of(KEY), Some(0));
        assert_eq!(outcome.adder_errors, 0);
        assert!(outcome.additions > 0);
    }

    #[test]
    fn speculative_attack_recovers_key_despite_errors() {
        let ct = ciphertext();
        let candidates = candidate_keys(KEY, 6);
        // Small window so speculation errors actually occur during the
        // search (roughly one addition in two hundred), while most
        // blocks still decrypt cleanly.
        let mut adder = AcaAdder32::new(10).expect("valid");
        let outcome = run_attack(&ct, &candidates, ROUNDS, &mut adder);
        assert_eq!(
            outcome.best_key(),
            KEY,
            "ACA attack must still rank the true key first"
        );
        assert!(
            outcome.adder_errors > 0,
            "window 10 should err during the search"
        );
    }

    #[test]
    fn true_key_scores_clearly_best() {
        let ct = ciphertext();
        let candidates = candidate_keys(KEY, 4);
        let mut adder = ExactAdder32::new();
        let outcome = run_attack(&ct, &candidates, ROUNDS, &mut adder);
        let best = &outcome.ranking[0];
        let second = &outcome.ranking[1];
        assert!(best.score * 2.0 < second.score, "{best:?} vs {second:?}");
    }

    #[test]
    fn candidate_generation() {
        let keys = candidate_keys(KEY, 3);
        assert_eq!(keys.len(), 8);
        assert!(keys.contains(&KEY) || keys.iter().any(|k| k[3] & 0x7 == KEY[3] & 0x7));
        // All candidates share the high bits.
        assert!(keys
            .iter()
            .all(|k| k[0] == KEY[0] && k[3] >> 3 == KEY[3] >> 3));
    }

    #[test]
    #[should_panic(expected = "limited to 2^16")]
    fn oversized_candidate_space_rejected() {
        candidate_keys(KEY, 20);
    }
}
