//! English frequency analysis for ciphertext-only attacks.
//!
//! The attacker's statistic from the paper's §1: decrypted text under
//! the right key looks like English (letter frequencies near the
//! language's), under a wrong key it looks uniform. A handful of
//! mis-decrypted blocks barely moves the statistic — which is exactly
//! why an Almost Correct Adder is admissible in the decryption kernel.

/// Relative frequencies of `a`–`z` in typical English text (percent).
pub const ENGLISH_LETTER_FREQ: [f64; 26] = [
    8.167, 1.492, 2.782, 4.253, 12.702, 2.228, 2.015, 6.094, 6.966, 0.153, 0.772, 4.025, 2.406,
    6.749, 7.507, 1.929, 0.095, 5.987, 6.327, 9.056, 2.758, 0.978, 2.360, 0.150, 1.974, 0.074,
];

/// Scores how English-like a byte stream is. Lower is more English.
///
/// Combines a chi-squared statistic over letter frequencies with a
/// penalty for bytes outside the printable-text range, so random-looking
/// plaintexts score far worse than slightly corrupted English.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnglishScorer;

impl EnglishScorer {
    /// Creates the scorer.
    pub fn new() -> Self {
        EnglishScorer
    }

    /// The score of `text`: chi-squared distance of its letter
    /// histogram from English plus `10 ×` the fraction of non-text
    /// bytes. Lower is more English; empty input scores `f64::MAX`.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_crypto::EnglishScorer;
    ///
    /// let scorer = EnglishScorer::new();
    /// let english = scorer.score(b"the quick brown fox jumps over the lazy dog");
    /// let noise = scorer.score(&[0x17, 0x83, 0xF0, 0x42, 0x99, 0xAC, 0x01, 0xEE]);
    /// assert!(english < noise);
    /// ```
    pub fn score(&self, text: &[u8]) -> f64 {
        if text.is_empty() {
            return f64::MAX;
        }
        let mut counts = [0u64; 26];
        let mut letters = 0u64;
        let mut junk = 0u64;
        for &b in text {
            match b {
                b'a'..=b'z' => {
                    counts[(b - b'a') as usize] += 1;
                    letters += 1;
                }
                b'A'..=b'Z' => {
                    counts[(b - b'A') as usize] += 1;
                    letters += 1;
                }
                b' '
                | b'\n'
                | b'\r'
                | b'\t'
                | b'.'
                | b','
                | b';'
                | b':'
                | b'\''
                | b'"'
                | b'!'
                | b'?'
                | b'-'
                | b'('
                | b')'
                | b'0'..=b'9' => {}
                _ => junk += 1,
            }
        }
        let junk_penalty = 10.0 * junk as f64 / text.len() as f64;
        if letters == 0 {
            return 100.0 + junk_penalty;
        }
        let mut chi2 = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let expected = ENGLISH_LETTER_FREQ[i] / 100.0 * letters as f64;
            if expected > 0.0 {
                let d = c as f64 - expected;
                chi2 += d * d / expected;
            }
        }
        chi2 / letters as f64 + junk_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    const SAMPLE: &[u8] = b"It is a truth universally acknowledged, that a single man in \
        possession of a good fortune, must be in want of a wife. However little known the \
        feelings or views of such a man may be on his first entering a neighbourhood, this \
        truth is so well fixed in the minds of the surrounding families.";

    #[test]
    fn english_beats_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(181);
        let scorer = EnglishScorer::new();
        let english = scorer.score(SAMPLE);
        let random: Vec<u8> = (0..SAMPLE.len()).map(|_| rng.gen()).collect();
        let noise = scorer.score(&random);
        assert!(english * 5.0 < noise, "{english} vs {noise}");
    }

    #[test]
    fn frequencies_sum_to_about_100() {
        let total: f64 = ENGLISH_LETTER_FREQ.iter().sum();
        assert!((total - 100.0).abs() < 0.5, "{total}");
    }

    #[test]
    fn case_insensitive() {
        let scorer = EnglishScorer::new();
        let lower = scorer.score(b"hello there general kenobi");
        let upper = scorer.score(b"HELLO THERE GENERAL KENOBI");
        assert!((lower - upper).abs() < 1e-12);
    }

    #[test]
    fn corruption_moves_score_only_slightly() {
        let scorer = EnglishScorer::new();
        let clean = scorer.score(SAMPLE);
        // Corrupt one 8-byte block out of ~40 (a wrongly decrypted block).
        let mut corrupted = SAMPLE.to_vec();
        for (i, b) in corrupted.iter_mut().enumerate().take(8) {
            *b = (0x80 + i as u8) ^ 0x37;
        }
        let dirty = scorer.score(&corrupted);
        assert!(dirty > clean);
        // Still clearly better than uniform noise.
        let mut rng = rand::rngs::StdRng::seed_from_u64(191);
        let random: Vec<u8> = (0..SAMPLE.len()).map(|_| rng.gen()).collect();
        assert!(dirty * 3.0 < scorer.score(&random));
    }

    #[test]
    fn degenerate_inputs() {
        let scorer = EnglishScorer::new();
        assert_eq!(scorer.score(&[]), f64::MAX);
        // Digits/punctuation only: no letters, no junk.
        let s = scorer.score(b"1234 5678!");
        assert!(s >= 100.0);
    }
}
