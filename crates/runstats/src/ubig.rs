//! A minimal arbitrary-precision unsigned integer.
//!
//! The exact run-length recurrence `A_n(x)` counts subsets of `{0,1}^n` for
//! `n` up to several thousand bits, so the counts themselves need thousands
//! of bits. Only addition, subtraction, shifting, small multiplication and
//! float conversion are required, so we implement a compact limb vector
//! here instead of pulling in a general bignum dependency.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Shl, Sub, SubAssign};

/// An arbitrary-precision unsigned integer stored as little-endian `u64`
/// limbs with no trailing zero limbs (zero is the empty limb vector).
///
/// # Examples
///
/// ```
/// use vlsa_runstats::Ubig;
///
/// let a = Ubig::from(u64::MAX);
/// let b = &a + &a;
/// assert_eq!(b.bit_len(), 65);
/// assert_eq!(b.to_f64(), 2.0 * u64::MAX as f64);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Ubig {
    limbs: Vec<u64>,
}

impl Ubig {
    /// The value zero.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// `2^exp`.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_runstats::Ubig;
    /// assert_eq!(Ubig::pow2(10), Ubig::from(1024u64));
    /// ```
    pub fn pow2(exp: usize) -> Self {
        let mut limbs = vec![0u64; exp / 64 + 1];
        limbs[exp / 64] = 1u64 << (exp % 64);
        let mut v = Ubig { limbs };
        v.normalize();
        v
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (zero has bit length 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Multiply in place by a small constant.
    pub fn mul_small(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u128 = 0;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * m as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Divide in place by a small constant, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_small(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem: u128 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *limb as u128;
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.normalize();
        rem as u64
    }

    /// Approximate the value as an `f64`, saturating to `f64::INFINITY`
    /// for values beyond the exponent range.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.limbs[0] as f64;
        }
        // Take the top 64 significant bits as a mantissa and scale.
        let (mant, exp) = self.top_bits();
        let scaled = mant as f64;
        let e = exp as i32;
        if e > f64::MAX_EXP {
            f64::INFINITY
        } else {
            scaled * 2f64.powi(e)
        }
    }

    /// Top 64 significant bits and the power-of-two exponent such that the
    /// value is approximately `mantissa * 2^exp`.
    fn top_bits(&self) -> (u64, usize) {
        let bits = self.bit_len();
        debug_assert!(bits > 64);
        let shift = bits - 64;
        let limb_idx = shift / 64;
        let bit_idx = shift % 64;
        let lo = self.limbs[limb_idx] >> bit_idx;
        let mant = if bit_idx == 0 {
            lo
        } else {
            lo | (self.limbs.get(limb_idx + 1).copied().unwrap_or(0) << (64 - bit_idx))
        };
        (mant, shift)
    }

    /// Ratio `self / other` as an `f64`, correct to mantissa precision even
    /// when both operands exceed the `f64` range.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_runstats::Ubig;
    /// let num = Ubig::pow2(4000);
    /// let den = Ubig::pow2(4001);
    /// assert_eq!(num.ratio(&den), 0.5);
    /// ```
    pub fn ratio(&self, other: &Ubig) -> f64 {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return 0.0;
        }
        let nb = self.bit_len();
        let db = other.bit_len();
        let num_mant = self.mantissa64();
        let den_mant = other.mantissa64();
        let exp = nb as i64 - db as i64;
        (num_mant / den_mant) * 2f64.powi(exp as i32)
    }

    /// Mantissa in `[0.5, 1.0)` such that value ≈ mantissa * 2^bit_len.
    fn mantissa64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 64 {
            self.limbs[0] as f64 / 2f64.powi(bits as i32)
        } else {
            let (mant, _) = self.top_bits();
            mant as f64 / 2f64.powi(64)
        }
    }

    /// Base-2 logarithm, or negative infinity for zero.
    pub fn log2(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        let bits = self.bit_len();
        self.mantissa64().log2() + bits as f64
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        let mut b = Ubig { limbs: vec![v] };
        b.normalize();
        b
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        let mut b = Ubig {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        b.normalize();
        b
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(r);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }
}

impl Add<&Ubig> for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl SubAssign<&Ubig> for Ubig {
    /// # Panics
    ///
    /// Panics if `rhs > self` (unsigned subtraction would underflow).
    fn sub_assign(&mut self, rhs: &Ubig) {
        assert!(*self >= *rhs, "ubig subtraction underflow");
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }
}

impl Sub<&Ubig> for &Ubig {
    type Output = Ubig;
    fn sub(self, rhs: &Ubig) -> Ubig {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl Shl<usize> for &Ubig {
    type Output = Ubig;
    fn shl(self, shift: usize) -> Ubig {
        if self.is_zero() {
            return Ubig::zero();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut out = Ubig { limbs };
        out.normalize();
        out
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut v = self.clone();
        let mut chunks = Vec::new();
        while !v.is_zero() {
            chunks.push(v.div_small(CHUNK));
        }
        let mut s = chunks.pop().expect("nonzero value has chunks").to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = format!("{:x}", self.limbs.last().expect("nonzero"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Binary for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = format!("{:b}", self.limbs.last().expect("nonzero"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:064b}"));
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn zero_properties() {
        let z = Ubig::zero();
        assert!(z.is_zero());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.to_f64(), 0.0);
        assert_eq!(z.to_string(), "0");
        assert_eq!(Ubig::default(), z);
    }

    #[test]
    fn add_matches_u128() {
        let a = big(0xFFFF_FFFF_FFFF_FFFF_FFFF);
        let b = big(0x1_0000_0000);
        let s = &a + &b;
        assert_eq!(s, big(0xFFFF_FFFF_FFFF_FFFF_FFFF + 0x1_0000_0000));
    }

    #[test]
    fn sub_matches_u128() {
        let a = big(u128::MAX);
        let b = big(u64::MAX as u128 + 17);
        let d = &a - &b;
        assert_eq!(d, big(u128::MAX - (u64::MAX as u128 + 17)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &big(1) - &big(2);
    }

    #[test]
    fn shl_matches_u128() {
        let a = big(0xDEAD_BEEF);
        assert_eq!(&a << 13, big(0xDEAD_BEEF << 13));
        assert_eq!(&a << 64, big((0xDEAD_BEEFu128) << 64));
        assert_eq!(&a << 0, a);
    }

    #[test]
    fn pow2_bit_len() {
        for e in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let p = Ubig::pow2(e);
            assert_eq!(p.bit_len(), e + 1, "2^{e}");
        }
    }

    #[test]
    fn mul_div_small_round_trip() {
        let mut v = big(123_456_789_012_345_678_901_234_567u128);
        v.mul_small(9_999_991);
        let r = v.div_small(9_999_991);
        assert_eq!(r, 0);
        assert_eq!(v, big(123_456_789_012_345_678_901_234_567u128));
    }

    #[test]
    fn div_small_remainder() {
        let mut v = big(1000);
        let r = v.div_small(7);
        assert_eq!(v, big(142));
        assert_eq!(r, 6);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(big(12345).to_string(), "12345");
        // 2^128 = 340282366920938463463374607431768211456
        let p = Ubig::pow2(128);
        assert_eq!(p.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn hex_and_binary_formatting() {
        let v = big(0xABCD_0123_4567_89EF_0011_2233u128);
        assert_eq!(
            format!("{v:x}"),
            format!("{:x}", 0xABCD_0123_4567_89EF_0011_2233u128)
        );
        let w = big(0b1011);
        assert_eq!(format!("{w:b}"), "1011");
    }

    #[test]
    fn to_f64_large() {
        let p = Ubig::pow2(100);
        assert_eq!(p.to_f64(), 2f64.powi(100));
        let huge = Ubig::pow2(5000);
        assert!(huge.to_f64().is_infinite());
    }

    #[test]
    fn ratio_beyond_f64_range() {
        let a = Ubig::pow2(4096);
        let b = &Ubig::pow2(4096) + &Ubig::pow2(4095);
        let r = a.ratio(&b);
        assert!((r - 2.0 / 3.0).abs() < 1e-12, "{r}");
    }

    #[test]
    fn ratio_small_values() {
        assert_eq!(big(3).ratio(&big(4)), 0.75);
        assert_eq!(Ubig::zero().ratio(&big(4)), 0.0);
    }

    #[test]
    fn log2_values() {
        assert_eq!(big(1024).log2(), 10.0);
        let p = Ubig::pow2(4096);
        assert!((p.log2() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(Ubig::pow2(100) > big(u128::MAX >> 30));
        assert_eq!(big(7).cmp(&big(7)), std::cmp::Ordering::Equal);
    }
}
