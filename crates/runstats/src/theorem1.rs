//! Theorem 1 of the paper: the expected number of fair coin flips needed
//! to first observe a run of `k` heads is `2^{k+1} - 2`.
//!
//! The proof walks an infinite line graph (paper Fig. 2): from node `i`, a
//! head advances to `i+1` and a tail resets to node 0. This module provides
//! the closed form, the recurrence it solves, an exact absorbing-chain
//! expectation for finite budgets, and a Monte Carlo counterpart used by
//! the `theorem1` experiment binary.

use rand::Rng;

/// Closed-form expected flips to reach a run of `k` heads: `2^{k+1} - 2`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::expected_flips_for_run;
///
/// assert_eq!(expected_flips_for_run(1), 2.0);
/// assert_eq!(expected_flips_for_run(3), 14.0);
/// ```
pub fn expected_flips_for_run(k: u32) -> f64 {
    2f64.powi(k as i32 + 1) - 2.0
}

/// Solves the paper's recurrence `T_k = T_{k-1} + 1/2 * 2 + 1/2 * (1 + T_k)`
/// numerically — i.e. `T_k = 2 * T_{k-1} + 2` with `T_0 = 0` — and returns
/// `T_0..=T_k`.
///
/// Returned values agree with [`expected_flips_for_run`]; the function
/// exists so tests can check the derivation step by step.
pub fn recurrence_expected_flips(k: u32) -> Vec<f64> {
    let mut t = vec![0.0];
    for _ in 1..=k {
        let prev = *t.last().expect("nonempty");
        t.push(2.0 * prev + 2.0);
    }
    t
}

/// Simulates the line-graph walk once: flips a fair coin until a run of
/// `k` heads occurs and returns the number of flips used.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use vlsa_runstats::flips_until_run;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let flips = flips_until_run(3, &mut rng);
/// assert!(flips >= 3);
/// ```
pub fn flips_until_run<R: Rng + ?Sized>(k: u32, rng: &mut R) -> u64 {
    let mut flips = 0u64;
    let mut run = 0u32;
    while run < k {
        flips += 1;
        if rng.gen::<bool>() {
            run += 1;
        } else {
            run = 0;
        }
    }
    flips
}

/// Monte Carlo estimate of the expected flips to a `k`-head run over
/// `trials` independent walks, returned as `(mean, standard_error)`.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn monte_carlo_expected_flips<R: Rng + ?Sized>(k: u32, trials: u64, rng: &mut R) -> (f64, f64) {
    assert!(trials > 0, "at least one trial required");
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        let f = flips_until_run(k, rng) as f64;
        sum += f;
        sum_sq += f * f;
    }
    let mean = sum / trials as f64;
    let var = (sum_sq / trials as f64 - mean * mean).max(0.0);
    (mean, (var / trials as f64).sqrt())
}

/// Exact probability that a run of `k` heads appears within `n` flips,
/// computed by stepping the absorbing Markov chain on states `0..=k`.
///
/// This is the complement of `A_n(k-1)/2^n` and is used to cross-check the
/// [`crate::count_bounded_runs`] recurrence through an independent model.
///
/// # Panics
///
/// Panics if `k` is zero (a run of zero heads is vacuously present).
pub fn prob_run_within(k: u32, n: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let k = k as usize;
    // state i = current head-run length; state k absorbs.
    let mut dist = vec![0.0f64; k + 1];
    dist[0] = 1.0;
    for _ in 0..n {
        let mut next = vec![0.0f64; k + 1];
        next[k] = dist[k];
        for (i, &p) in dist.iter().enumerate().take(k) {
            next[0] += p * 0.5;
            next[(i + 1).min(k)] += p * 0.5;
        }
        dist = next;
    }
    dist[k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn closed_form_values() {
        assert_eq!(expected_flips_for_run(0), 0.0);
        assert_eq!(expected_flips_for_run(1), 2.0);
        assert_eq!(expected_flips_for_run(2), 6.0);
        assert_eq!(expected_flips_for_run(4), 30.0);
        assert_eq!(expected_flips_for_run(10), 2046.0);
    }

    #[test]
    fn recurrence_matches_closed_form() {
        let t = recurrence_expected_flips(16);
        for (k, &v) in t.iter().enumerate() {
            assert_eq!(v, expected_flips_for_run(k as u32), "k={k}");
        }
    }

    #[test]
    fn monte_carlo_matches_theorem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for k in [1u32, 3, 6] {
            let (mean, se) = monte_carlo_expected_flips(k, 20_000, &mut rng);
            let exact = expected_flips_for_run(k);
            assert!(
                (mean - exact).abs() < 5.0 * se + 0.5,
                "k={k}: mean {mean}, exact {exact}, se {se}"
            );
        }
    }

    #[test]
    fn walk_takes_at_least_k_flips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(flips_until_run(5, &mut rng) >= 5);
        }
    }

    #[test]
    fn markov_chain_agrees_with_exact_count() {
        for (k, n) in [(3u32, 10usize), (5, 64), (8, 200)] {
            let markov = prob_run_within(k, n);
            let exact = crate::prob_longest_run_gt(n, k as usize - 1);
            assert!((markov - exact).abs() < 1e-12, "k={k} n={n}");
        }
    }

    #[test]
    fn prob_run_within_monotone_in_n() {
        let mut prev = 0.0;
        for n in 0..100 {
            let p = prob_run_within(4, n);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn prob_run_rejects_zero_k() {
        prob_run_within(0, 10);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn monte_carlo_rejects_zero_trials() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        monte_carlo_expected_flips(3, 0, &mut rng);
    }
}
