//! Statistics of the longest *true carry chain* in an addition.
//!
//! A propagate run only matters if a live carry enters it, so the
//! dynamic critical path of an adder on given operands is the longest
//! **generate followed by propagates** chain. This is the statistic
//! behind timing speculation (Razor-style underclocking, Nowick's
//! speculative completion): an exact adder clocked to cover chains of
//! length `c` errs exactly when a longer chain occurs.

use rand::Rng;

/// Exact probability that an `n`-bit addition of uniform operands
/// contains a carry chain longer than `c` positions.
///
/// A chain of length `L` means a generate at some bit `j` whose carry
/// propagates through `L - 1` consecutive propagate positions above it
/// (so it influences the sum bit at `j + L - 1`; chains are counted
/// within the `n` sum bits).
///
/// Dynamic program over the current chain length, `O(n·c)`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::{prob_carry_chain_gt, prob_longest_run_gt};
///
/// // A chain needs a generate plus propagates, so it is rarer than a
/// // bare propagate run of the same length.
/// let chain = prob_carry_chain_gt(64, 10);
/// let run = prob_longest_run_gt(64, 10);
/// assert!(chain < run);
/// assert!(chain > 0.0);
/// ```
pub fn prob_carry_chain_gt(n: usize, c: usize) -> f64 {
    if c >= n {
        return 0.0;
    }
    // Survival DP over chain length ending at the previous bit, capped
    // at c (state c+? would be a failure).
    // Per bit: generate (1/4) -> chain = 1; kill (1/4) -> chain = 0;
    // propagate (1/2) -> chain = chain + 1 if chain > 0 else 0.
    let mut state = vec![0.0f64; c + 1];
    state[0] = 1.0;
    for _ in 0..n {
        let mut next = vec![0.0f64; c + 1];
        let mut dead = 0.0; // mass with failure
        for (len, &p) in state.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            next[0] += p * 0.25; // kill
            next[1.min(c)] += p * 0.25; // generate starts a chain of 1
            if c == 0 {
                // any generate is already a chain longer than 0
                dead += p * 0.25;
                next[0] -= p * 0.25;
            }
            // propagate
            if len == 0 {
                next[0] += p * 0.5;
            } else if len + 1 > c {
                dead += p * 0.5;
            } else {
                next[len + 1] += p * 0.5;
            }
        }
        let _ = dead;
        state = next;
    }
    1.0 - state.iter().sum::<f64>()
}

/// Longest true carry chain of one operand pair (bit-exact, for
/// validation and workload measurement).
///
/// # Panics
///
/// Panics if `nbits > 64`.
pub fn longest_carry_chain_u64(a: u64, b: u64, nbits: usize) -> u32 {
    assert!(nbits <= 64, "nbits must be at most 64");
    let mut best = 0u32;
    let mut chain = 0u32;
    for i in 0..nbits {
        let ai = (a >> i) & 1 == 1;
        let bi = (b >> i) & 1 == 1;
        if ai && bi {
            chain = 1; // generate
        } else if (ai ^ bi) && chain > 0 {
            chain += 1; // propagate extends a live chain
        } else if ai ^ bi {
            chain = 0; // propagate with no carry below
        } else {
            chain = 0; // kill
        }
        best = best.max(chain);
    }
    best
}

/// Samples the longest carry chain of a random `nbits`-bit addition.
///
/// # Panics
///
/// Panics unless `1 <= nbits <= 64`.
pub fn sample_carry_chain<R: Rng + ?Sized>(nbits: usize, rng: &mut R) -> u32 {
    assert!((1..=64).contains(&nbits), "nbits must be in 1..=64");
    let mask = if nbits == 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    };
    longest_carry_chain_u64(rng.gen::<u64>() & mask, rng.gen::<u64>() & mask, nbits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Brute-force tail probability by enumeration.
    fn brute(n: usize, c: usize) -> f64 {
        let mut hits = 0u64;
        for a in 0u64..(1 << n) {
            for b in 0u64..(1 << n) {
                if longest_carry_chain_u64(a, b, n) as usize > c {
                    hits += 1;
                }
            }
        }
        hits as f64 / (1u64 << (2 * n)) as f64
    }

    #[test]
    fn matches_brute_force() {
        for n in [3usize, 5, 7] {
            for c in 0..=n {
                let exact = prob_carry_chain_gt(n, c);
                let b = brute(n, c);
                assert!((exact - b).abs() < 1e-12, "n={n} c={c}: {exact} vs {b}");
            }
        }
    }

    #[test]
    fn chain_is_rarer_than_run() {
        for (n, x) in [(32usize, 5usize), (64, 8), (128, 12)] {
            assert!(
                prob_carry_chain_gt(n, x) < crate::prob_longest_run_gt(n, x),
                "n={n} x={x}"
            );
        }
    }

    #[test]
    fn known_chain_values() {
        // 0111 + 0001: generate at bit 0, propagates at 1, 2 -> chain 3.
        assert_eq!(longest_carry_chain_u64(0b0111, 0b0001, 4), 3);
        // Propagates with no generate below carry nothing.
        assert_eq!(longest_carry_chain_u64(0b1110, 0b0000, 4), 0);
        // All generates: chains of length 1 everywhere... but each new
        // generate restarts; a generate *under* a generate still feeds
        // a carry into it. The local definition counts restart chains.
        assert_eq!(longest_carry_chain_u64(0b1111, 0b1111, 4), 1);
        assert_eq!(longest_carry_chain_u64(0, 0, 4), 0);
    }

    #[test]
    fn monte_carlo_agrees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(353);
        let trials = 60_000;
        for c in [4usize, 8] {
            let hits = (0..trials)
                .filter(|_| sample_carry_chain(48, &mut rng) as usize > c)
                .count();
            let measured = hits as f64 / trials as f64;
            let exact = prob_carry_chain_gt(48, c);
            assert!(
                (measured - exact).abs() < 0.01,
                "c={c}: {measured} vs {exact}"
            );
        }
    }

    #[test]
    fn degenerate_capacity() {
        // Capacity >= n can never be exceeded.
        assert_eq!(prob_carry_chain_gt(8, 8), 0.0);
        // Capacity 0: exceeded by any generate among the low n bits...
        // except nothing can top a chain at the last bit without being
        // counted; P(c=0 exceeded) = P(any generate) = 1 - (3/4)^n.
        let p = prob_carry_chain_gt(8, 0);
        assert!((p - (1.0 - 0.75f64.powi(8))).abs() < 1e-12, "{p}");
    }
}
