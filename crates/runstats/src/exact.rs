//! Exact distribution of the longest run of ones in `n` fair coin flips.
//!
//! The paper (§3.1) uses the recurrence
//!
//! ```text
//! A_n(x) = 2^n                                   if n <= x
//! A_n(x) = sum_{j=0}^{x} A_{n-j-1}(x)            otherwise
//! ```
//!
//! where `A_n(x)` counts the n-bit strings whose longest run of ones is at
//! most `x` (split on the position of the first zero). Counts are held in
//! [`Ubig`] so the arithmetic is exact up to thousands of bits; only the
//! final ratio against `2^n` is rounded to `f64`.

use crate::Ubig;

/// `A_n(x)`: the number of `n`-bit strings with no run of ones longer
/// than `x`, computed exactly.
///
/// Runs in `O(n)` big-integer additions using a sliding window over the
/// recurrence.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::count_bounded_runs;
///
/// // 3-bit strings with no pair of adjacent ones: 000,001,010,100,101.
/// assert_eq!(count_bounded_runs(3, 1).to_string(), "5");
/// // Every 4-bit string has longest run <= 4.
/// assert_eq!(count_bounded_runs(4, 4).to_string(), "16");
/// ```
pub fn count_bounded_runs(n: usize, x: usize) -> Ubig {
    count_runs_impl(n, x)
}

/// Exact probability that the longest run of ones in `n` fair flips is at
/// most `x`.
pub fn prob_longest_run_le(n: usize, x: usize) -> f64 {
    if n <= x {
        return 1.0;
    }
    count_runs_impl(n, x).ratio(&Ubig::pow2(n))
}

fn count_runs_impl(n: usize, x: usize) -> Ubig {
    if n <= x {
        return Ubig::pow2(n);
    }
    let w = x + 1;
    let mut hist: Vec<Ubig> = (0..=x).map(Ubig::pow2).collect();
    let mut window = Ubig::zero();
    for a in &hist {
        window += a;
    }
    let mut head = 0usize;
    let mut last = Ubig::zero();
    for _ in (x + 1)..=n {
        let next = window.clone();
        window += &next;
        window -= &hist[head];
        hist[head] = next.clone();
        head = (head + 1) % w;
        last = next;
    }
    last
}

/// Exact probability that the longest run of ones in `n` fair flips
/// **exceeds** `x` — the error probability of a speculative adder whose
/// window tolerates runs of length `x`.
///
/// Computed as an exact big-integer difference, so tiny tail probabilities
/// do not suffer catastrophic cancellation.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::prob_longest_run_gt;
///
/// // P(some run of >= 1 one in 2 flips) = 3/4.
/// assert_eq!(prob_longest_run_gt(2, 0), 0.75);
/// ```
pub fn prob_longest_run_gt(n: usize, x: usize) -> f64 {
    if n <= x {
        return 0.0;
    }
    let total = Ubig::pow2(n);
    let good = count_runs_impl(n, x);
    (&total - &good).ratio(&total)
}

/// Smallest `x` such that the longest run of ones in `n` flips is at most
/// `x` with probability at least `prob` (one cell of the paper's Table 1).
///
/// # Panics
///
/// Panics if `prob` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::min_bound_for_prob;
///
/// // For 1024-bit operands the paper reports runs stay below ~2*log2(n)
/// // with probability 99.99%.
/// let x = min_bound_for_prob(1024, 0.9999);
/// assert!(x > 10 && x < 30, "{x}");
/// ```
pub fn min_bound_for_prob(n: usize, prob: f64) -> usize {
    assert!(prob > 0.0 && prob <= 1.0, "prob must be in (0, 1]");
    for x in 0..=n {
        if prob_longest_run_le(n, x) >= prob {
            return x;
        }
    }
    n
}

/// Exact expected longest run of ones in `n` fair flips:
/// `E[L] = Σ_{x≥0} P(L > x)`.
///
/// Truncates once the tail drops below `1e-18` (beyond `f64` resolution).
pub fn expected_longest_run(n: usize) -> f64 {
    let mut sum = 0.0;
    for x in 0..n {
        let tail = prob_longest_run_gt(n, x);
        sum += tail;
        if tail < 1e-18 {
            break;
        }
    }
    sum
}

/// Exact variance of the longest run of ones in `n` fair flips, using
/// `E[L^2] = Σ_{x≥0} (2x+1) P(L > x)`.
pub fn variance_longest_run(n: usize) -> f64 {
    let mut mean = 0.0;
    let mut second = 0.0;
    for x in 0..n {
        let tail = prob_longest_run_gt(n, x);
        mean += tail;
        second += (2 * x + 1) as f64 * tail;
        if tail < 1e-18 {
            break;
        }
    }
    second - mean * mean
}

/// One row of the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Operand bitwidth `n`.
    pub bitwidth: usize,
    /// Longest-run bounds, one per requested probability, in the same
    /// order as passed to [`table1`].
    pub bounds: Vec<usize>,
}

/// Regenerates the paper's Table 1: for each bitwidth, the smallest run
/// bound met with each of the given probabilities (the paper uses 99% and
/// 99.99%).
///
/// # Panics
///
/// Panics if any probability is not in `(0, 1]`.
pub fn table1(bitwidths: &[usize], probs: &[f64]) -> Vec<Table1Row> {
    bitwidths
        .iter()
        .map(|&n| Table1Row {
            bitwidth: n,
            bounds: probs.iter().map(|&p| min_bound_for_prob(n, p)).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force count by enumerating all n-bit strings.
    fn brute_count(n: usize, x: usize) -> u64 {
        let mut count = 0;
        for v in 0u64..(1u64 << n) {
            if crate::longest_one_run_u64(v & ((1u64 << n) - 1)) as usize <= x {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn matches_brute_force_small() {
        for n in 1..=16 {
            for x in 0..=n {
                let exact = count_runs_impl(n, x);
                assert_eq!(
                    exact.to_string(),
                    brute_count(n, x).to_string(),
                    "n={n} x={x}"
                );
            }
        }
    }

    #[test]
    fn fibonacci_case() {
        // A_n(1) is the Fibonacci-like count F(n+2).
        let fib = [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89];
        for (i, &f) in fib.iter().enumerate() {
            assert_eq!(count_runs_impl(i, 1).to_string(), f.to_string());
        }
    }

    #[test]
    fn probabilities_are_monotone_in_x() {
        let n = 128;
        let mut prev = 0.0;
        for x in 0..=n {
            let p = prob_longest_run_le(n, x);
            assert!(p >= prev - 1e-15, "x={x}");
            prev = p;
        }
        assert_eq!(prob_longest_run_le(n, n), 1.0);
    }

    #[test]
    fn tail_is_complement() {
        for (n, x) in [(64, 8), (256, 10), (1024, 12)] {
            let le = prob_longest_run_le(n, x);
            let gt = prob_longest_run_gt(n, x);
            assert!((le + gt - 1.0).abs() < 1e-12, "n={n} x={x}");
        }
    }

    #[test]
    fn table1_shape_matches_paper() {
        // Paper: for 1024-bit addition the largest carry propagation is
        // under ~2*log2(n) bits in 99.99% of cases.
        let rows = table1(&[64, 128, 256, 512, 1024, 2048], &[0.99, 0.9999]);
        for row in &rows {
            let lg = (row.bitwidth as f64).log2();
            assert!(row.bounds[0] >= lg as usize - 2, "{row:?}");
            assert!(row.bounds[1] > row.bounds[0], "{row:?}");
            // The 99.99% bound exceeds the 99% bound by roughly
            // log2(100) ≈ 6.6 positions (Gordon et al. exponential tail).
            let delta = row.bounds[1] - row.bounds[0];
            assert!((5..=9).contains(&delta), "{row:?}");
        }
        // Bounds grow by ~1 per doubling of n.
        for pair in rows.windows(2) {
            let d = pair[1].bounds[0] as i64 - pair[0].bounds[0] as i64;
            assert!((0..=2).contains(&d), "{pair:?}");
        }
    }

    #[test]
    fn paper_claim_1024_bits() {
        // "In case of a 1024-bit adder the largest carry propagation is
        // under ~ 2 log n bits in 99.99% cases."
        let x = min_bound_for_prob(1024, 0.9999);
        assert!(prob_longest_run_le(1024, x) >= 0.9999);
        assert!(prob_longest_run_le(1024, x - 1) < 0.9999);
        assert!(x <= 24, "bound {x} should be well under 24");
    }

    #[test]
    fn expectation_close_to_schilling() {
        // E[L_n] ~= log2(n) - 2/3 for large n.
        for n in [256usize, 1024, 4096] {
            let e = expected_longest_run(n);
            let approx = (n as f64).log2() - 2.0 / 3.0;
            assert!((e - approx).abs() < 0.1, "n={n}: {e} vs {approx}");
        }
    }

    #[test]
    fn variance_approaches_gumbel_limit() {
        // Var[L_n] -> pi^2/(6 ln^2 2) + 1/12 ~= 3.507 (with small
        // oscillation in n); see asymptotics.rs for why this differs from
        // the figure printed in the paper.
        for n in [1024usize, 4096] {
            let v = variance_longest_run(n);
            assert!((v - 3.507).abs() < 0.08, "n={n}: {v}");
        }
    }

    #[test]
    fn min_bound_extremes() {
        // Probability 1 requires tolerating the all-ones string.
        assert_eq!(min_bound_for_prob(8, 1.0), 8);
        // Tiny probability is met by x = 0 only when P(no ones)≥p.
        assert_eq!(min_bound_for_prob(1, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "prob must be in")]
    fn min_bound_rejects_bad_prob() {
        min_bound_for_prob(8, 0.0);
    }
}
