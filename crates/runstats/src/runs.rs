//! Bit-level run analysis of binary words.
//!
//! The carry chain of `A + B` propagates across exactly the positions where
//! `p_i = a_i XOR b_i` is set, so the reach of speculation errors is
//! governed by the **longest run of ones** in `A XOR B`. These helpers are
//! the ground truth used by both the statistics and the adder error
//! predicates.

/// Length of the longest run of consecutive `1` bits in a `u64`.
///
/// Uses the classic `x &= x << 1` reduction: after `r` iterations the word
/// is nonzero iff it originally contained a run of length `> r`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::longest_one_run_u64;
///
/// assert_eq!(longest_one_run_u64(0), 0);
/// assert_eq!(longest_one_run_u64(0b0111_0110), 3);
/// assert_eq!(longest_one_run_u64(u64::MAX), 64);
/// ```
pub fn longest_one_run_u64(mut x: u64) -> u32 {
    let mut len = 0;
    while x != 0 {
        x &= x << 1;
        len += 1;
    }
    len
}

/// Length of the longest run of ones across a little-endian word slice,
/// considering only the low `nbits` bits.
///
/// Runs crossing word boundaries are counted correctly.
///
/// # Panics
///
/// Panics if `nbits > 64 * words.len()`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::longest_one_run_words;
///
/// // A run of 4 ones straddling the 64-bit boundary: bits 62..=65.
/// let words = [0b11u64 << 62, 0b11u64];
/// assert_eq!(longest_one_run_words(&words, 128), 4);
/// ```
pub fn longest_one_run_words(words: &[u64], nbits: usize) -> u32 {
    assert!(
        nbits <= 64 * words.len(),
        "nbits ({nbits}) exceeds capacity of {} words",
        words.len()
    );
    let mut best: u32 = 0;
    let mut current: u32 = 0;
    for bit in 0..nbits {
        let w = words[bit / 64];
        if (w >> (bit % 64)) & 1 == 1 {
            current += 1;
            best = best.max(current);
        } else {
            current = 0;
        }
    }
    best
}

/// Whether `x` contains a run of ones strictly longer than `max_len`
/// within its low `nbits` bits.
///
/// This is the exact predicate for "an almost-correct adder with window
/// covering runs of length `max_len` errs on these propagate bits".
pub fn has_one_run_longer_than(words: &[u64], nbits: usize, max_len: u32) -> bool {
    longest_one_run_words(words, nbits) > max_len
}

/// An iterator over the maximal runs of ones in the low `nbits` bits of a
/// word slice, yielding `(start_bit, length)` pairs in ascending order.
#[derive(Clone, Debug)]
pub struct OneRuns<'a> {
    words: &'a [u64],
    nbits: usize,
    pos: usize,
}

impl<'a> OneRuns<'a> {
    /// Creates the iterator.
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64 * words.len()`.
    pub fn new(words: &'a [u64], nbits: usize) -> Self {
        assert!(nbits <= 64 * words.len());
        OneRuns {
            words,
            nbits,
            pos: 0,
        }
    }

    fn bit(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
}

impl Iterator for OneRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.pos < self.nbits && !self.bit(self.pos) {
            self.pos += 1;
        }
        if self.pos >= self.nbits {
            return None;
        }
        let start = self.pos;
        while self.pos < self.nbits && self.bit(self.pos) {
            self.pos += 1;
        }
        Some((start, self.pos - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_longest(words: &[u64], nbits: usize) -> u32 {
        let mut best = 0;
        let mut cur = 0;
        for i in 0..nbits {
            if (words[i / 64] >> (i % 64)) & 1 == 1 {
                cur += 1;
                best = best.max(cur);
            } else {
                cur = 0;
            }
        }
        best
    }

    #[test]
    fn u64_known_values() {
        assert_eq!(longest_one_run_u64(0), 0);
        assert_eq!(longest_one_run_u64(1), 1);
        assert_eq!(longest_one_run_u64(0b1010_1010), 1);
        assert_eq!(longest_one_run_u64(0b1101_1011), 2);
        assert_eq!(longest_one_run_u64(0xFFFF_0000_FFFF_0000), 16);
        assert_eq!(longest_one_run_u64(u64::MAX), 64);
        assert_eq!(longest_one_run_u64(u64::MAX >> 1), 63);
    }

    #[test]
    fn words_boundary_run() {
        let words = [1u64 << 63, 1u64];
        assert_eq!(longest_one_run_words(&words, 128), 2);
        // Truncating nbits to 64 cuts the run at the boundary.
        assert_eq!(longest_one_run_words(&words, 64), 1);
    }

    #[test]
    fn words_nbits_masks_high_bits() {
        // All ones, but only 10 bits considered.
        let words = [u64::MAX];
        assert_eq!(longest_one_run_words(&words, 10), 10);
        assert_eq!(longest_one_run_words(&words, 0), 0);
    }

    #[test]
    #[should_panic]
    fn words_nbits_overflow_panics() {
        longest_one_run_words(&[0], 65);
    }

    #[test]
    fn predicate_threshold() {
        let words = [0b0_1110_u64];
        assert!(has_one_run_longer_than(&words, 5, 2));
        assert!(!has_one_run_longer_than(&words, 5, 3));
    }

    #[test]
    fn runs_iterator_enumerates_maximal_runs() {
        let words = [0b10_0110_1110_u64];
        let runs: Vec<_> = OneRuns::new(&words, 10).collect();
        assert_eq!(runs, vec![(1, 3), (5, 2), (9, 1)]);
    }

    #[test]
    fn runs_iterator_empty() {
        let words = [0u64];
        assert_eq!(OneRuns::new(&words, 64).count(), 0);
    }

    #[test]
    fn runs_iterator_cross_word() {
        let words = [0b11u64 << 62, 0b111u64];
        let runs: Vec<_> = OneRuns::new(&words, 128).collect();
        assert_eq!(runs, vec![(62, 5)]);
    }

    #[test]
    fn agreement_with_slow_reference() {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        for _ in 0..200 {
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let words = [state, state.rotate_left(17), !state];
            for nbits in [1usize, 17, 64, 100, 128, 192] {
                assert_eq!(
                    longest_one_run_words(&words, nbits),
                    slow_longest(&words, nbits)
                );
            }
            assert_eq!(longest_one_run_u64(state), slow_longest(&[state], 64));
        }
    }
}
