//! Longest-run-of-ones statistics for speculative adder design.
//!
//! The error behaviour of the Almost Correct Adder of Verma, Brisk &
//! Ienne (*Variable Latency Speculative Addition*, DATE 2008) is governed
//! entirely by the longest run of propagate signals — equivalently, the
//! longest run of ones in `A XOR B`, which for uniform operands is the
//! longest run of heads in `n` fair coin flips. This crate provides:
//!
//! - [`count_bounded_runs`] / [`prob_longest_run_le`] /
//!   [`prob_longest_run_gt`]: the paper's exact recurrence `A_n(x)` over an
//!   internal arbitrary-precision integer ([`Ubig`]), valid to thousands of
//!   bits,
//! - [`min_bound_for_prob`] / [`table1`]: regeneration of the paper's
//!   Table 1 (run bounds holding with 99% / 99.99% probability),
//! - [`expected_flips_for_run`] and friends: Theorem 1 (`2^{k+1}-2`
//!   expected flips to a `k`-head run) with recurrence, Markov-chain and
//!   Monte Carlo cross-checks,
//! - [`schilling_expected_run`] / [`gordon_tail_prob`]: the cited
//!   asymptotics,
//! - [`sample_histogram`] and the [`RunHistogram`] estimator for widths
//!   where enumeration is impossible.
//!
//! # Examples
//!
//! Size a speculation window for 64-bit operands that is correct in at
//! least 99.99% of additions:
//!
//! ```
//! use vlsa_runstats::{min_bound_for_prob, prob_longest_run_gt};
//!
//! let k = min_bound_for_prob(64, 0.9999);
//! assert!(prob_longest_run_gt(64, k) <= 1e-4);
//! ```

mod asymptotics;
mod biased;
mod carrychain;
mod distribution;
mod exact;
mod montecarlo;
mod runs;
mod theorem1;
mod ubig;

pub use asymptotics::{
    estimate_bound_for_tail, gordon_tail_prob, schilling_expected_run, ASYMPTOTIC_RUN_VARIANCE,
    PAPER_QUOTED_VARIANCE,
};
pub use biased::{
    min_bound_for_prob_biased, prob_longest_run_gt_biased, prob_longest_run_le_biased,
    sample_longest_run_biased,
};
pub use carrychain::{longest_carry_chain_u64, prob_carry_chain_gt, sample_carry_chain};
pub use distribution::RunLengthDistribution;
pub use exact::{
    count_bounded_runs, expected_longest_run, min_bound_for_prob, prob_longest_run_gt,
    prob_longest_run_le, table1, variance_longest_run, Table1Row,
};
pub use montecarlo::{random_words, sample_histogram, sample_longest_run, RunHistogram};
pub use runs::{has_one_run_longer_than, longest_one_run_u64, longest_one_run_words, OneRuns};
pub use theorem1::{
    expected_flips_for_run, flips_until_run, monte_carlo_expected_flips, prob_run_within,
    recurrence_expected_flips,
};
pub use ubig::Ubig;

#[cfg(test)]
mod proptests;
