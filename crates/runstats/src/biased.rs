//! Longest-run statistics for *biased* bits.
//!
//! Table 1 assumes uniform operands, so propagate bits are fair coin
//! flips. Real workloads are not uniform: sign-extended small integers,
//! counters, and addresses all bias individual propagate bits, and a
//! bias toward 1 lengthens runs exponentially. This module generalizes
//! the exact recurrence to an i.i.d. head probability `p`, which is the
//! tool for sizing windows against a characterized workload (and for
//! seeing how badly a hostile distribution breaks speculation).

use rand::Rng;

/// Exact probability that the longest run of heads in `n` flips of a
/// coin with head probability `p` is at most `x`.
///
/// Dynamic program over the run length ending at each position
/// (`O(n·x)` time, `O(x)` space), the biased generalization of
/// [`crate::prob_longest_run_le`].
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::{prob_longest_run_le, prob_longest_run_le_biased};
///
/// // At p = 1/2 the biased DP agrees with the exact fair recurrence.
/// let fair = prob_longest_run_le(64, 6);
/// let biased = prob_longest_run_le_biased(64, 6, 0.5);
/// assert!((fair - biased).abs() < 1e-12);
/// // Heads-heavy coins produce much longer runs.
/// assert!(prob_longest_run_le_biased(64, 6, 0.9) < fair);
/// ```
pub fn prob_longest_run_le_biased(n: usize, x: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if n <= x {
        return 1.0;
    }
    if x == 0 {
        return (1.0 - p).powi(n as i32);
    }
    // state[r] = P(no run > x so far, current trailing run == r).
    let mut state = vec![0.0f64; x + 1];
    state[0] = 1.0;
    for _ in 0..n {
        let mut next = vec![0.0f64; x + 1];
        let mut to_zero = 0.0;
        for (r, &prob) in state.iter().enumerate() {
            if prob == 0.0 {
                continue;
            }
            to_zero += prob * (1.0 - p);
            if r < x {
                next[r + 1] += prob * p;
            }
            // r == x && heads -> run of x+1: absorbed (failure).
        }
        next[0] = to_zero;
        state = next;
    }
    state.iter().sum()
}

/// Complement of [`prob_longest_run_le_biased`]: the windowed adder's
/// detection probability under biased propagate bits.
pub fn prob_longest_run_gt_biased(n: usize, x: usize, p: f64) -> f64 {
    1.0 - prob_longest_run_le_biased(n, x, p)
}

/// Smallest run bound met with probability at least `prob` under head
/// probability `p` — the biased Table 1 cell.
///
/// # Panics
///
/// Panics if `prob` is not in `(0, 1]` or `p` is not in `[0, 1]`.
pub fn min_bound_for_prob_biased(n: usize, prob: f64, p: f64) -> usize {
    assert!(prob > 0.0 && prob <= 1.0, "prob must be in (0, 1]");
    for x in 0..=n {
        if prob_longest_run_le_biased(n, x, p) >= prob {
            return x;
        }
    }
    n
}

/// Samples the longest head run of `n` flips with head probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn sample_longest_run_biased<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> u32 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut best = 0u32;
    let mut run = 0u32;
    for _ in 0..n {
        if rng.gen_bool(p) {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob_longest_run_le;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_fair_recurrence() {
        for n in [1usize, 8, 33, 100, 256] {
            for x in [0usize, 1, 3, 7, 12] {
                let fair = prob_longest_run_le(n, x);
                let biased = prob_longest_run_le_biased(n, x, 0.5);
                assert!((fair - biased).abs() < 1e-12, "n={n} x={x}");
            }
        }
    }

    #[test]
    fn degenerate_probabilities() {
        // p = 0: never any heads.
        assert_eq!(prob_longest_run_le_biased(50, 0, 0.0), 1.0);
        // p = 1: the run is always n.
        assert_eq!(prob_longest_run_le_biased(50, 49, 1.0), 0.0);
        assert_eq!(prob_longest_run_le_biased(50, 50, 1.0), 1.0);
    }

    #[test]
    fn monotone_in_bias() {
        let mut prev = 1.0;
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let q = prob_longest_run_le_biased(128, 8, p);
            assert!(q <= prev + 1e-12, "p={p}");
            prev = q;
        }
    }

    #[test]
    fn matches_monte_carlo() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(269);
        for p in [0.3, 0.7] {
            let n = 96;
            let x = 6;
            let trials = 40_000;
            let hits = (0..trials)
                .filter(|_| sample_longest_run_biased(n, p, &mut rng) as usize <= x)
                .count();
            let measured = hits as f64 / trials as f64;
            let exact = prob_longest_run_le_biased(n, x, p);
            assert!(
                (measured - exact).abs() < 0.01,
                "p={p}: {measured} vs {exact}"
            );
        }
    }

    #[test]
    fn bias_inflates_required_window() {
        let fair = min_bound_for_prob_biased(64, 0.9999, 0.5);
        let hot = min_bound_for_prob_biased(64, 0.9999, 0.8);
        assert!(hot > fair + 5, "fair {fair}, hot {hot}");
        assert_eq!(fair, crate::min_bound_for_prob(64, 0.9999));
    }

    #[test]
    fn complement_identity() {
        let le = prob_longest_run_le_biased(77, 5, 0.6);
        let gt = prob_longest_run_gt_biased(77, 5, 0.6);
        assert!((le + gt - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn rejects_bad_bias() {
        prob_longest_run_le_biased(8, 2, 1.5);
    }
}
