//! The full exact distribution of the longest run, as a first-class
//! object (CDF/PMF/quantiles), built on the exact recurrence.

use crate::{prob_longest_run_le, Ubig};

/// The exact probability distribution of the longest run of ones in
/// `n` fair coin flips.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::RunLengthDistribution;
///
/// let dist = RunLengthDistribution::new(64);
/// // The 99.99% quantile is the paper's Table 1 entry.
/// assert_eq!(dist.quantile(0.9999), 17);
/// assert!((dist.cdf(64) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RunLengthDistribution {
    n: usize,
    /// `cdf[x] = P(L <= x)` for `x = 0..=n`.
    cdf: Vec<f64>,
}

impl RunLengthDistribution {
    /// Computes the distribution for `n` flips.
    ///
    /// The CDF is evaluated exactly until the tail falls below `f64`
    /// resolution, then saturated at 1.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n must be positive");
        let mut cdf = Vec::with_capacity(n + 1);
        let mut saturated = false;
        for x in 0..=n {
            if saturated {
                cdf.push(1.0);
                continue;
            }
            let p = prob_longest_run_le(n, x);
            if 1.0 - p < 1e-18 {
                saturated = true;
                cdf.push(1.0);
            } else {
                cdf.push(p);
            }
        }
        RunLengthDistribution { n, cdf }
    }

    /// Number of flips.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `P(L <= x)`, saturating at 1 beyond `n`.
    pub fn cdf(&self, x: usize) -> f64 {
        self.cdf.get(x).copied().unwrap_or(1.0)
    }

    /// `P(L = x)`.
    pub fn pmf(&self, x: usize) -> f64 {
        if x == 0 {
            self.cdf(0)
        } else {
            (self.cdf(x) - self.cdf(x - 1)).max(0.0)
        }
    }

    /// Smallest `x` with `P(L <= x) >= q` — the Table 1 operation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> usize {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        self.cdf.iter().position(|&p| p >= q).unwrap_or(self.n)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        (0..self.n).map(|x| 1.0 - self.cdf(x)).sum()
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        let second: f64 = (0..self.n)
            .map(|x| (2 * x + 1) as f64 * (1.0 - self.cdf(x)))
            .sum();
        second - mean * mean
    }

    /// The exact count of `n`-bit strings with longest run exactly `x`
    /// (big-integer arithmetic, no rounding).
    pub fn exact_count(&self, x: usize) -> Ubig {
        let at_most = crate::count_bounded_runs(self.n, x);
        if x == 0 {
            at_most
        } else {
            &at_most - &crate::count_bounded_runs(self.n, x - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expected_longest_run, min_bound_for_prob, variance_longest_run};

    #[test]
    fn pmf_sums_to_one() {
        let dist = RunLengthDistribution::new(100);
        let total: f64 = (0..=100).map(|x| dist.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_match_min_bound() {
        let dist = RunLengthDistribution::new(256);
        for q in [0.5, 0.9, 0.99, 0.9999] {
            assert_eq!(dist.quantile(q), min_bound_for_prob(256, q), "q={q}");
        }
    }

    #[test]
    fn moments_match_exact_functions() {
        let dist = RunLengthDistribution::new(128);
        assert!((dist.mean() - expected_longest_run(128)).abs() < 1e-9);
        assert!((dist.variance() - variance_longest_run(128)).abs() < 1e-6);
    }

    #[test]
    fn exact_counts_partition_the_space() {
        let dist = RunLengthDistribution::new(20);
        let mut total = Ubig::zero();
        for x in 0..=20 {
            total += &dist.exact_count(x);
        }
        assert_eq!(total, Ubig::pow2(20));
    }

    #[test]
    fn cdf_saturates_and_is_monotone() {
        let dist = RunLengthDistribution::new(64);
        let mut prev = 0.0;
        for x in 0..=64 {
            let c = dist.cdf(x);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(dist.cdf(64), 1.0);
        assert_eq!(dist.cdf(1000), 1.0);
        assert_eq!(dist.n(), 64);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rejects_zero() {
        RunLengthDistribution::new(8).quantile(0.0);
    }
}
