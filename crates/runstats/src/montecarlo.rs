//! Monte Carlo estimation of longest-run statistics.
//!
//! These estimators validate the exact recurrence and asymptotics on
//! bitwidths where exhaustive enumeration is impossible, and they are the
//! statistical backbone of the `schilling` and `error_rate` experiment
//! binaries.

use crate::longest_one_run_words;
use rand::Rng;

/// Empirical distribution of the longest run of ones over random `n`-bit
/// words.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunHistogram {
    /// `counts[x]` = number of samples whose longest run was exactly `x`.
    counts: Vec<u64>,
    samples: u64,
}

impl RunHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed longest-run length.
    pub fn record(&mut self, run: u32) {
        let idx = run as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.samples += 1;
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Empirical probability that the longest run is exactly `x`.
    pub fn pmf(&self, x: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.counts.get(x).copied().unwrap_or(0) as f64 / self.samples as f64
    }

    /// Empirical probability that the longest run exceeds `x`.
    pub fn tail(&self, x: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let above: u64 = self.counts.iter().skip(x + 1).sum();
        above as f64 / self.samples as f64
    }

    /// Empirical mean longest run.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let total: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(x, &c)| x as f64 * c as f64)
            .sum();
        total / self.samples as f64
    }

    /// Empirical variance of the longest run.
    pub fn variance(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let total: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(x, &c)| (x as f64 - mean).powi(2) * c as f64)
            .sum();
        total / self.samples as f64
    }

    /// Largest observed run length, if any samples were recorded.
    pub fn max_observed(&self) -> Option<u32> {
        self.counts.iter().rposition(|&c| c > 0).map(|x| x as u32)
    }
}

/// Samples the longest run of ones in a uniformly random `n`-bit word.
///
/// # Panics
///
/// Panics if `nbits` is zero.
pub fn sample_longest_run<R: Rng + ?Sized>(nbits: usize, rng: &mut R) -> u32 {
    assert!(nbits > 0, "nbits must be positive");
    let words = random_words(nbits, rng);
    longest_one_run_words(&words, nbits)
}

/// Generates `ceil(nbits / 64)` random words with bits above `nbits`
/// cleared.
pub fn random_words<R: Rng + ?Sized>(nbits: usize, rng: &mut R) -> Vec<u64> {
    let nwords = nbits.div_ceil(64);
    let mut words: Vec<u64> = (0..nwords).map(|_| rng.gen()).collect();
    let rem = nbits % 64;
    if rem != 0 {
        *words.last_mut().expect("nwords >= 1") &= (1u64 << rem) - 1;
    }
    words
}

/// Builds an empirical longest-run histogram from `samples` random
/// `nbits`-bit words.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use vlsa_runstats::{sample_histogram, schilling_expected_run};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let hist = sample_histogram(256, 2_000, &mut rng);
/// assert!((hist.mean() - schilling_expected_run(256)).abs() < 0.5);
/// ```
pub fn sample_histogram<R: Rng + ?Sized>(nbits: usize, samples: u64, rng: &mut R) -> RunHistogram {
    let mut hist = RunHistogram::new();
    for _ in 0..samples {
        hist.record(sample_longest_run(nbits, rng));
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expected_longest_run, prob_longest_run_gt};
    use rand::SeedableRng;

    #[test]
    fn histogram_bookkeeping() {
        let mut h = RunHistogram::new();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.max_observed(), None);
        h.record(3);
        h.record(3);
        h.record(5);
        assert_eq!(h.samples(), 3);
        assert_eq!(h.pmf(3), 2.0 / 3.0);
        assert_eq!(h.pmf(4), 0.0);
        assert_eq!(h.tail(3), 1.0 / 3.0);
        assert_eq!(h.tail(5), 0.0);
        assert_eq!(h.max_observed(), Some(5));
        assert!((h.mean() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_words_mask_high_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for nbits in [1usize, 63, 64, 65, 130] {
            let w = random_words(nbits, &mut rng);
            assert_eq!(w.len(), nbits.div_ceil(64));
            let rem = nbits % 64;
            if rem != 0 {
                assert_eq!(w.last().unwrap() >> rem, 0, "nbits={nbits}");
            }
        }
    }

    #[test]
    fn empirical_mean_matches_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let hist = sample_histogram(128, 20_000, &mut rng);
        let exact = expected_longest_run(128);
        assert!(
            (hist.mean() - exact).abs() < 0.05,
            "{} vs {exact}",
            hist.mean()
        );
    }

    #[test]
    fn empirical_tail_matches_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let hist = sample_histogram(256, 50_000, &mut rng);
        for x in [6usize, 8, 10] {
            let emp = hist.tail(x);
            let exact = prob_longest_run_gt(256, x);
            assert!((emp - exact).abs() < 0.01, "x={x}: {emp} vs {exact}");
        }
    }

    #[test]
    #[should_panic(expected = "nbits must be positive")]
    fn sample_rejects_zero_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        sample_longest_run(0, &mut rng);
    }
}
