//! Asymptotic approximations for the longest head run, due to
//! Schilling (1990) and Gordon, Schilling & Waterman (1986).
//!
//! The paper cites Schilling's result that the expected longest run in `n`
//! fair flips is `log2(n) - 2/3`, and Gordon et al.'s extreme-value theory
//! showing the exceedance probability decays exponentially as the bound
//! grows. Both are used to sanity-check the exact recurrence and to size
//! speculation windows quickly without big-integer arithmetic.
//!
//! **Note on the variance constant.** The paper prints a variance of
//! `1.873`. Exact enumeration (see [`crate::variance_longest_run`] and the
//! brute-force tests in `exact.rs`) shows the variance of the longest
//! 1-run converges to the Gumbel-limit value `π²/(6·ln²2) + 1/12 ≈ 3.507`;
//! we expose that as [`ASYMPTOTIC_RUN_VARIANCE`] and record the
//! discrepancy in `EXPERIMENTS.md`.

/// Schilling's approximation to the expected longest run of heads in `n`
/// fair flips: `log2(n) - 2/3`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::schilling_expected_run;
/// assert!((schilling_expected_run(1024) - (10.0 - 2.0 / 3.0)).abs() < 1e-12);
/// ```
pub fn schilling_expected_run(n: usize) -> f64 {
    (n as f64).log2() - 2.0 / 3.0
}

/// Asymptotic variance of the longest 1-run: `π²/(6·ln²2) + 1/12 ≈ 3.507`
/// (the limit oscillates slightly with `n`; exact values for finite `n`
/// come from [`crate::variance_longest_run`]).
pub const ASYMPTOTIC_RUN_VARIANCE: f64 =
    std::f64::consts::PI * std::f64::consts::PI / (6.0 * 0.480_453_013_918_201_4) + 1.0 / 12.0;
// 0.4804530139182014 = ln(2)^2

/// The variance figure printed in the DATE 2008 paper (quoting Schilling).
/// Kept for reference; see the module docs for why it disagrees with
/// exact enumeration.
pub const PAPER_QUOTED_VARIANCE: f64 = 1.873;

/// Gordon–Schilling–Waterman extreme-value tail via the Poisson clumping
/// heuristic: the probability that the longest run in `n` flips exceeds
/// `x` is approximately `1 - exp(-n · 2^{-(x+2)})`.
///
/// Each position begins a maximal run of length `> x` with probability
/// `2^{-(x+2)}` (a zero followed by `x+1` ones), and for large `n` the
/// number of such clumps is approximately Poisson.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::{gordon_tail_prob, prob_longest_run_gt};
/// let approx = gordon_tail_prob(256, 12);
/// let exact = prob_longest_run_gt(256, 12);
/// assert!((approx - exact).abs() / exact < 0.1);
/// ```
pub fn gordon_tail_prob(n: usize, x: usize) -> f64 {
    let lambda = n as f64 * 2f64.powi(-(x as i32 + 2));
    -(-lambda).exp_m1()
}

/// Quick window estimate from the extreme-value tail: an `x` with
/// `P(longest run > x) <= epsilon`, without exact counting.
///
/// Accurate to within about one bit of the exact answer;
/// [`crate::min_bound_for_prob`] gives the exact bound.
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use vlsa_runstats::estimate_bound_for_tail;
/// let x = estimate_bound_for_tail(1024, 1e-4);
/// assert!((20..=24).contains(&x));
/// ```
pub fn estimate_bound_for_tail(n: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    // Solve 1 - exp(-n 2^{-(x+2)}) = epsilon for x.
    let lambda = -(1.0 - epsilon).ln();
    let x = (n as f64 / lambda).log2() - 2.0;
    x.ceil().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        expected_longest_run, min_bound_for_prob, prob_longest_run_gt, variance_longest_run,
    };

    #[test]
    fn schilling_tracks_exact_expectation() {
        for n in [128usize, 512, 2048] {
            let exact = expected_longest_run(n);
            let approx = schilling_expected_run(n);
            assert!((exact - approx).abs() < 0.1, "n={n}");
        }
    }

    #[test]
    fn variance_constant_tracks_exact() {
        let v = variance_longest_run(4096);
        assert!((v - ASYMPTOTIC_RUN_VARIANCE).abs() < 0.05, "{v}");
        // And the paper's printed figure does NOT match exact enumeration.
        assert!((v - PAPER_QUOTED_VARIANCE).abs() > 1.0);
    }

    #[test]
    fn tail_prob_is_probability_and_decays() {
        for n in [64usize, 1024] {
            let mut prev = 1.0;
            for x in 0..40 {
                let p = gordon_tail_prob(n, x);
                assert!((0.0..=1.0).contains(&p), "n={n} x={x} p={p}");
                assert!(p <= prev + 1e-15);
                prev = p;
            }
        }
    }

    #[test]
    fn tail_halves_per_extra_bit() {
        // Deep in the tail, one extra window bit halves the error rate.
        for x in [15usize, 20, 25] {
            let ratio = gordon_tail_prob(1024, x) / gordon_tail_prob(1024, x + 1);
            assert!((ratio - 2.0).abs() < 0.01, "x={x} ratio={ratio}");
        }
    }

    #[test]
    fn tail_matches_exact_in_the_tail() {
        for (n, x) in [(256usize, 12usize), (1024, 15), (2048, 18)] {
            let approx = gordon_tail_prob(n, x);
            let exact = prob_longest_run_gt(n, x);
            assert!(
                (approx - exact).abs() / exact < 0.1,
                "n={n} x={x}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn estimate_close_to_exact_bound() {
        for n in [64usize, 256, 1024, 2048] {
            for eps in [0.01, 0.0001] {
                let est = estimate_bound_for_tail(n, eps);
                let exact = min_bound_for_prob(n, 1.0 - eps);
                let diff = est as i64 - exact as i64;
                assert!(diff.abs() <= 1, "n={n} eps={eps}: est {est} exact {exact}");
            }
        }
    }

    #[test]
    fn estimate_is_safe_or_near_safe() {
        // The estimated bound's true tail should be within 2x of epsilon.
        for n in [128usize, 512] {
            for eps in [0.01, 0.001, 0.0001] {
                let x = estimate_bound_for_tail(n, eps);
                assert!(prob_longest_run_gt(n, x) <= 2.0 * eps, "n={n} eps={eps}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn estimate_rejects_bad_epsilon() {
        estimate_bound_for_tail(64, 1.5);
    }
}
