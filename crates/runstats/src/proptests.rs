//! Property-based tests for the statistics substrate.

use crate::*;
use proptest::prelude::*;

fn ubig(v: u128) -> Ubig {
    Ubig::from(v)
}

proptest! {
    #[test]
    fn ubig_add_matches_u128(a in 0..u128::MAX / 2, b in 0..u128::MAX / 2) {
        prop_assert_eq!(&ubig(a) + &ubig(b), ubig(a + b));
    }

    #[test]
    fn ubig_sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(&ubig(hi) - &ubig(lo), ubig(hi - lo));
    }

    #[test]
    fn ubig_shl_matches_u128(a in any::<u64>(), s in 0usize..64) {
        prop_assert_eq!(&ubig(a as u128) << s, ubig((a as u128) << s));
    }

    #[test]
    fn ubig_mul_div_small_round_trip(a in any::<u128>(), m in 1u64..u64::MAX) {
        let mut v = ubig(a);
        v.mul_small(m);
        prop_assert_eq!(v.div_small(m), 0);
        prop_assert_eq!(v, ubig(a));
    }

    #[test]
    fn ubig_div_small_matches_u128(a in any::<u128>(), d in 1u64..u64::MAX) {
        let mut v = ubig(a);
        let r = v.div_small(d);
        prop_assert_eq!(v, ubig(a / d as u128));
        prop_assert_eq!(r, (a % d as u128) as u64);
    }

    #[test]
    fn ubig_ratio_close_to_f64(a in 1u128.., b in 1u128..) {
        let exact = a as f64 / b as f64;
        let got = ubig(a).ratio(&ubig(b));
        prop_assert!((got - exact).abs() <= exact * 1e-9,
            "{got} vs {exact}");
    }

    #[test]
    fn ubig_ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(ubig(a).cmp(&ubig(b)), a.cmp(&b));
    }

    #[test]
    fn ubig_decimal_display_matches_u128(a in any::<u128>()) {
        prop_assert_eq!(ubig(a).to_string(), a.to_string());
    }

    #[test]
    fn longest_run_words_matches_scalar(v in any::<u64>()) {
        prop_assert_eq!(longest_one_run_words(&[v], 64), longest_one_run_u64(v));
    }

    #[test]
    fn one_runs_iterator_reconstructs_word(v in any::<u64>()) {
        let mut rebuilt = 0u64;
        let mut longest = 0usize;
        for (start, len) in OneRuns::new(&[v], 64) {
            for i in start..start + len {
                rebuilt |= 1 << i;
            }
            longest = longest.max(len);
        }
        prop_assert_eq!(rebuilt, v);
        prop_assert_eq!(longest as u32, longest_one_run_u64(v));
    }

    #[test]
    fn counts_are_complementary(n in 1usize..200, x in 0usize..32) {
        // A_n(x) + (tail count) must equal 2^n exactly.
        let good = count_bounded_runs(n, x);
        let total = Ubig::pow2(n);
        prop_assert!(good <= total);
        let le = prob_longest_run_le(n, x);
        let gt = prob_longest_run_gt(n, x);
        prop_assert!((le + gt - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counts_monotone_in_x(n in 1usize..150, x in 0usize..31) {
        prop_assert!(count_bounded_runs(n, x) <= count_bounded_runs(n, x + 1));
    }

    #[test]
    fn min_bound_is_tight(n in 2usize..300, p in 0.5f64..0.99999) {
        let x = min_bound_for_prob(n, p);
        prop_assert!(prob_longest_run_le(n, x) >= p);
        if x > 0 {
            prop_assert!(prob_longest_run_le(n, x - 1) < p);
        }
    }

    #[test]
    fn markov_chain_cross_checks_recurrence(n in 1usize..120, k in 1u32..12) {
        let markov = prob_run_within(k, n);
        let exact = prob_longest_run_gt(n, k as usize - 1);
        prop_assert!((markov - exact).abs() < 1e-9, "{markov} vs {exact}");
    }
}
