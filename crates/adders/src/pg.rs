//! Generate/propagate decomposition shared by all adder architectures.
//!
//! For operands `A`, `B` the per-bit signals are `g_i = a_i·b_i`,
//! `p_i = a_i ⊕ b_i` and the carry recurrence is `c_{i+1} = g_i + p_i·c_i`
//! (paper §3). Every adder in this crate is some strategy for evaluating
//! that recurrence; the sum bits are always `s_i = p_i ⊕ c_i`.

use vlsa_netlist::{Bus, NetId, Netlist};

/// Per-bit generate and propagate nets for one operand pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PgSignals {
    /// Generate nets `g_i = a_i AND b_i`, LSB first.
    pub g: Vec<NetId>,
    /// Propagate nets `p_i = a_i XOR b_i`, LSB first.
    pub p: Vec<NetId>,
}

impl PgSignals {
    /// Operand width.
    pub fn width(&self) -> usize {
        self.g.len()
    }
}

/// Emits the `g`/`p` layer for buses `a` and `b`.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn pg_signals(nl: &mut Netlist, a: &Bus, b: &Bus) -> PgSignals {
    assert_eq!(a.width(), b.width(), "operand width mismatch");
    let mut g = Vec::with_capacity(a.width());
    let mut p = Vec::with_capacity(a.width());
    for i in 0..a.width() {
        g.push(nl.and2(a[i], b[i]));
        p.push(nl.xor2(a[i], b[i]));
    }
    PgSignals { g, p }
}

/// Emits sum bits `s_i = p_i ⊕ c_i` given carries **into** each position
/// (`carries[0]` is the carry into bit 0).
///
/// # Panics
///
/// Panics if `p` and `carries` differ in length.
pub fn sum_from_carries(nl: &mut Netlist, p: &[NetId], carries: &[NetId]) -> Bus {
    assert_eq!(p.len(), carries.len(), "carry count mismatch");
    p.iter()
        .zip(carries)
        .map(|(&pi, &ci)| nl.xor2(pi, ci))
        .collect()
}

/// Declares the standard adder interface: input buses `a`, `b` of width
/// `nbits`, returning them for the architecture body to use.
pub fn adder_ports(nl: &mut Netlist, nbits: usize) -> (Bus, Bus) {
    let a = nl.input_bus("a", nbits);
    let b = nl.input_bus("b", nbits);
    (a, b)
}

/// Registers the standard adder outputs: bus `s` and carry-out `cout`.
pub fn adder_outputs(nl: &mut Netlist, sum: &Bus, cout: NetId) {
    nl.output_bus("s", sum);
    nl.output("cout", cout);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_netlist::{CellKind, Netlist};

    #[test]
    fn pg_layer_structure() {
        let mut nl = Netlist::new("pg");
        let (a, b) = adder_ports(&mut nl, 4);
        let pg = pg_signals(&mut nl, &a, &b);
        assert_eq!(pg.width(), 4);
        assert_eq!(nl.node(pg.g[0]).kind(), CellKind::And2);
        assert_eq!(nl.node(pg.p[3]).kind(), CellKind::Xor2);
        assert_eq!(nl.gate_count(), 8);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn pg_rejects_mismatched_buses() {
        let mut nl = Netlist::new("pg");
        let a = nl.input_bus("a", 3);
        let b = nl.input_bus("b", 4);
        pg_signals(&mut nl, &a, &b);
    }

    #[test]
    fn sum_layer_width() {
        let mut nl = Netlist::new("s");
        let (a, b) = adder_ports(&mut nl, 3);
        let pg = pg_signals(&mut nl, &a, &b);
        let zero = nl.constant(false);
        let carries = vec![zero; 3];
        let s = sum_from_carries(&mut nl, &pg.p, &carries);
        assert_eq!(s.width(), 3);
    }

    #[test]
    #[should_panic(expected = "carry count")]
    fn sum_rejects_mismatched_carries() {
        let mut nl = Netlist::new("s");
        let (a, b) = adder_ports(&mut nl, 3);
        let pg = pg_signals(&mut nl, &a, &b);
        let zero = nl.constant(false);
        sum_from_carries(&mut nl, &pg.p, &[zero]);
    }

    #[test]
    fn standard_ports_are_named() {
        let mut nl = Netlist::new("ports");
        let (a, _b) = adder_ports(&mut nl, 2);
        let cout = nl.constant(false);
        let sum = Bus::from_nets(vec![a[0], a[1]]);
        adder_outputs(&mut nl, &sum, cout);
        let outs: Vec<_> = nl
            .primary_outputs()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(outs, vec!["s[0]", "s[1]", "cout"]);
    }
}
