//! Sparse prefix adder: a prefix network over `group`-bit blocks with
//! flat lookahead inside each block — the structure production CPUs use
//! (sparse-4 Kogge-Stone etc.) to cut prefix wiring, and structurally
//! the same split the paper's error recovery performs over the ACA's
//! blocks.

use crate::{
    adder_outputs, adder_ports, build_prefix_gp, pg_signals, sum_from_carries, PrefixArch,
};
use vlsa_netlist::{NetId, Netlist};

/// Generates an `nbits` sparse prefix adder: block size `group`, block
/// carries through an `arch` prefix network, flat lookahead within
/// blocks. Standard `a`/`b` → `s`/`cout` interface.
///
/// # Panics
///
/// Panics if `nbits` or `group` is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::{prefix_adder, sparse_prefix, PrefixArch};
///
/// // Sparse-4 Kogge-Stone: ~same depth class, far fewer prefix nodes.
/// let sparse = sparse_prefix(64, 4, PrefixArch::KoggeStone);
/// let dense = prefix_adder(64, PrefixArch::KoggeStone);
/// assert!(sparse.gate_count() < dense.gate_count());
/// ```
pub fn sparse_prefix(nbits: usize, group: usize, arch: PrefixArch) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    assert!(group > 0, "group size must be positive");
    let mut nl = Netlist::new(format!(
        "sparse{nbits}g{group}_{}",
        arch.name().replace('-', "_")
    ));
    let (a, b) = adder_ports(&mut nl, nbits);
    let pg = pg_signals(&mut nl, &a, &b);

    // Block (G, P) by a balanced tree fold of the carry operator.
    let nblocks = nbits.div_ceil(group);
    let mut block_g = Vec::with_capacity(nblocks);
    let mut block_p = Vec::with_capacity(nblocks);
    for blk in 0..nblocks {
        let lo = blk * group;
        let hi = ((blk + 1) * group).min(nbits);
        let mut items: Vec<(NetId, NetId)> = (lo..hi).map(|i| (pg.g[i], pg.p[i])).collect();
        while items.len() > 1 {
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut iter = items.chunks(2);
            for chunk in &mut iter {
                next.push(match *chunk {
                    // chunk is ordered low..high; combine as hi ∘ lo.
                    [(lo_g, lo_p), (hi_g, hi_p)] => {
                        (nl.ao21(hi_p, lo_g, hi_g), nl.and2(hi_p, lo_p))
                    }
                    [single] => single,
                    _ => unreachable!("chunks(2)"),
                });
            }
            items = next;
        }
        let (g, p) = items[0];
        block_g.push(g);
        block_p.push(p);
    }

    // Block-level prefix network.
    let schedule = arch.schedule(nblocks);
    let (blk_prefix_g, _) = build_prefix_gp(&mut nl, &block_g, &block_p, &schedule);

    // Intra-block carries: flat lookahead from the block carry-in.
    let zero = nl.constant(false);
    let mut carries = Vec::with_capacity(nbits);
    for blk in 0..nblocks {
        let lo = blk * group;
        let hi = ((blk + 1) * group).min(nbits);
        let cin = if blk == 0 {
            zero
        } else {
            blk_prefix_g[blk - 1]
        };
        carries.push(cin);
        for i in (lo + 1)..hi {
            // c_i = g_{i-1} + p_{i-1} g_{i-2} + ... + p..p cin,
            // built as a serial fold (groups are small).
            let mut c = cin;
            for j in lo..i {
                c = nl.ao21(pg.p[j], c, pg.g[j]);
            }
            carries.push(c);
        }
    }
    let sum = sum_from_carries(&mut nl, &pg.p, &carries);
    adder_outputs(&mut nl, &sum, blk_prefix_g[nblocks - 1]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prefix_adder, ripple_carry};
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random, equiv_random};

    #[test]
    fn exhaustive_small() {
        for (nbits, group) in [(4usize, 2usize), (6, 3), (7, 2), (8, 4), (5, 8)] {
            for arch in [PrefixArch::KoggeStone, PrefixArch::Sklansky] {
                let nl = sparse_prefix(nbits, group, arch);
                let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
                assert!(report.is_exact(), "n={nbits} g={group} {arch}");
            }
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(389);
        for (nbits, group) in [(64usize, 4usize), (100, 5), (128, 8), (96, 3)] {
            let nl = sparse_prefix(nbits, group, PrefixArch::KoggeStone);
            let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("sim");
            assert!(report.is_exact(), "n={nbits} g={group}");
        }
    }

    #[test]
    fn equivalent_to_ripple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(397);
        equiv_random(
            &sparse_prefix(40, 4, PrefixArch::BrentKung),
            &ripple_carry(40),
            8,
            &mut rng,
        )
        .expect("equivalent");
    }

    #[test]
    fn smaller_than_dense_prefix() {
        let sparse = sparse_prefix(128, 4, PrefixArch::KoggeStone);
        let dense = prefix_adder(128, PrefixArch::KoggeStone);
        assert!(sparse.gate_count() < dense.gate_count());
        // Depth stays in the logarithmic class (block fold + prefix +
        // flat intra-block lookahead).
        assert!(sparse.depth() <= dense.depth() + 6);
    }

    #[test]
    fn group_one_degenerates_to_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(401);
        let nl = sparse_prefix(32, 1, PrefixArch::Sklansky);
        let report = check_adder_random(&nl, 32, 64, &mut rng).expect("sim");
        assert!(report.is_exact());
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_rejected() {
        sparse_prefix(8, 0, PrefixArch::KoggeStone);
    }
}
