//! The ripple-carry adder: minimum area, linear delay.

use crate::{adder_outputs, adder_ports};
use vlsa_netlist::Netlist;

/// Generates an `nbits` ripple-carry adder netlist with the standard
/// `a`/`b` → `s`/`cout` interface.
///
/// Uses one XOR pair and one majority gate per bit: `3n` gates, depth
/// `O(n)`.
///
/// # Panics
///
/// Panics if `nbits` is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::ripple_carry;
///
/// let nl = ripple_carry(8);
/// assert_eq!(nl.primary_outputs().len(), 9); // s[0..8] + cout
/// assert!(nl.depth() >= 8); // linear carry chain
/// ```
pub fn ripple_carry(nbits: usize) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("ripple{nbits}"));
    let (a, b) = adder_ports(&mut nl, nbits);
    let mut carry = nl.constant(false);
    let mut sum = vlsa_netlist::Bus::new();
    for i in 0..nbits {
        let p = nl.xor2(a[i], b[i]);
        sum.push(nl.xor2(p, carry));
        carry = nl.maj3(a[i], b[i], carry);
    }
    adder_outputs(&mut nl, &sum, carry);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random};

    #[test]
    fn exhaustive_small_widths() {
        for nbits in 1..=6 {
            let nl = ripple_carry(nbits);
            let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
            assert!(
                report.is_exact(),
                "nbits={nbits}: {:?}",
                report.first_failure
            );
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for nbits in [64usize, 127, 256] {
            let nl = ripple_carry(nbits);
            let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("simulate");
            assert!(report.is_exact(), "nbits={nbits}");
        }
    }

    #[test]
    fn gate_count_is_linear() {
        let nl = ripple_carry(32);
        assert_eq!(nl.gate_count(), 3 * 32);
        assert!(nl.validate(false).is_ok());
    }

    #[test]
    fn depth_is_linear() {
        assert!(ripple_carry(64).depth() >= 64);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        ripple_carry(0);
    }
}
