//! A unified handle over every baseline adder architecture.

use crate::{block_cla, carry_select, carry_skip, prefix_adder, ripple_carry, PrefixArch};
use std::fmt;
use vlsa_netlist::Netlist;

/// Every reliable ("traditional") adder architecture in this crate.
///
/// The paper's baseline is the DesignWare library adder — in practice a
/// tuned parallel-prefix network. [`AdderArch::BASELINES`] plays that
/// role here: the experiment harness picks the fastest per width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdderArch {
    /// Ripple-carry: smallest, slowest.
    Ripple,
    /// Carry-skip with the given block size.
    CarrySkip {
        /// Ripple-block size in bits.
        block: usize,
    },
    /// Carry-select with the given block size.
    CarrySelect {
        /// Block size in bits.
        block: usize,
    },
    /// Single-level block carry-lookahead with the given group size.
    Cla {
        /// Lookahead group size in bits.
        group: usize,
    },
    /// Conditional-sum adder (Sklansky 1960).
    ConditionalSum,
    /// A parallel-prefix network.
    Prefix(PrefixArch),
}

impl AdderArch {
    /// The candidates considered when choosing a "traditional fast
    /// adder" baseline (all log-depth architectures).
    pub const BASELINES: [AdderArch; 6] = [
        AdderArch::ConditionalSum,
        AdderArch::Prefix(PrefixArch::Sklansky),
        AdderArch::Prefix(PrefixArch::KoggeStone),
        AdderArch::Prefix(PrefixArch::BrentKung),
        AdderArch::Prefix(PrefixArch::HanCarlson),
        AdderArch::Prefix(PrefixArch::LadnerFischer),
    ];

    /// Generates the adder netlist at width `nbits` with the standard
    /// `a`/`b` → `s`/`cout` interface.
    ///
    /// # Panics
    ///
    /// Panics if `nbits` is zero (or a block/group parameter is zero).
    pub fn generate(self, nbits: usize) -> Netlist {
        match self {
            AdderArch::Ripple => ripple_carry(nbits),
            AdderArch::CarrySkip { block } => carry_skip(nbits, block),
            AdderArch::CarrySelect { block } => carry_select(nbits, block),
            AdderArch::Cla { group } => block_cla(nbits, group),
            AdderArch::ConditionalSum => crate::conditional_sum(nbits),
            AdderArch::Prefix(arch) => prefix_adder(nbits, arch),
        }
    }
}

impl fmt::Display for AdderArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdderArch::Ripple => f.write_str("ripple"),
            AdderArch::CarrySkip { block } => write!(f, "carry-skip/{block}"),
            AdderArch::CarrySelect { block } => write!(f, "carry-select/{block}"),
            AdderArch::Cla { group } => write!(f, "cla/{group}"),
            AdderArch::ConditionalSum => f.write_str("conditional-sum"),
            AdderArch::Prefix(arch) => write!(f, "{arch}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vlsa_sim::check_adder_random;

    #[test]
    fn every_architecture_generates_and_adds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        let archs = [
            AdderArch::Ripple,
            AdderArch::CarrySkip { block: 4 },
            AdderArch::CarrySelect { block: 4 },
            AdderArch::Cla { group: 4 },
            AdderArch::ConditionalSum,
            AdderArch::Prefix(PrefixArch::BrentKung),
        ];
        for arch in archs {
            let nl = arch.generate(32);
            let report = check_adder_random(&nl, 32, 64, &mut rng).expect("sim");
            assert!(report.is_exact(), "{arch}");
        }
    }

    #[test]
    fn baselines_are_log_depth() {
        for arch in AdderArch::BASELINES {
            let depth = arch.generate(64).depth();
            assert!(depth <= 16, "{arch}: depth {depth}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AdderArch::Ripple.to_string(), "ripple");
        assert_eq!(
            AdderArch::CarrySkip { block: 8 }.to_string(),
            "carry-skip/8"
        );
        assert_eq!(
            AdderArch::Prefix(PrefixArch::KoggeStone).to_string(),
            "kogge-stone"
        );
    }
}
