//! Single-level block carry-lookahead adder (CLA).
//!
//! Bits are split into groups of `group` bits. Within a group every
//! carry is computed in two logic levels from the bit `g`/`p` signals
//! and the group carry-in; group (G, P) pairs ripple across groups
//! through the carry operator. This is the error-recovery structure the
//! paper reuses in §4.2, so the implementation is shared with
//! `vlsa-core` via [`build_group_carries`].

use crate::{adder_outputs, adder_ports, pg_signals, sum_from_carries, PgSignals};
use vlsa_netlist::{NetId, Netlist};

/// The flat sum-of-products carry: `c_out = g[hi] + p[hi]g[hi-1] + ... +
/// p[hi]..p[lo]·cin`, built in two levels (AND tree per term, OR tree).
///
/// `gp` slices are indexed within the group (`lo..=hi` of the caller).
fn lookahead_carry(nl: &mut Netlist, g: &[NetId], p: &[NetId], cin: NetId) -> NetId {
    let mut terms = Vec::with_capacity(g.len() + 1);
    for (t, &gt) in g.iter().enumerate() {
        // g_t AND p_{t+1} .. p_{last}
        let mut factors = vec![gt];
        factors.extend_from_slice(&p[t + 1..]);
        terms.push(nl.and_tree(&factors));
    }
    // cin AND all propagates.
    let mut factors = vec![cin];
    factors.extend_from_slice(p);
    terms.push(nl.and_tree(&factors));
    nl.or_tree(&terms)
}

/// Emits lookahead carries for every bit position given per-bit `g`/`p`
/// and a group size, returning carries **into** bits `0..n` plus the
/// final carry-out (`n + 1` nets in total).
///
/// Group (G, P) ripple between groups through AO21 carry operators.
///
/// # Panics
///
/// Panics if `group` is zero or the signal widths disagree.
pub fn build_group_carries(nl: &mut Netlist, pg: &PgSignals, group: usize) -> Vec<NetId> {
    assert!(group > 0, "group size must be positive");
    let n = pg.width();
    let mut carries = Vec::with_capacity(n + 1);
    let mut carry = nl.constant(false);
    let mut lo = 0;
    while lo < n {
        let hi = (lo + group).min(n);
        let g = &pg.g[lo..hi];
        let p = &pg.p[lo..hi];
        // Carry into each bit of the group, flat from the group carry-in.
        carries.push(carry);
        for j in 1..(hi - lo) {
            let c = lookahead_carry(nl, &g[..j], &p[..j], carry);
            carries.push(c);
        }
        // Group carry-out.
        carry = lookahead_carry(nl, g, p, carry);
        lo = hi;
    }
    carries.push(carry);
    carries
}

/// Generates an `nbits` single-level block-CLA adder with groups of
/// `group` bits and the standard `a`/`b` → `s`/`cout` interface.
///
/// # Panics
///
/// Panics if `nbits` or `group` is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::{block_cla, ripple_carry};
///
/// let cla = block_cla(64, 4);
/// assert!(cla.depth() < ripple_carry(64).depth());
/// ```
pub fn block_cla(nbits: usize, group: usize) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    assert!(group > 0, "group size must be positive");
    let mut nl = Netlist::new(format!("cla{nbits}g{group}"));
    let (a, b) = adder_ports(&mut nl, nbits);
    let pg = pg_signals(&mut nl, &a, &b);
    let carries = build_group_carries(&mut nl, &pg, group);
    let sum = sum_from_carries(&mut nl, &pg.p, &carries[..nbits]);
    adder_outputs(&mut nl, &sum, carries[nbits]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripple_carry;
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random, equiv_random};

    #[test]
    fn exhaustive_small() {
        for (nbits, group) in [(4, 2), (4, 4), (6, 3), (7, 4), (8, 4), (5, 8)] {
            let nl = block_cla(nbits, group);
            let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
            assert!(report.is_exact(), "n={nbits} g={group}");
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(59);
        for (nbits, group) in [(64, 4), (100, 5), (128, 8)] {
            let nl = block_cla(nbits, group);
            let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("sim");
            assert!(report.is_exact(), "n={nbits} g={group}");
        }
    }

    #[test]
    fn equivalent_to_ripple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        equiv_random(&block_cla(20, 4), &ripple_carry(20), 8, &mut rng).expect("equivalent");
    }

    #[test]
    fn group_carries_has_n_plus_one_entries() {
        let mut nl = Netlist::new("t");
        let (a, b) = adder_ports(&mut nl, 10);
        let pg = pg_signals(&mut nl, &a, &b);
        let carries = build_group_carries(&mut nl, &pg, 4);
        assert_eq!(carries.len(), 11);
    }

    #[test]
    fn shallower_than_ripple() {
        assert!(block_cla(64, 4).depth() < ripple_carry(64).depth());
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_rejected() {
        block_cla(8, 0);
    }
}
