//! Conditional-sum adder (Sklansky 1960 — the paper's reference [13]).
//!
//! Every block keeps *two* versions of its sum and carry-out — one per
//! possible carry-in — and merging two blocks is a row of muxes steered
//! by the lower block's carries. `log2 n` merge levels give a
//! logarithmic adder built entirely from muxes, the ancestor of the
//! carry-select family.

use crate::{adder_outputs, adder_ports};
use vlsa_netlist::{Bus, NetId, Netlist};

/// One block's conditional state: sums and carry-outs under both
/// possible carry-ins.
struct CondBlock {
    sum0: Vec<NetId>,
    sum1: Vec<NetId>,
    c0: NetId,
    c1: NetId,
}

/// Generates an `nbits` conditional-sum adder with the standard
/// `a`/`b` → `s`/`cout` interface.
///
/// # Panics
///
/// Panics if `nbits` is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::{conditional_sum, ripple_carry};
///
/// let cs = conditional_sum(64);
/// assert!(cs.depth() < ripple_carry(64).depth() / 3);
/// ```
pub fn conditional_sum(nbits: usize) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("condsum{nbits}"));
    let (a, b) = adder_ports(&mut nl, nbits);

    // Per-bit blocks: sum and carry under carry-in 0 and 1.
    let mut blocks: Vec<CondBlock> = (0..nbits)
        .map(|i| {
            let p = nl.xor2(a[i], b[i]);
            let np = nl.xnor2(a[i], b[i]);
            let g = nl.and2(a[i], b[i]);
            let t = nl.or2(a[i], b[i]);
            CondBlock {
                sum0: vec![p],  // cin 0: s = p
                sum1: vec![np], // cin 1: s = !p
                c0: g,          // cin 0: carry = g
                c1: t,          // cin 1: carry = a | b
            }
        })
        .collect();

    // Merge pairs of blocks until one remains.
    while blocks.len() > 1 {
        let mut merged = Vec::with_capacity(blocks.len().div_ceil(2));
        let mut iter = blocks.into_iter();
        while let Some(lo) = iter.next() {
            match iter.next() {
                None => merged.push(lo),
                Some(hi) => {
                    // Under block carry-in 0: the high half is steered
                    // by lo.c0; under carry-in 1, by lo.c1.
                    let mut sum0 = lo.sum0.clone();
                    for (s0, s1) in hi.sum0.iter().zip(&hi.sum1) {
                        sum0.push(nl.mux2(*s0, *s1, lo.c0));
                    }
                    let mut sum1 = lo.sum1.clone();
                    for (s0, s1) in hi.sum0.iter().zip(&hi.sum1) {
                        sum1.push(nl.mux2(*s0, *s1, lo.c1));
                    }
                    let c0 = nl.mux2(hi.c0, hi.c1, lo.c0);
                    let c1 = nl.mux2(hi.c0, hi.c1, lo.c1);
                    merged.push(CondBlock { sum0, sum1, c0, c1 });
                }
            }
        }
        blocks = merged;
    }
    let top = blocks.pop().expect("nbits > 0 leaves one block");
    adder_outputs(&mut nl, &Bus::from_nets(top.sum0), top.c0);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripple_carry;
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random, equiv_random};

    #[test]
    fn exhaustive_small() {
        for nbits in [1usize, 2, 3, 5, 7, 8] {
            let nl = conditional_sum(nbits);
            let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
            assert!(report.is_exact(), "n={nbits}");
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(311);
        for nbits in [33usize, 64, 100, 128] {
            let nl = conditional_sum(nbits);
            let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("sim");
            assert!(report.is_exact(), "n={nbits}");
        }
    }

    #[test]
    fn equivalent_to_ripple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(313);
        equiv_random(&conditional_sum(29), &ripple_carry(29), 8, &mut rng).expect("equivalent");
    }

    #[test]
    fn depth_is_logarithmic() {
        // 1 level of pg + log2(n) mux levels.
        assert!(conditional_sum(64).depth() <= 8);
        assert!(conditional_sum(256).depth() <= 10);
    }

    #[test]
    fn area_is_n_log_n_in_muxes() {
        use vlsa_netlist::CellKind;
        let nl = conditional_sum(64);
        let stats = nl.stats();
        let muxes = stats.cells.get(&CellKind::Mux2).copied().unwrap_or(0);
        // Roughly n log2 n sum muxes plus 2 carry muxes per merge.
        assert!(muxes > 64 * 5 && muxes < 64 * 9, "{muxes}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        conditional_sum(0);
    }
}
