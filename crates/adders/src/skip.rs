//! Carry-skip (carry-bypass) adder: ripple blocks with a propagate
//! bypass mux around each block.

use crate::{adder_outputs, adder_ports};
use vlsa_netlist::{Bus, Netlist};

/// Generates an `nbits` carry-skip adder with ripple blocks of
/// `block` bits and the standard `a`/`b` → `s`/`cout` interface.
///
/// When every bit of a block propagates, the block's carry-in is routed
/// around the block through a single mux, shortening the *true* worst
/// carry path from `n` to roughly `block + n/block` stages. Note that
/// the long intra-block ripple path still exists structurally as a
/// false path, so topological depth and plain STA do not show the
/// speedup — the architecture is kept as a functional baseline and an
/// area point, not as the delay baseline.
///
/// # Panics
///
/// Panics if `nbits` or `block` is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::{carry_skip, ripple_carry};
///
/// let skip = carry_skip(64, 8);
/// assert!(skip.gate_count() > ripple_carry(64).gate_count());
/// ```
pub fn carry_skip(nbits: usize, block: usize) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    assert!(block > 0, "block size must be positive");
    let mut nl = Netlist::new(format!("skip{nbits}b{block}"));
    let (a, b) = adder_ports(&mut nl, nbits);
    let mut carry = nl.constant(false);
    let mut sum = Bus::new();
    let mut lo = 0;
    while lo < nbits {
        let hi = (lo + block).min(nbits);
        let block_cin = carry;
        let mut props = Vec::with_capacity(hi - lo);
        let mut c = block_cin;
        for i in lo..hi {
            let p = nl.xor2(a[i], b[i]);
            props.push(p);
            sum.push(nl.xor2(p, c));
            c = nl.maj3(a[i], b[i], c);
        }
        let block_prop = nl.and_tree(&props);
        // If the whole block propagates, bypass: carry-out = carry-in.
        carry = nl.mux2(c, block_cin, block_prop);
        lo = hi;
    }
    adder_outputs(&mut nl, &sum, carry);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripple_carry;
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random, equiv_random};

    #[test]
    fn exhaustive_small() {
        for (nbits, block) in [(4, 2), (6, 3), (7, 2), (8, 4), (5, 8)] {
            let nl = carry_skip(nbits, block);
            let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
            assert!(report.is_exact(), "n={nbits} b={block}");
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for (nbits, block) in [(64, 4), (64, 8), (100, 7), (128, 16)] {
            let nl = carry_skip(nbits, block);
            let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("sim");
            assert!(report.is_exact(), "n={nbits} b={block}");
        }
    }

    #[test]
    fn equivalent_to_ripple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        equiv_random(&carry_skip(32, 4), &ripple_carry(32), 8, &mut rng).expect("equivalent");
    }

    #[test]
    fn structure_close_to_ripple_plus_bypass() {
        // The bypass muxes and block-propagate trees add modest area;
        // structural depth is ripple-like because the intra-block ripple
        // remains as a (false) path.
        let skip = carry_skip(64, 8);
        let rip = ripple_carry(64);
        assert!(skip.gate_count() > rip.gate_count());
        assert!(skip.gate_count() < rip.gate_count() + 3 * 64 / 8 * 8);
        assert!(skip.depth() >= rip.depth());
        assert!(skip.depth() <= rip.depth() + 64 / 8 + 2);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        carry_skip(8, 0);
    }
}
