//! Carry-select adder: each block computes both possible sums and picks
//! one when its true carry-in arrives.

use crate::{adder_outputs, adder_ports};
use vlsa_netlist::{Bus, NetId, Netlist};

/// Generates an `nbits` carry-select adder with blocks of `block` bits
/// and the standard `a`/`b` → `s`/`cout` interface.
///
/// Each block beyond the first contains two ripple chains (carry-in 0
/// and 1); the block's true carry-in steers muxes on the sum bits and on
/// the block carry-out, so carries traverse one mux per block instead of
/// `block` full-adder stages.
///
/// # Panics
///
/// Panics if `nbits` or `block` is zero.
pub fn carry_select(nbits: usize, block: usize) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    assert!(block > 0, "block size must be positive");
    let mut nl = Netlist::new(format!("select{nbits}b{block}"));
    let (a, b) = adder_ports(&mut nl, nbits);
    let mut sum = Bus::new();
    // First block: plain ripple from carry-in 0.
    let mut carry = nl.constant(false);
    let first_hi = block.min(nbits);
    for i in 0..first_hi {
        let p = nl.xor2(a[i], b[i]);
        sum.push(nl.xor2(p, carry));
        carry = nl.maj3(a[i], b[i], carry);
    }
    // Remaining blocks: dual ripple chains + selection.
    let mut lo = first_hi;
    while lo < nbits {
        let hi = (lo + block).min(nbits);
        let ripple = |nl: &mut Netlist, cin: NetId| -> (Vec<NetId>, NetId) {
            let mut c = cin;
            let mut sums = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let p = nl.xor2(a[i], b[i]);
                sums.push(nl.xor2(p, c));
                c = nl.maj3(a[i], b[i], c);
            }
            (sums, c)
        };
        let zero = nl.constant(false);
        let one = nl.constant(true);
        let (sum0, cout0) = ripple(&mut nl, zero);
        let (sum1, cout1) = ripple(&mut nl, one);
        for (s0, s1) in sum0.iter().zip(&sum1) {
            sum.push(nl.mux2(*s0, *s1, carry));
        }
        carry = nl.mux2(cout0, cout1, carry);
        lo = hi;
    }
    adder_outputs(&mut nl, &sum, carry);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripple_carry;
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random, equiv_random};

    #[test]
    fn exhaustive_small() {
        for (nbits, block) in [(4, 2), (6, 3), (7, 3), (8, 4), (5, 8)] {
            let nl = carry_select(nbits, block);
            let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
            assert!(report.is_exact(), "n={nbits} b={block}");
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        for (nbits, block) in [(64, 8), (100, 9), (128, 16)] {
            let nl = carry_select(nbits, block);
            let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("sim");
            assert!(report.is_exact(), "n={nbits} b={block}");
        }
    }

    #[test]
    fn equivalent_to_ripple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        equiv_random(&carry_select(24, 4), &ripple_carry(24), 8, &mut rng).expect("equivalent");
    }

    #[test]
    fn costs_roughly_double_area_for_speed() {
        let sel = carry_select(64, 8);
        let rip = ripple_carry(64);
        assert!(sel.depth() < rip.depth());
        assert!(sel.gate_count() > rip.gate_count());
        assert!(sel.gate_count() < 3 * rip.gate_count());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        carry_select(0, 4);
    }
}
