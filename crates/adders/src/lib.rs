//! Baseline ("traditional") adder generators for the VLSA workspace.
//!
//! The DATE 2008 paper compares its speculative adder against reliable
//! fast adders — in their flow, the Synopsys DesignWare library adder.
//! This crate implements that baseline space from scratch as
//! [`vlsa_netlist::Netlist`] generators, all sharing the port convention
//! `a[0..n]`, `b[0..n]` → `s[0..n]`, `cout`:
//!
//! - [`ripple_carry`]: linear-delay, minimum-area reference,
//! - [`carry_skip`] / [`carry_select`]: classic block accelerators,
//! - [`block_cla`]: single-level carry-lookahead (also the paper's error
//!   recovery structure, exposed via [`build_group_carries`]),
//! - [`prefix_adder`]: the parallel-prefix family
//!   ([`PrefixArch::Sklansky`], [`PrefixArch::KoggeStone`],
//!   [`PrefixArch::BrentKung`], [`PrefixArch::HanCarlson`],
//!   [`PrefixArch::LadnerFischer`], plus the serial chain).
//!
//! [`AdderArch`] unifies them for sweeps.
//!
//! # Examples
//!
//! ```
//! use vlsa_adders::{prefix_adder, PrefixArch};
//!
//! let adder = prefix_adder(32, PrefixArch::Sklansky);
//! assert_eq!(adder.primary_inputs().len(), 64);
//! assert!(adder.depth() <= 12); // logarithmic
//! ```

mod arch;
mod cla;
mod condsum;
mod pg;
mod prefix;
mod ripple;
mod select;
mod skip;
mod sparse;

pub use arch::AdderArch;
pub use cla::{block_cla, build_group_carries};
pub use condsum::conditional_sum;
pub use pg::{adder_outputs, adder_ports, pg_signals, sum_from_carries, PgSignals};
pub use prefix::{
    build_prefix_carries, build_prefix_gp, prefix_adder, schedule_is_complete, schedule_stats,
    PrefixArch, PrefixOp, PrefixSchedule, ScheduleStats,
};
pub use ripple::ripple_carry;
pub use select::carry_select;
pub use skip::carry_skip;
pub use sparse::sparse_prefix;

#[cfg(test)]
mod proptests;
