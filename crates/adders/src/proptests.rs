//! Property-based tests: every architecture adds correctly at every
//! width, and schedules stay structurally sound.

use crate::*;
use proptest::prelude::*;
use vlsa_sim::check_adder_random;

fn archs() -> impl Strategy<Value = AdderArch> {
    prop_oneof![
        Just(AdderArch::Ripple),
        (1usize..10).prop_map(|b| AdderArch::CarrySkip { block: b }),
        (1usize..10).prop_map(|b| AdderArch::CarrySelect { block: b }),
        (1usize..10).prop_map(|g| AdderArch::Cla { group: g }),
        Just(AdderArch::ConditionalSum),
        proptest::sample::select(&PrefixArch::ALL[..]).prop_map(AdderArch::Prefix),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_architecture_any_width_adds(
        arch in archs(),
        nbits in 1usize..40,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nl = arch.generate(nbits);
        prop_assert!(nl.validate(false).is_ok());
        let report = check_adder_random(&nl, nbits, 64, &mut rng)
            .expect("standard port convention");
        prop_assert!(report.is_exact(), "{arch} nbits={nbits}: {:?}", report.first_failure);
    }

    #[test]
    fn schedules_complete_at_any_width(
        arch in proptest::sample::select(&PrefixArch::ALL[..]),
        n in 1usize..200,
    ) {
        prop_assert!(schedule_is_complete(n, &arch.schedule(n)), "{arch} n={n}");
    }

    #[test]
    fn schedule_ops_reference_valid_positions(
        arch in proptest::sample::select(&PrefixArch::ALL[..]),
        n in 1usize..128,
    ) {
        for level in arch.schedule(n) {
            for (pos, from) in level {
                prop_assert!(pos < n && from < pos);
            }
        }
    }

    #[test]
    fn serial_is_op_optimal(n in 1usize..256) {
        let stats = schedule_stats(&PrefixArch::Serial.schedule(n));
        prop_assert_eq!(stats.ops, n.saturating_sub(1));
    }
}
