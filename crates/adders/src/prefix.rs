//! Parallel-prefix adder framework.
//!
//! A prefix adder evaluates the carry recurrence with the associative
//! operator `(g, p) ◦ (g', p') = (g + p·g', p·p')` over some prefix
//! network. The network is a *schedule*: a list of levels, each holding
//! `(pos, from)` combine operations meaning "position `pos` absorbs the
//! span ending at `from`". All classic architectures differ only in
//! their schedule:
//!
//! | architecture  | depth        | ops         | max fanout |
//! |---------------|--------------|-------------|------------|
//! | serial        | `n-1`        | `n-1`       | 1          |
//! | Sklansky      | `log n`      | `n/2 log n` | `n/2`      |
//! | Kogge-Stone   | `log n`      | `~n log n`  | 2          |
//! | Brent-Kung    | `2 log n - 1`| `~2n`       | 2          |
//! | Han-Carlson   | `log n + 1`  | `~n/2 log n`| 2          |
//! | Ladner-Fischer| `log n + 1`  | `~n/4 log n`| `n/4`      |

use crate::{adder_outputs, adder_ports, pg_signals, sum_from_carries};
use std::fmt;
use vlsa_netlist::{NetId, Netlist};

/// A combine operation: position `pos` absorbs the prefix span ending at
/// `from` (`from < pos`).
pub type PrefixOp = (usize, usize);

/// A prefix network: levels of combine operations. Operations within a
/// level read the values produced by earlier levels only.
pub type PrefixSchedule = Vec<Vec<PrefixOp>>;

/// The classic parallel-prefix architectures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrefixArch {
    /// Linear chain (PG-form ripple): minimal ops, depth `n-1`.
    Serial,
    /// Sklansky / conditional-sum: minimal depth, high fanout.
    Sklansky,
    /// Kogge-Stone: minimal depth and fanout, maximal wiring.
    KoggeStone,
    /// Brent-Kung: near-minimal ops, depth `2 log n - 1`.
    BrentKung,
    /// Han-Carlson: Kogge-Stone over odd positions plus a fixup level.
    HanCarlson,
    /// Ladner-Fischer: Sklansky over odd positions plus a fixup level.
    LadnerFischer,
}

impl PrefixArch {
    /// All architectures, in a stable order.
    pub const ALL: [PrefixArch; 6] = [
        PrefixArch::Serial,
        PrefixArch::Sklansky,
        PrefixArch::KoggeStone,
        PrefixArch::BrentKung,
        PrefixArch::HanCarlson,
        PrefixArch::LadnerFischer,
    ];

    /// Lowercase architecture name.
    pub fn name(self) -> &'static str {
        match self {
            PrefixArch::Serial => "serial",
            PrefixArch::Sklansky => "sklansky",
            PrefixArch::KoggeStone => "kogge-stone",
            PrefixArch::BrentKung => "brent-kung",
            PrefixArch::HanCarlson => "han-carlson",
            PrefixArch::LadnerFischer => "ladner-fischer",
        }
    }

    /// Builds the prefix schedule for `n` positions.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn schedule(self, n: usize) -> PrefixSchedule {
        assert!(n > 0, "prefix width must be positive");
        match self {
            PrefixArch::Serial => serial(n),
            PrefixArch::Sklansky => sklansky(n),
            PrefixArch::KoggeStone => kogge_stone(n),
            PrefixArch::BrentKung => brent_kung(n),
            PrefixArch::HanCarlson => hybrid_odd(n, kogge_stone),
            PrefixArch::LadnerFischer => hybrid_odd(n, sklansky),
        }
    }
}

impl fmt::Display for PrefixArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn serial(n: usize) -> PrefixSchedule {
    (1..n).map(|i| vec![(i, i - 1)]).collect()
}

fn sklansky(n: usize) -> PrefixSchedule {
    let mut levels = Vec::new();
    let mut d = 0;
    while (1usize << d) < n {
        let mut ops = Vec::new();
        for i in 0..n {
            if (i >> d) & 1 == 1 {
                let partner = (i >> d << d) - 1;
                ops.push((i, partner));
            }
        }
        levels.push(ops);
        d += 1;
    }
    levels
}

fn kogge_stone(n: usize) -> PrefixSchedule {
    let mut levels = Vec::new();
    let mut shift = 1;
    while shift < n {
        levels.push((shift..n).map(|i| (i, i - shift)).collect());
        shift <<= 1;
    }
    levels
}

fn brent_kung(n: usize) -> PrefixSchedule {
    let mut levels = Vec::new();
    // Up-sweep: build power-of-two spans.
    let mut shift = 1;
    while shift < n {
        let step = shift << 1;
        let ops: Vec<PrefixOp> = (step - 1..n)
            .step_by(step)
            .map(|i| (i, i - shift))
            .collect();
        if !ops.is_empty() {
            levels.push(ops);
        }
        shift = step;
    }
    // Down-sweep: fill in the remaining positions.
    shift >>= 1;
    while shift >= 1 {
        let step = shift << 1;
        let ops: Vec<PrefixOp> = (step + shift - 1..n)
            .step_by(step)
            .map(|i| (i, i - shift))
            .collect();
        if !ops.is_empty() {
            levels.push(ops);
        }
        if shift == 1 {
            break;
        }
        shift >>= 1;
    }
    levels
}

/// Builds a network that runs `core` over the odd positions (in terms of
/// pair indices) and fixes the even positions with one final level — the
/// common structure of Han-Carlson and Ladner-Fischer.
fn hybrid_odd(n: usize, core: fn(usize) -> PrefixSchedule) -> PrefixSchedule {
    if n <= 2 {
        return serial(n);
    }
    let mut levels = Vec::new();
    // Level 0: every odd position absorbs its even neighbour.
    levels.push((1..n).step_by(2).map(|i| (i, i - 1)).collect::<Vec<_>>());
    // Core network over the odd positions (indices 1, 3, 5, ...).
    let odd_count = n / 2;
    let odd_pos = |idx: usize| 2 * idx + 1;
    for level in core(odd_count) {
        levels.push(
            level
                .into_iter()
                .map(|(i, j)| (odd_pos(i), odd_pos(j)))
                .collect(),
        );
    }
    // Fixup: even positions (>= 2) absorb the completed odd prefix below.
    levels.push((2..n).step_by(2).map(|i| (i, i - 1)).collect::<Vec<_>>());
    levels
}

/// Structural summary of a schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Number of levels (prefix depth).
    pub depth: usize,
    /// Total combine operations.
    pub ops: usize,
    /// Maximum number of consumers of one position's value within a
    /// single level.
    pub max_fanout: usize,
}

/// Computes depth, operation count and per-level fanout of a schedule.
pub fn schedule_stats(schedule: &PrefixSchedule) -> ScheduleStats {
    let mut stats = ScheduleStats {
        depth: schedule.len(),
        ..ScheduleStats::default()
    };
    for level in schedule {
        stats.ops += level.len();
        let mut counts = std::collections::HashMap::new();
        for &(_, from) in level {
            *counts.entry(from).or_insert(0usize) += 1;
        }
        stats.max_fanout = stats
            .max_fanout
            .max(counts.values().copied().max().unwrap_or(0));
    }
    stats
}

/// Verifies that a schedule computes all prefixes: every combine must
/// join adjacent spans, and every position must end covering `[0..=i]`.
///
/// Returns `false` (rather than panicking) so tests can assert on it.
pub fn schedule_is_complete(n: usize, schedule: &PrefixSchedule) -> bool {
    // lo[i]: lowest index currently covered by position i's value.
    let mut lo: Vec<usize> = (0..n).collect();
    for level in schedule {
        let snapshot = lo.clone();
        for &(pos, from) in level {
            if pos >= n || from >= pos {
                return false;
            }
            // Spans must be adjacent: [snapshot[from] ..= from] + [snapshot[pos] ..= pos].
            if snapshot[pos] != from + 1 {
                return false;
            }
            lo[pos] = snapshot[from];
        }
    }
    lo.iter().all(|&l| l == 0)
}

/// Emits the prefix network into `nl`, returning both the group
/// generate and group propagate nets of every prefix `[0..=i]`.
///
/// `g`/`p` are the per-bit generate/propagate nets; both are consumed as
/// the initial per-position values.
pub fn build_prefix_gp(
    nl: &mut Netlist,
    g: &[NetId],
    p: &[NetId],
    schedule: &PrefixSchedule,
) -> (Vec<NetId>, Vec<NetId>) {
    let mut gv = g.to_vec();
    let mut pv = p.to_vec();
    for level in schedule {
        let gs = gv.clone();
        let ps = pv.clone();
        for &(pos, from) in level {
            // (G, P)[pos] = (G_hi + P_hi·G_lo, P_hi·P_lo)
            gv[pos] = nl.ao21(ps[pos], gs[from], gs[pos]);
            pv[pos] = nl.and2(ps[pos], ps[from]);
        }
    }
    (gv, pv)
}

/// Emits the prefix carry network into `nl`, returning the group
/// generate net of every prefix `[0..=i]` (see [`build_prefix_gp`]).
pub fn build_prefix_carries(
    nl: &mut Netlist,
    g: &[NetId],
    p: &[NetId],
    schedule: &PrefixSchedule,
) -> Vec<NetId> {
    build_prefix_gp(nl, g, p, schedule).0
}

/// Generates an `nbits` parallel-prefix adder netlist with the standard
/// `a`/`b` → `s`/`cout` interface.
///
/// # Panics
///
/// Panics if `nbits` is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::{prefix_adder, PrefixArch};
///
/// let ks = prefix_adder(64, PrefixArch::KoggeStone);
/// let bk = prefix_adder(64, PrefixArch::BrentKung);
/// // Kogge-Stone is shallower but much larger.
/// assert!(ks.depth() < bk.depth());
/// assert!(ks.gate_count() > bk.gate_count());
/// ```
pub fn prefix_adder(nbits: usize, arch: PrefixArch) -> Netlist {
    assert!(nbits > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("{}{nbits}", arch.name().replace('-', "_")));
    let (a, b) = adder_ports(&mut nl, nbits);
    let pg = pg_signals(&mut nl, &a, &b);
    let schedule = arch.schedule(nbits);
    debug_assert!(schedule_is_complete(nbits, &schedule), "{arch} schedule");
    let group_g = build_prefix_carries(&mut nl, &pg.g, &pg.p, &schedule);
    let zero = nl.constant(false);
    let carries: Vec<NetId> = std::iter::once(zero)
        .chain(group_g.iter().copied().take(nbits - 1))
        .collect();
    let sum = sum_from_carries(&mut nl, &pg.p, &carries);
    adder_outputs(&mut nl, &sum, group_g[nbits - 1]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vlsa_sim::{check_adder_exhaustive, check_adder_random};

    #[test]
    fn all_schedules_complete() {
        for arch in PrefixArch::ALL {
            for n in [1usize, 2, 3, 4, 7, 8, 13, 16, 32, 33, 64, 100, 128] {
                assert!(schedule_is_complete(n, &arch.schedule(n)), "{arch} n={n}");
            }
        }
    }

    #[test]
    fn all_architectures_add_correctly_exhaustive() {
        for arch in PrefixArch::ALL {
            for nbits in [1usize, 2, 3, 5, 6] {
                let nl = prefix_adder(nbits, arch);
                let report = check_adder_exhaustive(&nl, nbits).expect("simulate");
                assert!(report.is_exact(), "{arch} nbits={nbits}");
            }
        }
    }

    #[test]
    fn all_architectures_add_correctly_wide_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for arch in PrefixArch::ALL {
            for nbits in [64usize, 100, 128] {
                let nl = prefix_adder(nbits, arch);
                let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("simulate");
                assert!(report.is_exact(), "{arch} nbits={nbits}");
            }
        }
    }

    #[test]
    fn depth_ordering_matches_theory() {
        let n = 64;
        let depth = |arch: PrefixArch| schedule_stats(&arch.schedule(n)).depth;
        assert_eq!(depth(PrefixArch::Serial), n - 1);
        assert_eq!(depth(PrefixArch::Sklansky), 6); // log2(64)
        assert_eq!(depth(PrefixArch::KoggeStone), 6);
        assert_eq!(depth(PrefixArch::BrentKung), 2 * 6 - 1);
        assert_eq!(depth(PrefixArch::HanCarlson), 7);
        assert_eq!(depth(PrefixArch::LadnerFischer), 7);
    }

    #[test]
    fn op_counts_match_theory() {
        let n = 64;
        let ops = |arch: PrefixArch| schedule_stats(&arch.schedule(n)).ops;
        assert_eq!(ops(PrefixArch::Serial), n - 1);
        assert_eq!(ops(PrefixArch::Sklansky), n / 2 * 6); // (n/2) log n
        assert_eq!(ops(PrefixArch::KoggeStone), 64 * 6 - 63); // n log n - n + 1 = 321
                                                              // Brent-Kung: 2(n-1) - log n = 120.
        assert_eq!(ops(PrefixArch::BrentKung), 2 * (n - 1) - 6);
        assert!(ops(PrefixArch::HanCarlson) < ops(PrefixArch::KoggeStone));
        assert!(ops(PrefixArch::LadnerFischer) < ops(PrefixArch::HanCarlson));
    }

    #[test]
    fn fanout_ordering_matches_theory() {
        let n = 64;
        let fo = |arch: PrefixArch| schedule_stats(&arch.schedule(n)).max_fanout;
        assert_eq!(fo(PrefixArch::KoggeStone), 1);
        assert!(fo(PrefixArch::Sklansky) >= n / 4);
        assert!(fo(PrefixArch::BrentKung) <= 2);
        assert!(fo(PrefixArch::HanCarlson) <= 2);
    }

    #[test]
    fn netlists_validate() {
        for arch in PrefixArch::ALL {
            let nl = prefix_adder(32, arch);
            // Dead-gate check skipped: the final P of the full span is
            // unused by design.
            assert!(nl.validate(false).is_ok(), "{arch}");
        }
    }

    #[test]
    fn non_power_of_two_widths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        for arch in PrefixArch::ALL {
            for nbits in [5usize, 24, 100] {
                let nl = prefix_adder(nbits, arch);
                let report = check_adder_random(&nl, nbits, 64, &mut rng).expect("sim");
                assert!(report.is_exact(), "{arch} nbits={nbits}");
            }
        }
    }

    #[test]
    fn width_one_has_no_prefix_ops() {
        for arch in PrefixArch::ALL {
            let stats = schedule_stats(&arch.schedule(1));
            assert_eq!(stats.ops, 0, "{arch}");
        }
    }

    #[test]
    fn schedule_validator_rejects_bad_networks() {
        // Missing coverage.
        assert!(!schedule_is_complete(4, &vec![vec![(1, 0)]]));
        // Non-adjacent combine.
        assert!(!schedule_is_complete(4, &vec![vec![(3, 0)]]));
        // Out of range.
        assert!(!schedule_is_complete(2, &vec![vec![(5, 0)]]));
        // from >= pos.
        assert!(!schedule_is_complete(4, &vec![vec![(1, 1)]]));
    }

    #[test]
    fn display_names() {
        assert_eq!(PrefixArch::KoggeStone.to_string(), "kogge-stone");
        assert_eq!(PrefixArch::Serial.name(), "serial");
    }
}
