//! Fault injection against a live server, over the real wire: a killed
//! shard worker must be restarted by the supervisor and remain
//! observable the whole way (`/healthz`, `/slo`, `/events`), a retrying
//! client must land every request across the loss, hedged duplicates
//! must be refused by the dedup ring, and an expired deadline must be
//! attributable from the wide-event stream down to the span tree —
//! the operator-facing walk the robustness counters exist for.

use std::sync::Arc;
use std::time::Duration;

use vlsa_chaos::{ChaosInjector, FaultPlan};
use vlsa_server::{
    AddBatch, EventLogConfig, Frame, Outcome, ProtocolError, Response, RetryClient, RetryPolicy,
    ServerConfig, ShardConfig, TraceContext, VlsaClient, VlsaServer,
};
use vlsa_slo::Objectives;
use vlsa_telemetry::Json;

fn get(server: &VlsaServer, path: &str) -> (u16, String) {
    let addr = server.metrics_addr().expect("metrics enabled");
    vlsa_monitor::http_get(addr, path, Duration::from_secs(10)).expect("http")
}

#[test]
fn a_killed_worker_is_restarted_and_retries_land_every_request() {
    let plan: FaultPlan = "kill:shard=0@batch=2".parse().expect("plan");
    let injector = Arc::new(ChaosInjector::new(plan));
    let mut server = VlsaServer::start(ServerConfig {
        shards: 1,
        metrics: true,
        slo: Some(Objectives::demo()),
        events: Some(EventLogConfig::default()),
        chaos: Some(Arc::clone(&injector)),
        ..ServerConfig::default()
    })
    .expect("start");

    let mut client = RetryClient::connect(
        &server.addr().to_string(),
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
    )
    .expect("connect");
    for i in 0..40u64 {
        match client.request(32, &[(i, 100)]).expect("verdict") {
            Outcome::Answered { sums, .. } => {
                assert_eq!(sums.results[0].sum, i + 100);
            }
            other => panic!("request {i} lost across the kill: {other:?}"),
        }
    }
    let stats = client.stats();
    assert_eq!(injector.counts().kills, 1, "the planned kill must fire");
    assert!(
        stats.retried_successfully >= 1,
        "the in-flight request must be recovered by a retry: {stats:?}"
    );

    // The loss is visible on every operator surface.
    let totals = server.pool().totals();
    assert!(totals.restarts >= 1, "supervisor must have restarted");

    let (status, body) = get(&server, "/healthz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("json");
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert!(
        doc.get("restarts").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "/healthz must carry the restart count: {body}"
    );

    let (status, body) = get(&server, "/slo");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("json");
    assert!(
        doc.get("restarts").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "/slo must attribute the burn to fault recovery: {body}"
    );
    assert!(
        doc.get("retryable").and_then(Json::as_u64).is_some(),
        "/slo must carry the retryable counter: {body}"
    );

    let (status, body) = get(&server, "/events?n=500");
    assert_eq!(status, 200);
    let restart_event = body
        .lines()
        .map(|line| Json::parse(line).expect("event line"))
        .find(|doc| doc.get("kind").and_then(Json::as_str) == Some("restart"))
        .expect("the restart must be in the wide-event stream");
    assert!(
        restart_event
            .get("generation")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "a restart event carries the new worker generation: {restart_event}"
    );
    assert!(
        restart_event.get("retryable_drained").is_some(),
        "a restart event accounts for its drained queue: {restart_event}"
    );
    server.shutdown();
}

#[test]
fn hedged_duplicates_are_refused_by_the_dedup_ring() {
    let mut server = VlsaServer::start(ServerConfig::default()).expect("start");
    let mut client = VlsaClient::connect(server.addr()).expect("connect");

    // The primary copy executes…
    client
        .send_request(&AddBatch::new(1, 32, vec![(2, 3)]).with_hedge(0xFEED, 0))
        .expect("send");
    match client.read_response(1).expect("response") {
        Response::Sums(sums) => assert_eq!(sums.results[0].sum, 5),
        other => panic!("primary copy must execute: {other:?}"),
    }

    // …a byte-identical duplicate of the same (key, seq) is refused…
    client
        .send_request(&AddBatch::new(2, 32, vec![(2, 3)]).with_hedge(0xFEED, 0))
        .expect("send");
    match client.read_response(2) {
        Err(vlsa_server::ClientError::Server(e)) => {
            assert_eq!(e.code, ProtocolError::CODE_DUPLICATE_HEDGE);
        }
        other => panic!("duplicate (key, seq) must be refused: {other:?}"),
    }

    // …and a fresh seq under the same key is a fresh logical attempt.
    client
        .send_request(&AddBatch::new(3, 32, vec![(4, 5)]).with_hedge(0xFEED, 1))
        .expect("send");
    match client.read_response(3).expect("response") {
        Response::Sums(sums) => assert_eq!(sums.results[0].sum, 9),
        other => panic!("fresh seq must execute: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn deadline_sheds_and_traces_walk_from_the_event_stream() {
    // A slow modeled device (1 ms/cycle) so a parked worker makes
    // queued deadlines genuinely expire.
    let mut server = VlsaServer::start(ServerConfig {
        shards: 1,
        shard: ShardConfig {
            cycle_ns: 1_000_000,
            ..ShardConfig::default()
        },
        metrics: true,
        slo: Some(Objectives::demo()),
        events: Some(EventLogConfig::default()),
        ..ServerConfig::default()
    })
    .expect("start");

    // A traced request first: its id must be walkable from the event
    // stream to the span tree.
    const TRACE_ID: u64 = 0xC0FFEE;
    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    let response = client
        .request_traced(1, 32, &[(1, 2)], Some(TraceContext::sampled(TRACE_ID)))
        .expect("request");
    assert!(matches!(response, Response::Sums(_)));

    // Park the worker in its pacing sleep with a heavy batch, then
    // queue one request with a 1 ms budget and one without; the batch
    // forms after ~300 modeled ms, shedding the first and serving the
    // second.
    let (tx, rx_heavy) = std::sync::mpsc::channel();
    server
        .pool()
        .submit(AddBatch::new(2, 32, vec![(1, 2); 300]), tx)
        .expect("empty queue accepts");
    std::thread::sleep(Duration::from_millis(50));
    let (tx, rx_expired) = std::sync::mpsc::channel();
    server
        .pool()
        .submit(
            AddBatch::new(4, 32, vec![(3, 4)]).with_deadline_us(1_000),
            tx,
        )
        .expect("queued");
    let (tx, rx_kept) = std::sync::mpsc::channel();
    server
        .pool()
        .submit(AddBatch::new(6, 32, vec![(5, 6)]), tx)
        .expect("queued");

    match rx_expired.recv().expect("reply").frame {
        Frame::Error(e) => assert_eq!(e.code, ProtocolError::CODE_DEADLINE_EXCEEDED),
        other => panic!("expired request must be shed typed: {other:?}"),
    }
    match rx_kept.recv().expect("reply").frame {
        Frame::SumBatch(sums) => assert_eq!(sums.results[0].sum, 11),
        other => panic!("in-budget request must be served: {other:?}"),
    }
    drop(rx_heavy);

    // /slo carries the typed shed…
    let (status, body) = get(&server, "/slo");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("json");
    assert!(
        doc.get("deadline_exceeded")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "/slo must count the deadline shed: {body}"
    );

    // …the wide-event stream attributes it to its batch…
    let (status, body) = get(&server, "/events?n=500");
    assert_eq!(status, 200);
    let events: Vec<Json> = body
        .lines()
        .map(|line| Json::parse(line).expect("event line"))
        .collect();
    assert!(
        events.iter().any(|doc| {
            doc.get("deadline_exceeded")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 1
        }),
        "an event must carry the deadline shed: {body}"
    );

    // …and the traced request's event walks to its span tree.
    let traced_event = events
        .iter()
        .find(|doc| doc.get("trace_id").and_then(Json::as_u64) == Some(TRACE_ID))
        .expect("the traced batch must be in the event stream");
    let id = traced_event
        .get("trace_id")
        .and_then(Json::as_u64)
        .expect("trace id");
    let (status, body) = get(&server, &format!("/trace/{id}"));
    assert_eq!(status, 200, "event trace id must resolve to a span tree");
    assert!(body.contains("spans"), "span tree body: {body}");
    server.shutdown();
}
