//! End-to-end tail-latency attribution: a deliberately induced p999
//! outlier must be traceable from the latency histogram bucket through
//! its exemplar trace id to the full span decomposition — over the
//! same HTTP endpoints an operator would use.
//!
//! The outlier is manufactured, not hoped for: one request carries a
//! large adversarial batch (every op stalls) through a server with a
//! slow modeled device, while a crowd of small uniform requests forms
//! the body of the distribution. The worst exemplar must name the
//! heavy request, `/trace/{id}` must return its span tree, and the
//! phase decomposition must sum to within tolerance of the round trip
//! the client measured for that same request.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use vlsa_pipeline::{adversarial_operands, random_operands};
use vlsa_server::{Response, ServerConfig, ShardConfig, TraceContext, VlsaClient, VlsaServer};
use vlsa_telemetry::Json;

/// A minimal HTTP/1.0 GET against the scrape server, returning
/// `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

#[test]
fn an_induced_p999_outlier_is_attributable_end_to_end() {
    // A slow modeled device makes service + pacing the dominant cost
    // of the heavy batch: 1024 adversarial 64-bit ops at 10 µs/cycle
    // is ≥ 20 ms of modeled device time, orders of magnitude above the
    // light traffic.
    let mut server = VlsaServer::start(ServerConfig {
        shards: 2,
        shard: ShardConfig {
            cycle_ns: 10_000,
            ..ShardConfig::default()
        },
        metrics: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let scrape = server.metrics_addr().expect("metrics enabled");

    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x0B5);
    let mut rtts: HashMap<u64, u64> = HashMap::new();

    // The body of the distribution: small uniform batches across both
    // shards, every one traced so exemplars have ids to retain.
    for r in 0..40u64 {
        let trace_id = 0x1000 + r;
        let ops = random_operands(64, 4, &mut rng);
        let sent = Instant::now();
        let response = client
            .request_traced(r, 64, &ops, Some(TraceContext::sampled(trace_id)))
            .expect("request");
        assert!(matches!(response, Response::Sums(_)), "no load, no shed");
        rtts.insert(trace_id, sent.elapsed().as_micros() as u64);
    }

    // The outlier: one heavy adversarial batch pinned to shard 0 (even
    // request id). Every op pays the recovery bubble.
    const HEAVY_TRACE_ID: u64 = 0xBAD_F00D;
    let heavy_ops = adversarial_operands(64, 1024);
    let sent = Instant::now();
    let response = client
        .request_traced(
            1000,
            64,
            &heavy_ops,
            Some(TraceContext::sampled(HEAVY_TRACE_ID)),
        )
        .expect("heavy request");
    let heavy_rtt_us = sent.elapsed().as_micros() as u64;
    let Response::Sums(sums) = response else {
        panic!("heavy request was shed");
    };
    assert_eq!(usize::from(sums.shard), 0, "even id routes to shard 0");
    assert!(
        sums.results.iter().all(|op| op.stalled()),
        "adversarial ops must all stall"
    );
    let timing = sums.timing.expect("traced request echoes timing");
    assert_eq!(timing.trace_id, HEAVY_TRACE_ID);

    // Step 1 — histogram bucket → exemplar: the worst retained
    // exemplar across all shards names the heavy request.
    let obs = server.obs();
    let worst = (0..obs.shard_count())
        .filter_map(|s| obs.exemplars(s).worst())
        .max_by_key(|ex| ex.value)
        .expect("traced requests were recorded");
    assert_eq!(
        worst.trace_id, HEAVY_TRACE_ID,
        "the worst exemplar must be the induced outlier"
    );

    // The same attribution over the operator's endpoint.
    let (status, body) = http_get(scrape, "/exemplars");
    assert!(status.contains("200"), "{status}");
    let doc = Json::parse(&body).expect("exemplars JSON");
    let shards = doc.get("shards").and_then(Json::as_arr).expect("shards");
    assert!(
        shards.iter().any(|s| {
            s.get("buckets")
                .and_then(Json::as_arr)
                .is_some_and(|buckets| {
                    buckets.iter().any(|b| {
                        b.get("trace_id").and_then(Json::as_str)
                            == Some(&HEAVY_TRACE_ID.to_string())
                    })
                })
        }),
        "/exemplars must surface the outlier's trace id: {body}"
    );

    // Step 2 — exemplar trace id → span tree, over /trace/{id}.
    let (status, body) = http_get(scrape, &format!("/trace/{HEAVY_TRACE_ID}"));
    assert!(status.contains("200"), "{status}: {body}");
    let trace = Json::parse(&body).expect("trace JSON");
    assert_eq!(
        trace.get("trace_id").and_then(Json::as_str),
        Some(HEAVY_TRACE_ID.to_string().as_str())
    );
    assert_eq!(trace.get("ops").and_then(Json::as_u64), Some(1024));
    assert_eq!(trace.get("stalls").and_then(Json::as_u64), Some(1024));
    let spans = trace.get("spans").and_then(Json::as_arr).expect("spans");
    assert_eq!(spans.len(), 5, "five phases: {body}");

    // Step 3 — decomposition closes against the client's own clock:
    // the phases must account for the round trip minus the (loopback)
    // network share, and the echoed timing must be a prefix of the
    // ring's record (which adds write_back).
    let total_us = trace.get("total_us").and_then(Json::as_u64).expect("total");
    let span_sum: u64 = spans
        .iter()
        .map(|s| s.get("dur_us").and_then(Json::as_u64).expect("dur"))
        .sum();
    assert_eq!(span_sum, total_us, "spans must tile the total exactly");
    assert!(
        total_us <= heavy_rtt_us + 1_000,
        "server-side total {total_us} us exceeds client rtt {heavy_rtt_us} us"
    );
    assert!(
        total_us >= heavy_rtt_us / 2,
        "a modeled-device-bound request must spend most of its rtt \
         server-side: total {total_us} us of rtt {heavy_rtt_us} us"
    );
    assert!(
        timing.total_us() <= total_us,
        "echoed timing omits write_back, so it cannot exceed the ring total"
    );
    // The decomposition must blame the device, not the queue: service
    // plus pacing dominates for a lone heavy batch.
    let phase = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|s| s.get("dur_us"))
            .and_then(Json::as_u64)
            .expect("phase present")
    };
    assert!(
        phase("service") + phase("device_pace") >= total_us / 2,
        "outlier must be attributed to service/pacing: {body}"
    );

    // Chrome-trace export of the same trace loads as trace events.
    let (status, body) = http_get(scrape, &format!("/trace/{HEAVY_TRACE_ID}?format=chrome"));
    assert!(status.contains("200"), "{status}");
    let chrome = Json::parse(&body).expect("chrome JSON");
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert_eq!(events.len(), 6, "root span + five phases");

    // Unknown ids are a clean 404, not a hang or a panic.
    let (status, _) = http_get(scrape, "/trace/999999999");
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_get(scrape, "/trace/not-a-number");
    assert!(status.contains("400"), "{status}");

    // The rest of the light traffic is also attributable: every traced
    // rtt bounds its recorded server-side total.
    for (&trace_id, &rtt_us) in &rtts {
        let Some(rt) = obs.lookup(trace_id) else {
            continue; // evicted by ring capacity — allowed
        };
        assert!(
            rt.total_us() <= rtt_us + 1_000,
            "trace {trace_id:#x}: total {} us > rtt {rtt_us} us",
            rt.total_us()
        );
    }

    server.shutdown();
}

#[test]
fn the_profiler_and_snapshot_endpoints_serve_while_under_load() {
    // The build-info gauge lives in the global recorder; scope one in
    // like the `serve` binary does.
    let _telemetry = vlsa_telemetry::ScopedRecorder::install();
    let mut server = VlsaServer::start(ServerConfig {
        shards: 2,
        metrics: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let scrape = server.metrics_addr().expect("metrics enabled");
    let addr = server.addr();

    // Background load so the profiler has shard-worker stacks to see.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = std::sync::Arc::clone(&stop);
    let load = std::thread::spawn(move || {
        let mut client = VlsaClient::connect(addr).expect("connect");
        let ops = adversarial_operands(64, 64);
        let mut id = 0u64;
        while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
            id += 1;
            let _ = client.request_traced(id, 64, &ops, Some(TraceContext::sampled(id)));
        }
    });

    // /profile blocks for the sampling window, then reports folded
    // stacks naming the shard workers and their phase frames.
    let (status, folded) = http_get(scrape, "/profile?seconds=1&hz=200");
    assert!(status.contains("200"), "{status}");
    assert!(
        folded.lines().any(|l| l.starts_with("vlsa-shard-")),
        "folded stacks must name shard workers:\n{folded}"
    );
    for line in folded.lines() {
        let (_stack, count) = line.rsplit_once(' ').expect("folded format");
        count.parse::<u64>().expect("folded sample count");
    }

    let (status, body) = http_get(scrape, "/profile?seconds=1&format=json");
    assert!(status.contains("200"), "{status}");
    Json::parse(&body).expect("profile JSON");

    // /snapshot carries build info alongside the metrics snapshot.
    let (status, body) = http_get(scrape, "/snapshot");
    assert!(status.contains("200"), "{status}");
    let snap = Json::parse(&body).expect("snapshot JSON");
    let build = snap.get("build").expect("build section");
    assert_eq!(
        build.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert_eq!(build.get("shards").and_then(Json::as_u64), Some(2));

    // /metrics carries the build-info gauge with the same labels.
    let (status, body) = http_get(scrape, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        body.lines()
            .any(|l| l.starts_with("vlsa_server_build_info{")
                && l.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION")))),
        "build info gauge missing:\n{body}"
    );

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    load.join().expect("load thread");
    server.shutdown();
}
