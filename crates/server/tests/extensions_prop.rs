//! Property tests for the tagged trailing-extension wire format.
//!
//! The extension scheme must hold three promises at once:
//!
//! 1. **Round-trip fidelity** — any mix of known extensions
//!    (`EXT_TRACE`, `EXT_DEADLINE`, `EXT_HEDGE`) and unknown skippable
//!    TLVs (`tag >= 0x80`) survives encode → decode unchanged,
//!    including the wire order of the unknown tail.
//! 2. **Coexistence** — `EXT_DEADLINE` composes with `EXT_TRACE` and
//!    with extension tags this build has never heard of; a frame
//!    carrying all of them decodes every field intact.
//! 3. **Compatibility** — an extension-free frame is byte-identical to
//!    the pre-extension protocol, so old clients and old captures keep
//!    parsing forever.

use proptest::prelude::*;
use vlsa_server::protocol::{EXT_SKIPPABLE_MIN, TYPE_ADD_BATCH, TYPE_SUM_BATCH};
use vlsa_server::{AddBatch, Frame, OpResult, ServerTiming, SumBatch, TraceContext};

/// Encode → split prefix → decode, asserting the length prefix is
/// consistent on the way through.
fn roundtrip(frame: &Frame) -> Frame {
    let bytes = frame.encode();
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte prefix")) as usize;
    assert_eq!(len, bytes.len() - 4, "length prefix covers type + body");
    Frame::decode(bytes[4], &bytes[5..]).expect("self-encoded frame decodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn addbatch_roundtrips_with_any_extension_mix(
        request_id in any::<u64>(),
        nbits in 1u8..=64,
        ops in proptest::collection::vec(any::<(u64, u64)>(), 0..6),
        has_trace in any::<bool>(),
        trace_id in 1u64..,
        deadline in any::<bool>(),
        budget_us in any::<u32>(),
        has_hedge in any::<bool>(),
        hedge_key in 1u64..,
        hedge_seq in any::<u32>(),
        tags in proptest::collection::vec(EXT_SKIPPABLE_MIN..=u8::MAX, 0..4),
        payload in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut request = AddBatch::new(request_id, nbits, ops);
        if has_trace {
            request = request.with_trace(TraceContext::sampled(trace_id));
        }
        if deadline {
            request = request.with_deadline_us(budget_us);
        }
        if has_hedge {
            request = request.with_hedge(hedge_key, hedge_seq);
        }
        // Every unknown tag carries the same generated payload; what
        // matters is that tag order and bytes survive verbatim.
        request.unknown = tags.iter().map(|&t| (t, payload.clone())).collect();
        let frame = Frame::AddBatch(request);
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn sumbatch_roundtrips_with_unknown_extensions(
        request_id in any::<u64>(),
        shard in any::<u16>(),
        sums in proptest::collection::vec(any::<u64>(), 0..6),
        traced in any::<bool>(),
        trace_id in 1u64..,
        tags in proptest::collection::vec(EXT_SKIPPABLE_MIN..=u8::MAX, 0..4),
        payload in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let response = SumBatch {
            request_id,
            shard,
            results: sums
                .into_iter()
                .map(|sum| OpResult { sum, flags: 0 })
                .collect(),
            timing: traced.then_some(ServerTiming {
                trace_id,
                queue_us: 1,
                linger_us: 2,
                service_us: 3,
                pace_us: 4,
            }),
            unknown: tags.iter().map(|&t| (t, payload.clone())).collect(),
        };
        let frame = Frame::SumBatch(response);
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn extension_free_frames_are_byte_identical_to_the_legacy_layout(
        request_id in any::<u64>(),
        nbits in 1u8..=64,
        ops in proptest::collection::vec(any::<(u64, u64)>(), 0..6),
    ) {
        // Hand-build the pre-extension wire layout…
        let mut expected = Vec::new();
        expected.extend_from_slice(&(14 + 16 * ops.len() as u32).to_le_bytes());
        expected.push(TYPE_ADD_BATCH);
        expected.extend_from_slice(&request_id.to_le_bytes());
        expected.push(nbits);
        expected.extend_from_slice(&(ops.len() as u32).to_le_bytes());
        for &(a, b) in &ops {
            expected.extend_from_slice(&a.to_le_bytes());
            expected.extend_from_slice(&b.to_le_bytes());
        }
        // …and the encoder must produce exactly those bytes: a request
        // with no extensions carries zero extension overhead.
        let frame = Frame::AddBatch(AddBatch::new(request_id, nbits, ops));
        prop_assert_eq!(frame.encode(), expected);
    }

    #[test]
    fn deadline_coexists_with_trace_and_unknown_tails(
        budget_us in any::<u32>(),
        trace_id in 1u64..,
        tag in EXT_SKIPPABLE_MIN..=u8::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut request = AddBatch::new(7, 32, vec![(1, 2), (3, 4)])
            .with_deadline_us(budget_us)
            .with_trace(TraceContext::sampled(trace_id));
        request.unknown = vec![(tag, payload.clone())];
        let Frame::AddBatch(decoded) = roundtrip(&Frame::AddBatch(request)) else {
            return Err(TestCaseError::fail("decoded to a different frame type"));
        };
        prop_assert_eq!(decoded.deadline_us, Some(budget_us));
        prop_assert_eq!(decoded.trace, Some(TraceContext::sampled(trace_id)));
        prop_assert_eq!(decoded.unknown, vec![(tag, payload)]);
    }

    #[test]
    fn raw_appended_tlvs_decode_and_are_preserved_in_order(
        tags in proptest::collection::vec(EXT_SKIPPABLE_MIN..=u8::MAX, 1..4),
        payload in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        // Distinct payload per TLV (a shrinking prefix of `payload`) so
        // order preservation has teeth.
        let tlvs: Vec<(u8, Vec<u8>)> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, payload[..payload.len().saturating_sub(i)].to_vec()))
            .collect();
        // Simulate a *newer* client appending extensions this build has
        // never seen: splice raw TLVs onto an extension-free frame and
        // repair the length prefix, exactly as a foreign encoder would.
        let mut bytes = Frame::AddBatch(AddBatch::new(9, 16, vec![(5, 6)])).encode();
        for (tag, payload) in &tlvs {
            bytes.push(*tag);
            bytes.push(payload.len() as u8);
            bytes.extend_from_slice(payload);
        }
        let patched_len = ((bytes.len() - 4) as u32).to_le_bytes();
        bytes[..4].copy_from_slice(&patched_len);
        let Frame::AddBatch(decoded) =
            Frame::decode(bytes[4], &bytes[5..]).expect("skippable tail decodes")
        else {
            return Err(TestCaseError::fail("decoded to a different frame type"));
        };
        prop_assert_eq!(decoded.unknown, tlvs);
        prop_assert_eq!(decoded.request_id, 9);
        prop_assert_eq!(decoded.ops, vec![(5, 6)]);
    }
}

/// The frozen golden bytes: one op, no extensions, 34 bytes exactly —
/// any drift here breaks deployed clients.
#[test]
fn golden_addbatch_is_34_bytes() {
    let bytes = Frame::AddBatch(AddBatch::new(1, 64, vec![(2, 3)])).encode();
    assert_eq!(bytes.len(), 34);
}

/// And the extension-free SumBatch golden: one result, 28 bytes.
#[test]
fn golden_sumbatch_is_28_bytes() {
    let bytes = Frame::SumBatch(SumBatch {
        request_id: 1,
        shard: 0,
        results: vec![OpResult { sum: 5, flags: 0 }],
        timing: None,
        unknown: Vec::new(),
    })
    .encode();
    assert_eq!(bytes.len(), 28);
    assert_eq!(bytes[4], TYPE_SUM_BATCH);
}
