//! Trace-context wire compatibility: the optional extension must be
//! invisible to clients and servers that do not speak it.
//!
//! Three guarantees, each checked over the real wire where it matters:
//! extension-free frames are byte-for-byte identical to the
//! pre-extension protocol (golden bytes); malformed extension payloads
//! are answered with a typed `BadExtension` error frame, never a panic
//! or a hang; and a mixed fleet — traced and untraced clients against
//! the same server — round-trips with each client seeing exactly the
//! protocol it speaks.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use vlsa_server::protocol::{self, EXT_TRACE};
use vlsa_server::{
    read_frame, AddBatch, Busy, Frame, OpResult, ProtocolError, Response, ServerConfig, SumBatch,
    TraceContext, VlsaClient, VlsaServer,
};

/// The pre-extension encoding of `AddBatch { request_id: 7, nbits: 16,
/// ops: [(1, 2)] }`, written out by hand from the protocol table. Any
/// drift here is a wire break for old clients.
const GOLDEN_ADD_BATCH: [u8; 34] = [
    30,
    0,
    0,
    0, // length: type byte + 29-byte body
    protocol::TYPE_ADD_BATCH,
    7,
    0,
    0,
    0,
    0,
    0,
    0,
    0,  // request_id u64
    16, // nbits
    1,
    0,
    0,
    0, // op count u32
    1,
    0,
    0,
    0,
    0,
    0,
    0,
    0, // a
    2,
    0,
    0,
    0,
    0,
    0,
    0,
    0, // b
];

/// The pre-extension encoding of `SumBatch { request_id: 7, shard: 1,
/// results: [{sum: 3, stalled}] }`.
const GOLDEN_SUM_BATCH: [u8; 28] = [
    24,
    0,
    0,
    0, // length
    protocol::TYPE_SUM_BATCH,
    7,
    0,
    0,
    0,
    0,
    0,
    0,
    0, // request_id u64
    1,
    0, // shard u16
    1,
    0,
    0,
    0, // result count u32
    3,
    0,
    0,
    0,
    0,
    0,
    0,
    0, // sum
    protocol::FLAG_STALLED,
];

#[test]
fn extension_free_frames_are_byte_identical_to_the_pre_extension_protocol() {
    let add = Frame::AddBatch(AddBatch::new(7, 16, vec![(1, 2)]));
    assert_eq!(add.encode(), GOLDEN_ADD_BATCH, "AddBatch wire drift");
    assert_eq!(
        Frame::decode(GOLDEN_ADD_BATCH[4], &GOLDEN_ADD_BATCH[5..]).expect("golden decodes"),
        add
    );

    let sum = Frame::SumBatch(SumBatch {
        request_id: 7,
        shard: 1,
        results: vec![OpResult {
            sum: 3,
            flags: protocol::FLAG_STALLED,
        }],
        timing: None,
        unknown: Vec::new(),
    });
    assert_eq!(sum.encode(), GOLDEN_SUM_BATCH, "SumBatch wire drift");
    assert_eq!(
        Frame::decode(GOLDEN_SUM_BATCH[4], &GOLDEN_SUM_BATCH[5..]).expect("golden decodes"),
        sum
    );

    // Busy never grew an extension; pin it too.
    let busy = Frame::Busy(Busy {
        request_id: 9,
        shard: 1,
        queue_depth: 64,
    });
    let golden_busy: [u8; 19] = [
        15,
        0,
        0,
        0,
        protocol::TYPE_BUSY,
        9,
        0,
        0,
        0,
        0,
        0,
        0,
        0, // request_id
        1,
        0, // shard
        64,
        0,
        0,
        0, // queue_depth
    ];
    assert_eq!(busy.encode(), golden_busy, "Busy wire drift");
}

#[test]
fn a_traced_add_batch_is_the_golden_frame_plus_the_tagged_extension() {
    // The extension is strictly additive: the traced encoding starts
    // with the untraced body bytes (only the length prefix differs).
    let traced = Frame::AddBatch(
        AddBatch::new(7, 16, vec![(1, 2)]).with_trace(TraceContext::sampled(0x0102_0304_0506_0708)),
    )
    .encode();
    assert_eq!(traced[4..], {
        let mut expected = GOLDEN_ADD_BATCH[4..].to_vec();
        expected.push(EXT_TRACE);
        expected.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        expected.push(protocol::FLAG_TRACE_SAMPLED);
        expected
    });
    assert_eq!(
        u32::from_le_bytes(traced[..4].try_into().expect("prefix")),
        30 + 10 // base body + tag + trace_id + flags
    );
}

fn start_server() -> VlsaServer {
    VlsaServer::start(ServerConfig {
        shards: 2,
        read_timeout: Duration::from_millis(50),
        ..ServerConfig::default()
    })
    .expect("start")
}

/// Sends raw bytes on a fresh connection and reads the answer.
fn send_raw(server: &VlsaServer, bytes: &[u8]) -> Frame {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(bytes).expect("write");
    stream.flush().expect("flush");
    read_frame(&mut stream).expect("a frame back")
}

#[test]
fn garbage_and_oversized_trace_extensions_get_typed_errors_over_the_wire() {
    let mut server = start_server();
    let base =
        Frame::AddBatch(AddBatch::new(4, 32, vec![(1, 2)]).with_trace(TraceContext::sampled(7)))
            .encode();
    // Offsets inside the encoded frame: prefix 4, type 1, request_id 8,
    // nbits 1, count 4, one op 16 → the extension tag sits at 34.
    let ext_tag = 4 + 1 + 8 + 1 + 4 + 16;
    assert_eq!(base[ext_tag], protocol::EXT_TRACE);
    let bad_extension = ProtocolError::BadExtension(String::new()).code();

    // Unknown non-skippable extension tag (tags below 0x80 must be
    // understood; 0x80 and up are length-prefixed and skippable).
    let mut unknown_tag = base.clone();
    unknown_tag[ext_tag] = 0x13;
    // Zero trace id (the no-trace sentinel must never travel).
    let mut zero_id = base.clone();
    zero_id[ext_tag + 1..ext_tag + 9].fill(0);
    // Reserved flag bits.
    let mut reserved_flags = base.clone();
    *reserved_flags.last_mut().expect("flags byte") = 0xFF;
    for (label, bytes) in [
        ("unknown tag", &unknown_tag),
        ("zero trace id", &zero_id),
        ("reserved flags", &reserved_flags),
    ] {
        match send_raw(&server, bytes) {
            Frame::Error(e) => assert_eq!(e.code, bad_extension, "{label}"),
            other => panic!("{label}: expected error frame, got {other:?}"),
        }
    }

    // An oversized extension — trailing bytes past the complete
    // payload — cannot be an extension at all: malformed.
    let mut oversized = base.clone();
    oversized.extend_from_slice(&[0xAB; 16]);
    let new_len = (oversized.len() - 4) as u32;
    oversized[..4].copy_from_slice(&new_len.to_le_bytes());
    match send_raw(&server, &oversized) {
        Frame::Error(e) => {
            assert_eq!(e.code, ProtocolError::Malformed(String::new()).code());
        }
        other => panic!("oversized extension: expected error frame, got {other:?}"),
    }

    // A truncated extension payload is malformed too.
    let mut truncated = base.clone();
    truncated.truncate(base.len() - 4);
    let new_len = (truncated.len() - 4) as u32;
    truncated[..4].copy_from_slice(&new_len.to_le_bytes());
    match send_raw(&server, &truncated) {
        Frame::Error(e) => {
            assert_eq!(e.code, ProtocolError::Malformed(String::new()).code());
        }
        other => panic!("truncated extension: expected error frame, got {other:?}"),
    }

    // A well-formed *skippable* TLV extension (tag ≥ 0x80) is not an
    // error: the server ignores what it does not understand and
    // answers the sums.
    let mut skippable = base.clone();
    skippable.extend_from_slice(&[0x99, 2, 0xAB, 0xCD]);
    let new_len = (skippable.len() - 4) as u32;
    skippable[..4].copy_from_slice(&new_len.to_le_bytes());
    match send_raw(&server, &skippable) {
        Frame::SumBatch(sums) => assert_eq!(sums.results[0].sum, 3),
        other => panic!("skippable extension: expected sums, got {other:?}"),
    }

    // None of it poisoned the server for well-behaved clients.
    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    match client.add_batch(16, &[(40, 2)]).expect("request") {
        Response::Sums(sums) => assert_eq!(sums.results[0].sum, 42),
        other => panic!("no load, no faults: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn a_mixed_traced_and_untraced_fleet_round_trips_against_one_server() {
    let mut server = start_server();
    let addr = server.addr();
    let mut workers = Vec::new();
    for c in 0..4u64 {
        workers.push(std::thread::spawn(move || {
            let mut client = VlsaClient::connect(addr).expect("connect");
            for r in 0..25u64 {
                let request_id = c * 100 + r;
                // Even-numbered clients are old (never send the
                // extension); odd ones trace every request.
                let trace = (c % 2 == 1).then(|| TraceContext::sampled((c << 32) | (r + 1)));
                let response = client
                    .request_traced(request_id, 32, &[(request_id, 1)], trace)
                    .expect("request");
                let Response::Sums(sums) = response else {
                    panic!("no load, must not shed");
                };
                assert_eq!(sums.request_id, request_id);
                assert_eq!(sums.results[0].sum, request_id + 1);
                match trace {
                    // Traced requests get the decomposition, tagged
                    // with the id the client chose.
                    Some(tc) => {
                        let timing = sums.timing.expect("traced request echoes timing");
                        assert_eq!(timing.trace_id, tc.trace_id);
                    }
                    // Old clients never see bytes they cannot parse.
                    None => assert_eq!(sums.timing, None),
                }
            }
        }));
    }
    for worker in workers {
        worker.join().expect("client thread");
    }
    assert_eq!(
        server
            .stats()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    server.shutdown();
}
