//! The serving layer's SLO surface, end to end over HTTP: liveness and
//! readiness probes, the `/slo` budget status, canonical wide events at
//! `/events`, and the one-concurrent-session bound on `/profile` — all
//! exercised the way an operator (or an orchestrator's probe loop)
//! would hit them.

use std::sync::atomic::Ordering;
use std::time::Duration;

use vlsa_server::{
    AddBatch, EventLogConfig, Response, ServerConfig, ShardConfig, VlsaClient, VlsaServer,
};
use vlsa_slo::Objectives;
use vlsa_telemetry::Json;

fn get(server: &VlsaServer, path: &str) -> (u16, String) {
    let addr = server.metrics_addr().expect("metrics enabled");
    vlsa_monitor::http_get(addr, path, Duration::from_secs(10)).expect("http")
}

fn heavy_request(request_id: u64, ops: usize) -> AddBatch {
    AddBatch::new(request_id, 32, vec![(1, 2); ops])
}

#[test]
fn healthz_is_live_and_readyz_tracks_degrade_state() {
    let mut server = VlsaServer::start(ServerConfig {
        shards: 2,
        metrics: true,
        slo: Some(Objectives::demo()),
        ..ServerConfig::default()
    })
    .expect("start");

    let (status, body) = get(&server, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&body).expect("json").get("ok"),
        Some(&Json::Bool(true))
    );

    let (status, body) = get(&server, "/readyz");
    assert_eq!(status, 200, "healthy server is ready: {body}");
    let doc = Json::parse(&body).expect("json");
    assert_eq!(doc.get("ready"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("degraded_shards").and_then(Json::as_u64), Some(0));

    // Degrade both shards (an operator switch or monitor would do the
    // same); the latch engages on each shard's next batch.
    for shard in 0..server.pool().shard_count() {
        server
            .pool()
            .degrade_flag(shard)
            .store(true, Ordering::Relaxed);
    }
    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    for id in 0..2u64 {
        let response = client.request(id, 32, &[(1, 2)]).expect("request");
        assert!(matches!(response, Response::Sums(_)));
    }

    let (status, body) = get(&server, "/readyz");
    assert_eq!(status, 503, "degraded server is not ready: {body}");
    let doc = Json::parse(&body).expect("json");
    assert_eq!(doc.get("ready"), Some(&Json::Bool(false)));
    assert!(
        doc.get("degraded_shards")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );

    server.shutdown();
}

#[test]
fn wide_events_are_served_at_the_events_endpoint() {
    let mut server = VlsaServer::start(ServerConfig {
        metrics: true,
        events: Some(EventLogConfig::default()),
        slo: Some(Objectives::demo()),
        ..ServerConfig::default()
    })
    .expect("start");
    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    for id in 0..8u64 {
        let response = client
            .request(id, 32, &[(id, 100), (3, 4)])
            .expect("request");
        assert!(matches!(response, Response::Sums(_)));
    }

    let (status, body) = get(&server, "/events?n=50");
    assert_eq!(status, 200);
    assert!(!body.is_empty(), "batches must have emitted events");
    for line in body.lines() {
        let doc = Json::parse(line).expect("every line is a JSON object");
        assert_eq!(doc.get("shard").and_then(Json::as_u64), Some(0));
        assert!(doc.get("ops").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert_eq!(
            doc.get("adder").and_then(Json::as_str),
            Some("speculative"),
            "healthy shard serves speculatively"
        );
        assert_eq!(doc.get("slo_pages_firing").and_then(Json::as_u64), Some(0));
    }
    // ?n= truncates to the newest n.
    let (_, one) = get(&server, "/events?n=1");
    assert_eq!(one.lines().count(), 1);
    server.shutdown();

    // A server without an event log answers 404, not an empty stream.
    let mut bare = VlsaServer::start(ServerConfig {
        metrics: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let (status, _) = get(&bare, "/events");
    assert_eq!(status, 404);
    bare.shutdown();
}

#[test]
fn profile_is_bounded_to_one_concurrent_session() {
    let mut server = VlsaServer::start(ServerConfig {
        metrics: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.metrics_addr().expect("metrics enabled");

    // First session: 3 s of sampling on its own connection thread.
    let long = std::thread::spawn(move || {
        vlsa_monitor::http_get(addr, "/profile?seconds=3", Duration::from_secs(15)).expect("http")
    });
    // Give the first request ample time to reach the handler and claim
    // the session, then contend with it while it is provably running.
    std::thread::sleep(Duration::from_millis(500));
    let (status, busy_body) = get(&server, "/profile");
    assert_eq!(
        status, 429,
        "a concurrent /profile must be refused: {busy_body}"
    );
    let doc = Json::parse(&busy_body).expect("429 body is typed JSON");
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("profile_in_progress")
    );

    // The original session still completes normally…
    let (status, _) = long.join().expect("join");
    assert_eq!(status, 200);
    // …and the slot frees up for the next caller.
    let (status, _) = get(&server, "/profile?seconds=1");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn overload_burns_the_availability_budget_and_flips_readiness() {
    // One shard with a tiny queue and a slow modeled device: the first
    // heavy batch parks the worker in its pacing sleep, and the flood
    // below sheds almost entirely. Sheds are availability bad-events,
    // so the demo fast-burn rule pages and `/readyz` goes 503.
    let mut server = VlsaServer::start(ServerConfig {
        shards: 1,
        shard: ShardConfig {
            queue_capacity: 2,
            cycle_ns: 1_000_000,
            ..ShardConfig::default()
        },
        metrics: true,
        slo: Some(Objectives::demo()),
        ..ServerConfig::default()
    })
    .expect("start");

    // ~500 modeled ms of pacing parks the worker in its sleep. The
    // wire protocol is synchronous per connection (a client can never
    // overfill the queue alone), so the flood submits straight into
    // the pool — the same path every connection thread takes.
    let mut receivers = Vec::new();
    let (tx, rx) = std::sync::mpsc::channel();
    server
        .pool()
        .submit(heavy_request(0, 500), tx)
        .expect("empty queue accepts");
    receivers.push(rx);
    std::thread::sleep(Duration::from_millis(100));
    let mut shed = 0u64;
    for id in 1..=300u64 {
        let (tx, rx) = std::sync::mpsc::channel();
        match server.pool().submit(heavy_request(id, 1), tx) {
            Ok(()) => receivers.push(rx),
            Err(_) => shed += 1,
        }
    }
    assert!(shed >= 100, "flood must shed heavily, shed {shed}");

    let (status, body) = get(&server, "/slo");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("json");
    assert!(
        doc.get("pages_firing").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "shed storm must page: {body}"
    );

    let (status, body) = get(&server, "/readyz");
    assert_eq!(status, 503, "paging server is not ready: {body}");
    let doc = Json::parse(&body).expect("json");
    assert!(
        doc.get("slo_pages_firing")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
    server.shutdown();
}
