//! Determinism: sharded, batched, concurrently-submitted execution is
//! bit-identical to sequential execution — same sums, same stall
//! flags, same residue verdicts — for shard counts 1, 2, and 7.
//!
//! The argument this verifies: fault-free, a VLSA op's sum and stall
//! flag are pure functions of its operands (the detector is
//! conservative, so every delivered sum equals ground truth), which
//! makes the result independent of how requests interleave across
//! shards, batches, and threads.

use std::sync::mpsc::channel;
use std::time::Duration;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use vlsa_core::SpeculativeAdder;
use vlsa_pipeline::{
    adversarial_operands, biased_operands, random_operands, ResilienceConfig, ResilientPipeline,
    VlsaPipeline,
};
use vlsa_server::{
    AddBatch, Backend, BatchPolicy, Frame, OpResult, Response, ServerConfig, ShardConfig,
    ShardPool, VlsaClient, VlsaServer,
};

const NBITS: usize = 32;
const WINDOW: usize = 12;

/// A mixed workload: uniform, biased, and adversarial segments, so the
/// comparison covers clean ops, stalls, and stall runs.
fn mixed_stream(seed: u64, count: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let third = count / 3;
    let mut ops = random_operands(NBITS, third, &mut rng);
    ops.extend(biased_operands(NBITS, third, 0.7, &mut rng));
    ops.extend(adversarial_operands(NBITS, count - 2 * third));
    ops
}

/// Sequential references: per-op (sum, stalled) from the plain
/// pipeline, and per-op exact-path verdicts + residue counters from a
/// sequential resilient run.
fn sequential_reference(ops: &[(u64, u64)]) -> (Vec<(u64, bool)>, Vec<bool>, u64) {
    let adder = SpeculativeAdder::new(NBITS, WINDOW).expect("valid adder");
    let mut plain = VlsaPipeline::new(adder);
    let mut samples = Vec::with_capacity(ops.len());
    plain.run_observed(ops, |s| samples.push((s.sum, s.stalled)));

    let mut resilient = ResilientPipeline::new(adder, ResilienceConfig::default());
    let batch = resilient.run_batch(ops);
    let exact_paths = batch.outcomes.iter().map(|o| o.exact_path).collect();
    (samples, exact_paths, batch.stats.residue_mismatches)
}

fn shard_config() -> ShardConfig {
    ShardConfig {
        nbits: NBITS,
        window: WINDOW,
        queue_capacity: 64,
        batch: BatchPolicy {
            max_ops: 256,
            linger: Duration::from_micros(200),
        },
        ..ShardConfig::default()
    }
}

/// Splits the stream into uneven requests and submits them directly to
/// a pool (all outstanding at once, so batches coalesce), returning
/// per-op results flattened back into stream order.
fn run_through_pool(ops: &[(u64, u64)], shards: usize) -> Vec<OpResult> {
    run_through_pool_on(ops, shards, Backend::Scalar)
}

fn run_through_pool_on(ops: &[(u64, u64)], shards: usize, backend: Backend) -> Vec<OpResult> {
    let config = ShardConfig {
        backend,
        ..shard_config()
    };
    let pool = ShardPool::start(&config, shards).expect("valid config");
    let chunks: Vec<&[(u64, u64)]> = ops.chunks(37).collect();
    let mut receivers = Vec::with_capacity(chunks.len());
    for (id, chunk) in chunks.iter().enumerate() {
        let (tx, rx) = channel();
        pool.submit(AddBatch::new(id as u64, NBITS as u8, chunk.to_vec()), tx)
            .expect("queue capacity covers all outstanding requests");
        receivers.push(rx);
    }
    let mut results = Vec::with_capacity(ops.len());
    for (id, rx) in receivers.into_iter().enumerate() {
        match rx.recv().expect("reply").frame {
            Frame::SumBatch(sums) => {
                assert_eq!(sums.request_id, id as u64);
                assert_eq!(usize::from(sums.shard), id % shards);
                results.extend(sums.results);
            }
            other => panic!("expected sums for request {id}, got {other:?}"),
        }
    }
    pool.shutdown();
    results
}

fn assert_bit_identical(ops: &[(u64, u64)], results: &[OpResult], label: &str) {
    let (samples, exact_paths, residue_mismatches) = sequential_reference(ops);
    assert_eq!(results.len(), samples.len(), "{label}: op count");
    for (i, (result, &(sum, stalled))) in results.iter().zip(&samples).enumerate() {
        assert_eq!(result.sum, sum, "{label}: sum of op {i}");
        assert_eq!(result.stalled(), stalled, "{label}: stall flag of op {i}");
        assert_eq!(
            result.exact_path(),
            exact_paths[i],
            "{label}: residue/exact verdict of op {i}"
        );
    }
    // Fault-free traffic: the residue check never fires sequentially,
    // and therefore must not fire sharded either (no exact-path ops).
    assert_eq!(residue_mismatches, 0, "{label}: sequential residue");
    assert_eq!(
        results.iter().filter(|r| r.exact_path()).count(),
        0,
        "{label}: sharded residue"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_pools_match_sequential_execution(seed in any::<u64>()) {
        let ops = mixed_stream(seed, 999);
        for shards in [1usize, 2, 7] {
            let results = run_through_pool(&ops, shards);
            assert_bit_identical(&ops, &results, &format!("seed {seed}, {shards} shards"));
        }
    }
}

#[test]
fn sliced_backend_is_bit_identical_to_scalar_through_the_pool() {
    // The whole `--backend sliced` contract at the serving layer: same
    // sums, same stall flags, same exact-path verdicts as the scalar
    // loop, request by request.
    let ops = mixed_stream(0xBAC_7E57, 999);
    for shards in [1usize, 3] {
        let scalar = run_through_pool_on(&ops, shards, Backend::Scalar);
        let sliced = run_through_pool_on(&ops, shards, Backend::Sliced);
        assert_eq!(scalar, sliced, "{shards} shards");
        assert_bit_identical(&ops, &sliced, &format!("sliced, {shards} shards"));
    }
}

#[test]
fn full_server_with_concurrent_clients_matches_sequential_execution() {
    let ops = mixed_stream(0x5EED, 1_400);
    for shards in [1usize, 2, 7] {
        let mut server = VlsaServer::start(ServerConfig {
            shards,
            shard: shard_config(),
            ..ServerConfig::default()
        })
        .expect("start");
        let addr = server.addr();
        let chunks: Vec<Vec<(u64, u64)>> = ops.chunks(53).map(<[_]>::to_vec).collect();
        let clients = 4usize;
        // Each client thread owns the request ids congruent to its
        // index mod `clients`, so all requests are in flight from
        // several sockets at once and interleave across shards.
        let mut workers = Vec::new();
        for c in 0..clients {
            let my_chunks: Vec<(usize, Vec<(u64, u64)>)> = chunks
                .iter()
                .enumerate()
                .filter(|(id, _)| id % clients == c)
                .map(|(id, chunk)| (id, chunk.clone()))
                .collect();
            workers.push(std::thread::spawn(move || {
                let mut client = VlsaClient::connect(addr).expect("connect");
                let mut answers = Vec::new();
                for (id, chunk) in my_chunks {
                    // Capacity is sized so nominal load never sheds,
                    // but retry anyway: a Busy is a valid answer, and
                    // retrying must converge on the identical result.
                    loop {
                        match client
                            .request(id as u64, NBITS as u8, &chunk)
                            .expect("request")
                        {
                            Response::Sums(sums) => {
                                answers.push((id, sums.results));
                                break;
                            }
                            Response::Busy(_) => std::thread::yield_now(),
                            other => panic!("unexpected response: {other:?}"),
                        }
                    }
                }
                answers
            }));
        }
        let mut by_id: Vec<Option<Vec<OpResult>>> = vec![None; chunks.len()];
        for worker in workers {
            for (id, results) in worker.join().expect("client thread") {
                by_id[id] = Some(results);
            }
        }
        let results: Vec<OpResult> = by_id
            .into_iter()
            .flat_map(|r| r.expect("every request answered"))
            .collect();
        assert_bit_identical(&ops, &results, &format!("server, {shards} shards"));
        let totals = server.pool().totals();
        assert_eq!(totals.ops, ops.len() as u64);
        assert_eq!(
            server
                .stats()
                .protocol_errors
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
        server.shutdown();
    }
}
