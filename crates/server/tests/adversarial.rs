//! Adversarial wire-protocol input: truncated frames, oversized length
//! prefixes, unknown frame types, and mid-batch disconnects must be
//! answered with typed error frames (where the protocol allows an
//! answer) and a clean single-connection teardown — never a panic, a
//! hang, or a silent drop — while other connections keep being served.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use vlsa_server::protocol::{self, MAX_FRAME_LEN};
use vlsa_server::{
    read_frame, Frame, ProtocolError, ReadError, Response, ServerConfig, VlsaClient, VlsaServer,
};

fn start_server(shards: usize) -> VlsaServer {
    VlsaServer::start(ServerConfig {
        shards,
        read_timeout: Duration::from_millis(50),
        ..ServerConfig::default()
    })
    .expect("start")
}

/// Sends raw bytes and reads the server's answer, if any.
fn send_raw(server: &VlsaServer, bytes: &[u8]) -> Result<Frame, ReadError> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(bytes).expect("write");
    stream.flush().expect("flush");
    read_frame(&mut stream)
}

/// The server must still answer real requests on a *different*
/// connection — one poisoned connection cannot take down a shard.
fn assert_still_serving(server: &VlsaServer) {
    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    match client.add_batch(16, &[(40, 2)]).expect("request") {
        Response::Sums(sums) => assert_eq!(sums.results[0].sum, 42),
        other => panic!("no load, no faults: {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_gets_a_typed_error_before_any_allocation() {
    let mut server = start_server(2);
    // Length prefix claims 256 MiB; the server must reject it from the
    // prefix alone (code 2) without ever trying to read or allocate it.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(256u32 << 20).to_le_bytes());
    bytes.push(protocol::TYPE_ADD_BATCH);
    match send_raw(&server, &bytes).expect("typed error frame") {
        Frame::Error(e) => assert_eq!(e.code, ProtocolError::OversizedFrame { len: 0 }.code()),
        other => panic!("expected error frame, got {other:?}"),
    }
    assert_still_serving(&server);
    assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 1);
    server.shutdown();
}

#[test]
fn length_prefix_just_over_the_limit_is_rejected_and_at_the_limit_is_not() {
    let mut server = start_server(1);
    let over = (MAX_FRAME_LEN + 1).to_le_bytes();
    match send_raw(&server, &over).expect("typed error frame") {
        Frame::Error(e) => assert_eq!(e.code, 2),
        other => panic!("expected error frame, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn unknown_frame_type_gets_a_typed_error() {
    let mut server = start_server(1);
    let bytes = [1u8, 0, 0, 0, 0x7F]; // len=1, type=0x7F
    match send_raw(&server, &bytes).expect("typed error frame") {
        Frame::Error(e) => {
            assert_eq!(e.code, ProtocolError::UnknownFrameType(0x7F).code());
            assert!(e.detail.contains("0x7F"), "detail: {}", e.detail);
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn truncated_body_gets_a_malformed_error() {
    let mut server = start_server(1);
    // Claims an AddBatch with a body, but the body is three bytes of
    // nothing much — far short of the header an AddBatch needs.
    let bytes = [4u8, 0, 0, 0, protocol::TYPE_ADD_BATCH, 1, 2, 3];
    match send_raw(&server, &bytes).expect("typed error frame") {
        Frame::Error(e) => assert_eq!(e.code, ProtocolError::Malformed(String::new()).code()),
        other => panic!("expected error frame, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn op_count_exceeding_the_batch_cap_is_rejected() {
    let mut server = start_server(1);
    // A syntactically valid AddBatch header whose op count exceeds
    // MAX_BATCH_OPS; the body is absent, but the count check fires
    // first and is the error the client should see.
    let mut body = vec![protocol::TYPE_ADD_BATCH];
    body.extend_from_slice(&7u64.to_le_bytes()); // request id
    body.push(32); // nbits
    body.extend_from_slice(&(protocol::MAX_BATCH_OPS + 1).to_le_bytes());
    let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(&body);
    match send_raw(&server, &bytes).expect("typed error frame") {
        Frame::Error(e) => assert_eq!(e.code, ProtocolError::OversizedBatch { count: 0 }.code()),
        other => panic!("expected error frame, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn zero_and_oversized_widths_are_rejected() {
    let mut server = start_server(1);
    for nbits in [0u8, 65] {
        let mut body = vec![protocol::TYPE_ADD_BATCH];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(nbits);
        body.extend_from_slice(&0u32.to_le_bytes());
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        match send_raw(&server, &bytes).expect("typed error frame") {
            Frame::Error(e) => assert_eq!(e.code, ProtocolError::BadWidth { nbits }.code()),
            other => panic!("expected error frame, got {other:?}"),
        }
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_tears_down_cleanly_and_others_keep_serving() {
    let mut server = start_server(2);
    // Open a long-lived healthy connection first, then poison several
    // others by hanging up mid-frame.
    let mut healthy = VlsaClient::connect(server.addr()).expect("connect");
    for _ in 0..3 {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // A correct length prefix promising 100 more bytes…
        stream.write_all(&[100, 0, 0, 0]).expect("write");
        stream
            .write_all(&[protocol::TYPE_ADD_BATCH, 1, 2, 3])
            .expect("write");
        drop(stream); // …never delivered.
    }
    // Give the poisoned connections time to hit their read error.
    std::thread::sleep(Duration::from_millis(100));
    match healthy.add_batch(32, &[(5, 6)]).expect("request") {
        Response::Sums(sums) => assert_eq!(sums.results[0].sum, 11),
        other => panic!("no load, no faults: {other:?}"),
    }
    // Mid-frame disconnects are transport failures, not protocol
    // errors: nothing to answer, nobody to answer it to.
    assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn a_client_sending_a_response_frame_is_told_off_and_disconnected() {
    let mut server = start_server(1);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // A well-formed SumBatch — which only servers may send.
    let frame = Frame::SumBatch(vlsa_server::SumBatch {
        request_id: 1,
        shard: 0,
        results: Vec::new(),
        timing: None,
        unknown: Vec::new(),
    });
    let bytes = frame.encode();
    stream.write_all(&bytes).expect("write");
    match read_frame(&mut stream).expect("typed error frame") {
        Frame::Error(e) => {
            assert_eq!(
                e.code,
                ProtocolError::UnexpectedFrame { frame_type: 0 }.code()
            );
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server hangs up after the error frame.
    let mut rest = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("timeout");
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn disconnect_between_requests_is_a_clean_eof_not_an_error() {
    let mut server = start_server(1);
    {
        let mut client = VlsaClient::connect(server.addr()).expect("connect");
        match client.add_batch(8, &[(1, 2)]).expect("request") {
            Response::Sums(sums) => assert_eq!(sums.results[0].sum, 3),
            other => panic!("no load, no faults: {other:?}"),
        }
    } // hang up politely between frames
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 0);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn shutdown_answers_inflight_requests_instead_of_dropping_them() {
    let mut server = start_server(2);
    let addr = server.addr();
    // Park a slow stream of requests from another thread while the
    // server shuts down; every submitted request must get *an* answer
    // (sums or a typed shutdown error), never a dropped socket with no
    // frame — until the connection is torn down by the join.
    let worker = std::thread::spawn(move || {
        let mut client = VlsaClient::connect(addr).expect("connect");
        let mut answered = 0u32;
        for i in 0..200u64 {
            match client.request(i, 32, &[(i, 1)]) {
                Ok(Response::Sums(sums)) => {
                    assert_eq!(sums.results[0].sum, i + 1);
                    answered += 1;
                }
                Ok(Response::Busy(_) | Response::Retryable(_)) => {}
                Ok(other) => panic!("unexpected response: {other:?}"),
                // Typed shutdown error or disconnect: the server is
                // going away; both are clean ends.
                Err(_) => break,
            }
        }
        answered
    });
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let answered = worker.join().expect("client thread");
    assert!(answered > 0, "some requests must have been answered");
}

#[test]
fn an_unanswerable_byte_salad_cannot_bring_down_the_server() {
    let mut server = start_server(2);
    for chunk in [
        &[0u8, 0, 0, 0][..],              // zero-length frame
        &[255, 255, 255, 255][..],        // u32::MAX length prefix
        &[5, 0, 0, 0, 0xEE, 1, 2, 3][..], // error frame from a client, truncated
        &[1, 0][..],                      // not even a full prefix
    ] {
        let _ = send_raw(&server, chunk);
    }
    assert_still_serving(&server);
    server.shutdown();
}
