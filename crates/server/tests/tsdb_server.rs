//! End-to-end metrics history: a served run must be reconstructable
//! from the embedded time-series store — the `increase()` of the ops
//! counter over the whole run must equal the client-side accounting of
//! delivered ops, over the same `/query` endpoint an operator would
//! curl — and the recording rules must have materialized derived
//! series while the run was live.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use vlsa_server::{Response, ServerConfig, ShardConfig, VlsaClient, VlsaServer};
use vlsa_telemetry::{Json, ScopedRecorder};
use vlsa_tsdb::{eval_range, Expr};

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    (
        head.lines().next().expect("status line").to_string(),
        body.to_string(),
    )
}

#[test]
fn a_live_run_is_reconstructable_from_the_store() {
    // The scope must precede the server: shard workers resolve their
    // counters at spawn, and the ingest thread re-resolves per tick.
    let scope = ScopedRecorder::install();
    // A slow modeled device (10 µs/cycle) so this small run spans a
    // measurable stretch of modeled time — the axis the self-scraper
    // samples on.
    let mut server = VlsaServer::start(ServerConfig {
        shards: 2,
        shard: ShardConfig {
            cycle_ns: 10_000,
            ..ShardConfig::default()
        },
        metrics: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let scrape = server.metrics_addr().expect("metrics enabled");

    let mut client = VlsaClient::connect(server.addr()).expect("connect");
    let mut delivered_ops = 0u64;
    for r in 0..60u64 {
        let ops: Vec<(u64, u64)> = (0..8).map(|i| (r + i, i * 3 + 1)).collect();
        match client.request_traced(r, 64, &ops, None).expect("request") {
            Response::Sums(sums) => delivered_ops += sums.results.len() as u64,
            other => panic!("no load, no shed: {other:?}"),
        }
        // Give the self-scraper wall time to take mid-run snapshots.
        if r % 20 == 19 {
            std::thread::sleep(std::time::Duration::from_millis(40));
        }
    }
    assert_eq!(delivered_ops, 60 * 8);

    // Wait (bounded) for at least one post-traffic ingest tick so the
    // live HTTP query below sees history.
    let db = std::sync::Arc::clone(server.tsdb().expect("tsdb on by default with metrics"));
    for _ in 0..100 {
        if db.last_ingest_us() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(db.last_ingest_us() > 0, "the self-scraper never ticked");

    // The operator's view: a rate() over the whole run via /query must
    // be non-empty and well-formed.
    let (status, body) = http_get(scrape, "/query?expr=increase(vlsa.server.ops%5B10m%5D)");
    assert!(status.contains("200"), "{status}: {body}");
    let doc = Json::parse(&body).expect("valid /query JSON");
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 1, "one ops series: {body}");
    let points = results[0]
        .get("points")
        .and_then(Json::as_arr)
        .expect("points");
    assert!(!points.is_empty(), "live query returned no points: {body}");

    // /series exposes retention stats with a sane compression ratio.
    let (status, body) = http_get(scrape, "/series");
    assert!(status.contains("200"), "{status}");
    let doc = Json::parse(&body).expect("valid /series JSON");
    let total = doc.get("total").expect("total object");
    assert!(total.get("series").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert!(
        total
            .get("ingest_ticks")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
    );

    // Bad expressions are a client error, not a 500 or a panic.
    let (status, _) = http_get(scrape, "/query?expr=rate(unclosed%5B1s)");
    assert!(status.contains("400"), "{status}");
    let (status, _) = http_get(scrape, "/query");
    assert!(status.contains("400"), "{status}");

    // Shutdown takes the final snapshot; afterwards the accounting must
    // close: increase(ops) over the full run == ops the clients saw
    // delivered. Exactly — both sides count the same integer events.
    server.shutdown();
    let end = db.last_ingest_us();
    let expr = Expr::parse("increase(vlsa.server.ops[1h])").expect("expr");
    let results = eval_range(&db, &expr, end, end, 1).expect("eval");
    assert_eq!(results.len(), 1);
    let got = results[0].points.last().expect("a final point").1;
    assert_eq!(
        got, delivered_ops as f64,
        "store accounting diverged from client accounting"
    );

    // The recording rules ran on ingest: derived series exist as
    // first-class history.
    let names = db.series_names();
    assert!(
        names.iter().any(|n| n == "vlsa.recorded.ops_per_sec"),
        "recorded rule output missing from {names:?}"
    );
    drop(scope);
}
