//! A blocking client for the wire protocol — what `loadgen`, the bench
//! suite, and the integration tests speak.
//!
//! Sockets carry explicit read/write timeouts from the moment they
//! connect: a dead or wedged server surfaces as a typed
//! [`ClientError::Timeout`] instead of hanging the caller forever.
//! Responses whose request id does not match the in-flight request
//! (duplicated replies under chaos, late answers racing a hedge on a
//! reused connection) are skipped, bounded, rather than treated as
//! protocol violations.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::ProtocolError;
use crate::framing::{read_frame, write_frame, ReadError};
use crate::protocol::{AddBatch, Busy, ErrorFrame, Frame, SumBatch, TraceContext};

/// Default socket read/write timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// How many mismatched (stale) response frames a read will skip before
/// giving up on re-synchronizing the stream.
const STALE_SKIP_MAX: usize = 8;

/// The server's answer to a request, from the client's point of view.
/// Every variant is a *delivered verdict* — transport and protocol
/// failures are [`ClientError`]s instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The batch was executed.
    Sums(SumBatch),
    /// The batch was shed under load; retry is allowed.
    Busy(Busy),
    /// The batch was accepted but not executed (its worker died or was
    /// deposed); safe to retry (wire code 9).
    Retryable(ErrorFrame),
    /// The batch outwaited its client-stamped deadline budget and was
    /// shed without executing (wire code 10).
    DeadlineExceeded(ErrorFrame),
}

/// Why a request failed outright (distinct from the non-[`Response::Sums`]
/// responses, which are valid, typed answers).
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent bytes that do not form a valid frame, or could
    /// not be re-synchronized to the in-flight request id.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame (other than the
    /// retryable/deadline codes, which are [`Response`] variants).
    Server(ErrorFrame),
    /// The server closed the connection.
    Disconnected,
    /// The socket timed out: no response within the read timeout. The
    /// request may or may not have executed — retry with a fresh
    /// attempt (or hedge) rather than assuming either way.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error {}: {}", e.code, e.detail),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

/// A blocking connection speaking one request at a time.
#[derive(Debug)]
pub struct VlsaClient {
    stream: TcpStream,
    next_request_id: u64,
}

impl VlsaClient {
    /// Connects to a server with [`DEFAULT_TIMEOUT`] read/write
    /// timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<VlsaClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
        Ok(VlsaClient {
            stream,
            next_request_id: 0,
        })
    }

    /// Seeds the auto-incrementing request id — the shard routing key.
    /// A client seeded with `k` and stepping by the shard count pins
    /// all its requests to one shard; the default increment of 1
    /// round-robins.
    pub fn with_request_id_base(mut self, base: u64) -> VlsaClient {
        self.next_request_id = base;
        self
    }

    /// Overrides the socket read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one batch under an auto-assigned request id and waits for
    /// the answer.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a `Busy` shed is an `Ok` response, not an
    /// error.
    pub fn add_batch(&mut self, nbits: u8, ops: &[(u64, u64)]) -> Result<Response, ClientError> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        self.request(id, nbits, ops)
    }

    /// Sends one batch under an explicit request id and waits for the
    /// answer.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a `Busy` shed is an `Ok` response, not an
    /// error.
    pub fn request(
        &mut self,
        request_id: u64,
        nbits: u8,
        ops: &[(u64, u64)],
    ) -> Result<Response, ClientError> {
        self.request_traced(request_id, nbits, ops, None)
    }

    /// [`VlsaClient::request`] with an optional trace context. A
    /// sampled context makes the server record the request into its
    /// trace rings and echo a `ServerTiming` extension on the
    /// response (`sums.timing`), so the caller can decompose its
    /// observed round-trip into server phases + network share.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a `Busy` shed is an `Ok` response, not an
    /// error.
    pub fn request_traced(
        &mut self,
        request_id: u64,
        nbits: u8,
        ops: &[(u64, u64)],
        trace: Option<TraceContext>,
    ) -> Result<Response, ClientError> {
        let mut request = AddBatch::new(request_id, nbits, ops.to_vec());
        if let Some(tc) = trace {
            request = request.with_trace(tc);
        }
        self.send_request(&request)?;
        self.read_response(request_id)
    }

    /// Sends a fully-built request (deadline, hedge, trace, and all)
    /// without waiting for the answer. Pair with
    /// [`VlsaClient::read_response`]; the retry layer splits the two to
    /// hedge across connections.
    ///
    /// # Errors
    ///
    /// Transport failures (including a write [`ClientError::Timeout`]).
    pub fn send_request(&mut self, request: &AddBatch) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Frame::AddBatch(request.clone()))?;
        Ok(())
    }

    /// Chaos hook: writes a length prefix promising a body that never
    /// arrives, then drops the connection — a torn write, the way a
    /// failing network produces one. The server must tear this
    /// connection down cleanly without poisoning others.
    pub fn tear(mut self) {
        use std::io::Write;
        let _ = self
            .stream
            .write_all(&[64, 0, 0, 0, crate::protocol::TYPE_ADD_BATCH, 1, 2]);
        let _ = self.stream.flush();
    }

    /// Reads the response for `request_id`, skipping up to a bounded
    /// number of stale frames for other ids (duplicated replies, late
    /// answers racing a hedge).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read_response(&mut self, request_id: u64) -> Result<Response, ClientError> {
        for _ in 0..=STALE_SKIP_MAX {
            match read_frame(&mut self.stream) {
                Ok(Frame::SumBatch(sums)) if sums.request_id == request_id => {
                    return Ok(Response::Sums(sums))
                }
                Ok(Frame::Busy(busy)) if busy.request_id == request_id => {
                    return Ok(Response::Busy(busy))
                }
                // A response to some other request: a duplicate of an
                // earlier answer or a late reply that lost its race.
                // Skip it and keep reading.
                Ok(Frame::SumBatch(_) | Frame::Busy(_)) => continue,
                Ok(Frame::Error(e)) if e.code == ProtocolError::CODE_RETRYABLE => {
                    return Ok(Response::Retryable(e))
                }
                Ok(Frame::Error(e)) if e.code == ProtocolError::CODE_DEADLINE_EXCEEDED => {
                    return Ok(Response::DeadlineExceeded(e))
                }
                Ok(Frame::Error(e)) => return Err(ClientError::Server(e)),
                Ok(other) => {
                    return Err(ClientError::Protocol(ProtocolError::UnexpectedFrame {
                        frame_type: other.frame_type(),
                    }))
                }
                Err(ReadError::Eof) => return Err(ClientError::Disconnected),
                Err(ReadError::IdleTimeout | ReadError::SlowFrame) => {
                    return Err(ClientError::Timeout)
                }
                Err(ReadError::Io(e)) => return Err(e.into()),
                Err(ReadError::Protocol(e)) => return Err(ClientError::Protocol(e)),
            }
        }
        Err(ClientError::Protocol(ProtocolError::Malformed(format!(
            "no response for request {request_id} within {STALE_SKIP_MAX} stale frames"
        ))))
    }
}
