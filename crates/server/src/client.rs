//! A blocking client for the wire protocol — what `loadgen`, the bench
//! suite, and the integration tests speak.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ProtocolError;
use crate::framing::{read_frame, write_frame, ReadError};
use crate::protocol::{AddBatch, Busy, ErrorFrame, Frame, SumBatch, TraceContext};

/// The server's answer to a request, from the client's point of view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The batch was executed.
    Sums(SumBatch),
    /// The batch was shed under load; retry is allowed.
    Busy(Busy),
}

/// Why a request failed outright (distinct from [`Response::Busy`],
/// which is a valid, retryable answer).
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent bytes that do not form a valid frame, or a frame
    /// that makes no sense here (e.g. a response to a different
    /// request id).
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server(ErrorFrame),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error {}: {}", e.code, e.detail),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking connection speaking one request at a time.
#[derive(Debug)]
pub struct VlsaClient {
    stream: TcpStream,
    next_request_id: u64,
}

impl VlsaClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<VlsaClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(VlsaClient {
            stream,
            next_request_id: 0,
        })
    }

    /// Seeds the auto-incrementing request id — the shard routing key.
    /// A client seeded with `k` and stepping by the shard count pins
    /// all its requests to one shard; the default increment of 1
    /// round-robins.
    pub fn with_request_id_base(mut self, base: u64) -> VlsaClient {
        self.next_request_id = base;
        self
    }

    /// Sends one batch under an auto-assigned request id and waits for
    /// the answer.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a `Busy` shed is an `Ok` response, not an
    /// error.
    pub fn add_batch(&mut self, nbits: u8, ops: &[(u64, u64)]) -> Result<Response, ClientError> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        self.request(id, nbits, ops)
    }

    /// Sends one batch under an explicit request id and waits for the
    /// answer.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a `Busy` shed is an `Ok` response, not an
    /// error.
    pub fn request(
        &mut self,
        request_id: u64,
        nbits: u8,
        ops: &[(u64, u64)],
    ) -> Result<Response, ClientError> {
        self.request_traced(request_id, nbits, ops, None)
    }

    /// [`VlsaClient::request`] with an optional trace context. A
    /// sampled context makes the server record the request into its
    /// trace rings and echo a `ServerTiming` extension on the
    /// response (`sums.timing`), so the caller can decompose its
    /// observed round-trip into server phases + network share.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a `Busy` shed is an `Ok` response, not an
    /// error.
    pub fn request_traced(
        &mut self,
        request_id: u64,
        nbits: u8,
        ops: &[(u64, u64)],
        trace: Option<TraceContext>,
    ) -> Result<Response, ClientError> {
        write_frame(
            &mut self.stream,
            &Frame::AddBatch(AddBatch {
                request_id,
                nbits,
                ops: ops.to_vec(),
                trace,
            }),
        )?;
        match read_frame(&mut self.stream) {
            Ok(Frame::SumBatch(sums)) if sums.request_id == request_id => Ok(Response::Sums(sums)),
            Ok(Frame::Busy(busy)) if busy.request_id == request_id => Ok(Response::Busy(busy)),
            Ok(Frame::Error(e)) => Err(ClientError::Server(e)),
            Ok(other) => Err(ClientError::Protocol(ProtocolError::UnexpectedFrame {
                frame_type: other.frame_type(),
            })),
            Err(ReadError::Eof) => Err(ClientError::Disconnected),
            Err(ReadError::IdleTimeout) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "response timed out",
            ))),
            Err(ReadError::Io(e)) => Err(ClientError::Io(e)),
            Err(ReadError::Protocol(e)) => Err(ClientError::Protocol(e)),
        }
    }
}
