//! The process-wide modeled clock.
//!
//! Shard workers account time as `total_cycles × cycle_ns` — the same
//! deterministic device-time base the SLO engine runs on. This module
//! folds those per-shard clocks into one monotonic process clock (a
//! `fetch_max` per batch, so it never goes backwards even though
//! shards progress unevenly), giving every consumer of "now" — the
//! wide-event rate limiter, the time-series self-scraper — a time base
//! that is deterministic under test and consistent across the
//! observability stack.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic modeled time in nanoseconds, folded across shards.
#[derive(Debug, Default)]
pub struct ModeledClock {
    ns: AtomicU64,
}

impl ModeledClock {
    /// A clock at modeled time zero.
    pub fn new() -> ModeledClock {
        ModeledClock::default()
    }

    /// Fold a shard's modeled time in; the clock only moves forward.
    pub fn advance_to(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Current modeled time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Current modeled time, microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_ns() / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_monotonically_across_unordered_advances() {
        let clock = ModeledClock::new();
        clock.advance_to(5_000);
        clock.advance_to(3_000); // a slower shard reports older time
        assert_eq!(clock.now_ns(), 5_000);
        clock.advance_to(9_500);
        assert_eq!(clock.now_us(), 9);
    }
}
