//! Canonical wide events: one structured JSON-lines record per batch.
//!
//! Instead of reconstructing "what happened to that batch" from a dozen
//! counters, each flushed batch emits a single wide record carrying
//! everything known about it — shard, sizes, timing phases, adder
//! class, error-recovery counts, the trace id when sampled, and the SLO
//! verdict at emission time. Records are rate-limited per *modeled*
//! second (the same [`ModeledClock`] the SLO engine and the tsdb
//! self-scraper run on, so rate behavior is deterministic under test),
//! ring-buffered for the `/events?n=` endpoint, and optionally appended
//! to a JSONL file. Only high-volume `batch` records are subject to the
//! limiter — rare lifecycle records (`restart`) always land, because
//! dropping the one event that explains an incident would defeat the
//! log's purpose.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vlsa_telemetry::names::server as metric;
use vlsa_telemetry::Json;

use crate::clock::ModeledClock;

/// Retention and rate-limit policy for the wide-event log.
#[derive(Clone, Copy, Debug)]
pub struct EventLogConfig {
    /// Ring capacity in events; older events are evicted.
    pub capacity: usize,
    /// Maximum `batch` events accepted per modeled second; the rest
    /// are counted as dropped (`vlsa.server.events_dropped`), never
    /// blocked on. Lifecycle events (`restart`) bypass the limiter.
    pub per_sec: u32,
}

impl Default for EventLogConfig {
    fn default() -> EventLogConfig {
        EventLogConfig {
            capacity: 512,
            per_sec: 200,
        }
    }
}

/// One canonical wide event: one per flushed batch (`kind: "batch"`,
/// recorded by the shard worker), plus one per supervisor restart
/// (`kind: "restart"`, recorded by the supervisor with the drained-job
/// count) — so a worker loss is attributable from the same stream as
/// the traffic it disturbed.
#[derive(Clone, Debug)]
pub struct WideEvent {
    /// What happened: `batch` or `restart`.
    pub kind: &'static str,
    /// Shard that ran the batch.
    pub shard: u16,
    /// Jobs (requests) in the batch.
    pub requests: u32,
    /// Operand pairs in the batch.
    pub ops: u64,
    /// Modeled cycles the batch cost.
    pub cycles: u64,
    /// Batch-formation wait before the first job was picked up, µs.
    pub wait_us: u32,
    /// Pipeline compute time for the whole batch, µs.
    pub service_us: u32,
    /// Modeled device pacing after compute, µs.
    pub pace_us: u32,
    /// Adder class that served the batch: `speculative` or `exact`.
    pub adder: &'static str,
    /// Ops whose `ER` detector fired (paid the recovery bubble).
    pub stalls: u64,
    /// Ops delivered by the exact path.
    pub exact_ops: u64,
    /// Residue mismatches caught in this batch.
    pub residue_mismatches: u64,
    /// Whether the shard is latched into degraded (exact-only) mode.
    pub degraded: bool,
    /// Trace id of the first sampled job in the batch, if any.
    pub trace_id: Option<u64>,
    /// Page-severity SLO rules firing when the batch finished.
    pub slo_pages_firing: u64,
    /// Warn-severity SLO rules firing when the batch finished.
    pub slo_warns_firing: u64,
    /// The worker generation that produced the event (bumped by each
    /// supervisor restart; a `restart` event carries the *new*
    /// generation).
    pub generation: u64,
    /// Requests shed past their deadline budget at this batch's
    /// formation.
    pub deadline_exceeded: u64,
    /// Queued requests a `restart` event evacuated into `Retryable`
    /// answers (0 for `batch` events).
    pub retryable_drained: u64,
}

impl WideEvent {
    /// The event as a JSON object (one line of the JSONL stream).
    pub fn to_json(&self, ts_us: u64) -> Json {
        let mut doc = Json::obj()
            .set("ts_us", ts_us)
            .set("kind", self.kind)
            .set("shard", u64::from(self.shard))
            .set("requests", u64::from(self.requests))
            .set("ops", self.ops)
            .set("cycles", self.cycles)
            .set("wait_us", u64::from(self.wait_us))
            .set("service_us", u64::from(self.service_us))
            .set("pace_us", u64::from(self.pace_us))
            .set("adder", self.adder)
            .set("stalls", self.stalls)
            .set("exact_ops", self.exact_ops)
            .set("residue_mismatches", self.residue_mismatches)
            .set("degraded", self.degraded)
            .set("slo_pages_firing", self.slo_pages_firing)
            .set("slo_warns_firing", self.slo_warns_firing)
            .set("generation", self.generation)
            .set("deadline_exceeded", self.deadline_exceeded)
            .set("retryable_drained", self.retryable_drained);
        if let Some(id) = self.trace_id {
            doc = doc.set("trace_id", id);
        }
        doc
    }
}

/// Ring state behind one mutex: emission is per *batch*, not per op, so
/// a short critical section is far from the hot path.
#[derive(Debug)]
struct Ring {
    lines: VecDeque<String>,
    window_sec: u64,
    window_count: u32,
    file: Option<std::io::BufWriter<std::fs::File>>,
}

/// The per-process wide-event log.
#[derive(Debug)]
pub struct EventLog {
    config: EventLogConfig,
    clock: Arc<ModeledClock>,
    ring: Mutex<Ring>,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

impl EventLog {
    /// An event log with the given policy, ring-only, timed by its own
    /// modeled clock (which stays at zero unless someone advances it —
    /// deterministic by construction; the server shares the pool's
    /// clock via [`EventLog::with_clock`]).
    pub fn new(config: EventLogConfig) -> EventLog {
        EventLog::with_clock(config, Arc::new(ModeledClock::new()))
    }

    /// An event log timed by a shared modeled clock (the server passes
    /// the shard pool's, advanced by every worker batch).
    pub fn with_clock(config: EventLogConfig, clock: Arc<ModeledClock>) -> EventLog {
        EventLog {
            config,
            clock,
            ring: Mutex::new(Ring {
                lines: VecDeque::with_capacity(config.capacity),
                window_sec: 0,
                window_count: 0,
                file: None,
            }),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Additionally appends every accepted event to a JSONL file
    /// (truncated on open) — `serve --events-file`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn with_file(config: EventLogConfig, path: &Path) -> std::io::Result<EventLog> {
        EventLog::with_clock_and_file(config, Arc::new(ModeledClock::new()), path)
    }

    /// Shared clock plus a JSONL file sink.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn with_clock_and_file(
        config: EventLogConfig,
        clock: Arc<ModeledClock>,
        path: &Path,
    ) -> std::io::Result<EventLog> {
        let log = EventLog::with_clock(config, clock);
        let file = std::io::BufWriter::new(std::fs::File::create(path)?);
        log.ring.lock().expect("event ring lock").file = Some(file);
        Ok(log)
    }

    /// The clock this log stamps and rate-limits with.
    pub fn clock(&self) -> &Arc<ModeledClock> {
        &self.clock
    }

    /// Records one wide event. `batch` events are subject to the
    /// per-modeled-second rate limit; lifecycle events bypass it.
    /// Returns whether the event was accepted.
    pub fn emit(&self, event: &WideEvent) -> bool {
        let ts_us = self.clock.now_us();
        let sec = ts_us / 1_000_000;
        let mut ring = self.ring.lock().expect("event ring lock");
        if ring.window_sec != sec {
            ring.window_sec = sec;
            ring.window_count = 0;
        }
        let limited = event.kind == "batch";
        if limited && ring.window_count >= self.config.per_sec {
            drop(ring);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if vlsa_telemetry::is_enabled() {
                vlsa_telemetry::recorder()
                    .counter(metric::EVENTS_DROPPED)
                    .incr();
            }
            return false;
        }
        if limited {
            ring.window_count += 1;
        }
        let line = event.to_json(ts_us).to_string();
        if ring.lines.len() == self.config.capacity {
            ring.lines.pop_front();
        }
        if let Some(file) = ring.file.as_mut() {
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
        ring.lines.push_back(line);
        drop(ring);
        self.emitted.fetch_add(1, Ordering::Relaxed);
        if vlsa_telemetry::is_enabled() {
            vlsa_telemetry::recorder()
                .counter(metric::EVENTS_EMITTED)
                .incr();
        }
        true
    }

    /// The newest `n` events, oldest first, as a JSONL document.
    pub fn last_jsonl(&self, n: usize) -> String {
        let ring = self.ring.lock().expect("event ring lock");
        let start = ring.lines.len().saturating_sub(n);
        let mut out = String::new();
        for line in ring.lines.iter().skip(start) {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Events accepted into the ring since startup.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events rejected by the rate limiter since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(shard: u16, ops: u64) -> WideEvent {
        WideEvent {
            kind: "batch",
            shard,
            requests: 1,
            ops,
            cycles: ops + 1,
            wait_us: 5,
            service_us: 10,
            pace_us: 2,
            adder: "speculative",
            stalls: 1,
            exact_ops: 0,
            residue_mismatches: 0,
            degraded: false,
            trace_id: None,
            slo_pages_firing: 0,
            slo_warns_firing: 0,
            generation: 0,
            deadline_exceeded: 0,
            retryable_drained: 0,
        }
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let log = EventLog::new(EventLogConfig {
            capacity: 3,
            per_sec: 1_000,
        });
        for i in 0..5u64 {
            assert!(log.emit(&event(0, i)));
        }
        assert_eq!(log.emitted(), 5);
        let jsonl = log.last_jsonl(10);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        // Oldest-first within the kept window: ops 2, 3, 4.
        for (line, expected_ops) in lines.iter().zip([2u64, 3, 4]) {
            let doc = Json::parse(line).expect("valid JSON line");
            assert_eq!(doc.get("ops").and_then(Json::as_u64), Some(expected_ops));
        }
        // last_jsonl(1) returns only the newest.
        let tail = log.last_jsonl(1);
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("\"ops\":4"), "{tail}");
    }

    #[test]
    fn rate_limit_drops_instead_of_blocking() {
        let log = EventLog::new(EventLogConfig {
            capacity: 100,
            per_sec: 10,
        });
        let mut accepted = 0;
        for i in 0..50u64 {
            if log.emit(&event(0, i)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 10, "exactly the per-second budget");
        assert_eq!(log.dropped(), 40);
        assert_eq!(log.last_jsonl(100).lines().count(), 10);
    }

    #[test]
    fn rate_limit_windows_follow_the_modeled_clock() {
        // The limiter is deterministic under an injected clock: the
        // budget refills exactly when *modeled* time crosses a second
        // boundary, regardless of wall time.
        let clock = Arc::new(ModeledClock::new());
        let log = EventLog::with_clock(
            EventLogConfig {
                capacity: 100,
                per_sec: 2,
            },
            Arc::clone(&clock),
        );
        assert!(log.emit(&event(0, 1)));
        assert!(log.emit(&event(0, 2)));
        assert!(!log.emit(&event(0, 3)), "budget spent at modeled t=0");
        // 999.999ms in: still the same modeled second.
        clock.advance_to(999_999_000);
        assert!(!log.emit(&event(0, 4)));
        // Crossing into modeled second 1 refills the budget.
        clock.advance_to(1_000_000_000);
        assert!(log.emit(&event(0, 5)));
        assert_eq!(log.dropped(), 2);
        // Accepted events are stamped with modeled time.
        let tail = log.last_jsonl(1);
        let doc = Json::parse(tail.trim()).expect("valid JSON line");
        assert_eq!(doc.get("ts_us").and_then(Json::as_u64), Some(1_000_000));
    }

    #[test]
    fn restart_events_bypass_the_rate_limit() {
        let log = EventLog::new(EventLogConfig {
            capacity: 100,
            per_sec: 1,
        });
        assert!(log.emit(&event(0, 1)));
        assert!(!log.emit(&event(0, 2)), "batch budget exhausted");
        let mut restart = event(0, 0);
        restart.kind = "restart";
        restart.retryable_drained = 3;
        assert!(
            log.emit(&restart),
            "lifecycle events must land even when batches are shedding"
        );
        // And they don't consume the batch budget either.
        assert!(!log.emit(&event(0, 3)));
        assert_eq!(log.emitted(), 2);
    }

    #[test]
    fn wide_event_serializes_every_field() {
        let mut e = event(3, 7);
        e.trace_id = Some(0xFACE);
        e.slo_pages_firing = 1;
        e.generation = 2;
        e.deadline_exceeded = 4;
        e.retryable_drained = 6;
        let doc = e.to_json(1234);
        let parsed = Json::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(parsed.get("ts_us").and_then(Json::as_u64), Some(1234));
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("batch"));
        assert_eq!(parsed.get("shard").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("generation").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("deadline_exceeded").and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            parsed.get("retryable_drained").and_then(Json::as_u64),
            Some(6)
        );
        assert_eq!(parsed.get("ops").and_then(Json::as_u64), Some(7));
        assert_eq!(
            parsed.get("adder").and_then(Json::as_str),
            Some("speculative")
        );
        assert_eq!(parsed.get("trace_id").and_then(Json::as_u64), Some(0xFACE));
        assert_eq!(
            parsed.get("slo_pages_firing").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(parsed.get("degraded"), Some(&Json::Bool(false)));
    }

    #[test]
    fn file_sink_appends_jsonl() {
        let path =
            std::env::temp_dir().join(format!("vlsa_events_{}_{}.jsonl", std::process::id(), 7));
        let log = EventLog::with_file(EventLogConfig::default(), &path).expect("create file");
        log.emit(&event(1, 11));
        log.emit(&event(2, 22));
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 2);
        assert!(
            text.lines().nth(1).unwrap().contains("\"ops\":22"),
            "{text}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
