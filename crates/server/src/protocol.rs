//! The binary wire protocol: frame types and body encode/decode.
//!
//! Every frame is `[u32 LE length][u8 type][body]`, where `length`
//! counts the type byte plus the body. All multi-byte integers are
//! little-endian. Four frame types exist:
//!
//! | type   | name       | direction       | body |
//! |--------|------------|-----------------|------|
//! | `0x01` | `AddBatch` | client → server | `request_id u64, nbits u8, count u32, count × (a u64, b u64)` |
//! | `0x81` | `SumBatch` | server → client | `request_id u64, shard u16, count u32, count × (sum u64, flags u8)` |
//! | `0xB1` | `Busy`     | server → client | `request_id u64, shard u16, queue_depth u32` |
//! | `0xEE` | `Error`    | server → client | `code u16, detail_len u32, detail utf-8` |
//!
//! Per-op `flags`: bit 0 ([`FLAG_STALLED`]) — the `ER` detector fired
//! and the op paid the recovery bubble; bit 1 ([`FLAG_EXACT`]) — the
//! exact path delivered the sum (escalation or degraded mode).
//!
//! ## Trace-context extension
//!
//! `AddBatch` and `SumBatch` bodies may carry one optional *tagged
//! extension* after the base fields: a tag byte [`EXT_TRACE`] (`0x54`,
//! `'T'`) followed by a fixed payload. On `AddBatch` the payload is a
//! [`TraceContext`] (`trace_id u64, flags u8`) asking the server to
//! sample this request; on `SumBatch` it is a [`ServerTiming`]
//! (`trace_id u64, queue_us/linger_us/service_us/pace_us u32`) echoing
//! the server-side latency decomposition so the client can subtract it
//! from its observed round-trip and see the network/framing share.
//!
//! Negotiation is implicit and backward compatible in both directions:
//! frames without the extension are **byte-identical** to the
//! pre-extension protocol (covered by golden-bytes tests), and the
//! server only attaches timing to responses whose request carried a
//! trace context — an untraced client never receives bytes it cannot
//! parse.
//!
//! Decoding is total: every malformed input maps to a typed
//! [`ProtocolError`], never a panic.

use crate::error::ProtocolError;

/// Hard ceiling on `length`; larger prefixes are rejected before any
/// allocation, so a hostile 4 GiB prefix costs the server nothing.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Hard ceiling on ops per `AddBatch` (64 KiB of operands).
pub const MAX_BATCH_OPS: u32 = 4096;

/// Hard ceiling on the `Error` frame detail string, in bytes.
pub const MAX_ERROR_DETAIL: u32 = 1024;

/// Frame type byte of [`AddBatch`].
pub const TYPE_ADD_BATCH: u8 = 0x01;
/// Frame type byte of [`SumBatch`].
pub const TYPE_SUM_BATCH: u8 = 0x81;
/// Frame type byte of [`Busy`].
pub const TYPE_BUSY: u8 = 0xB1;
/// Frame type byte of [`ErrorFrame`].
pub const TYPE_ERROR: u8 = 0xEE;

/// Per-op flag: the `ER` detector fired (the op stalled one cycle).
pub const FLAG_STALLED: u8 = 0b01;
/// Per-op flag: the exact path delivered the sum.
pub const FLAG_EXACT: u8 = 0b10;

/// Tag byte of the optional trace-context extension (`'T'`).
pub const EXT_TRACE: u8 = 0x54;
/// [`TraceContext`] flag: the client asks the server to sample this
/// request into its trace rings.
pub const FLAG_TRACE_SAMPLED: u8 = 0b1;

/// The optional trace context a client attaches to an [`AddBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-chosen trace id; must be nonzero (0 is the "no trace"
    /// sentinel everywhere downstream).
    pub trace_id: u64,
    /// [`FLAG_TRACE_SAMPLED`]; all other bits are reserved and must be
    /// zero.
    pub flags: u8,
}

impl TraceContext {
    /// A sampled trace context for `trace_id`.
    pub fn sampled(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            flags: FLAG_TRACE_SAMPLED,
        }
    }

    /// Whether the client asked for this request to be sampled.
    pub fn is_sampled(&self) -> bool {
        self.flags & FLAG_TRACE_SAMPLED != 0
    }
}

/// The server-side latency decomposition echoed on a [`SumBatch`] whose
/// request carried a sampled [`TraceContext`]. All durations in
/// microseconds; `write_us` cannot be echoed (the response is still
/// being written), so the client computes the network share as
/// `rtt - (queue + linger + service + pace)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerTiming {
    /// Echo of the request's trace id.
    pub trace_id: u64,
    /// Time in the shard queue before batch formation began.
    pub queue_us: u32,
    /// Time inside the adaptive batcher's forming/linger window.
    pub linger_us: u32,
    /// `ResilientPipeline` compute time for this request.
    pub service_us: u32,
    /// Modeled device pacing the batch waited out.
    pub pace_us: u32,
}

impl ServerTiming {
    /// Total server-side time the extension accounts for, µs.
    pub fn total_us(&self) -> u64 {
        self.queue_us as u64 + self.linger_us as u64 + self.service_us as u64 + self.pace_us as u64
    }
}

/// A client's batch of operand pairs to add at width `nbits`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddBatch {
    /// Client-chosen id, echoed in the response; also the shard routing
    /// key (`request_id % shards`).
    pub request_id: u64,
    /// Adder width in bits (`1..=64`); operands are truncated to it.
    pub nbits: u8,
    /// The operand pairs.
    pub ops: Vec<(u64, u64)>,
    /// Optional trace-context extension; `None` encodes byte-identically
    /// to the pre-extension protocol.
    pub trace: Option<TraceContext>,
}

/// One op's result inside a [`SumBatch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpResult {
    /// The delivered sum, truncated to the request width.
    pub sum: u64,
    /// [`FLAG_STALLED`] | [`FLAG_EXACT`] bits.
    pub flags: u8,
}

impl OpResult {
    /// Whether the `ER` detector fired on this op.
    pub fn stalled(&self) -> bool {
        self.flags & FLAG_STALLED != 0
    }

    /// Whether the exact path delivered this sum.
    pub fn exact_path(&self) -> bool {
        self.flags & FLAG_EXACT != 0
    }
}

/// The server's answer to an [`AddBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumBatch {
    /// Echo of the request id.
    pub request_id: u64,
    /// The shard that executed the batch.
    pub shard: u16,
    /// Per-op results, in request order.
    pub results: Vec<OpResult>,
    /// Optional server-timing extension, attached only when the request
    /// carried a sampled [`TraceContext`]; `None` encodes
    /// byte-identically to the pre-extension protocol.
    pub timing: Option<ServerTiming>,
}

/// Explicit load-shed: the target shard's queue was full. The request
/// was *not* executed; the client may retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Echo of the request id.
    pub request_id: u64,
    /// The shard whose queue was full.
    pub shard: u16,
    /// The queue depth observed at rejection time.
    pub queue_depth: u32,
}

/// A typed error answer; `code` is [`ProtocolError::code`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Stable numeric error code.
    pub code: u16,
    /// Human-readable detail (truncated to [`MAX_ERROR_DETAIL`] bytes
    /// on encode).
    pub detail: String,
}

/// Any frame of the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client request.
    AddBatch(AddBatch),
    /// Server response with results.
    SumBatch(SumBatch),
    /// Server load-shed response.
    Busy(Busy),
    /// Server typed-error response.
    Error(ErrorFrame),
}

impl Frame {
    /// The frame's type byte.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::AddBatch(_) => TYPE_ADD_BATCH,
            Frame::SumBatch(_) => TYPE_SUM_BATCH,
            Frame::Busy(_) => TYPE_BUSY,
            Frame::Error(_) => TYPE_ERROR,
        }
    }

    /// Encodes the full frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::AddBatch(r) => {
                put_u64(&mut body, r.request_id);
                body.push(r.nbits);
                put_u32(&mut body, r.ops.len() as u32);
                for &(a, b) in &r.ops {
                    put_u64(&mut body, a);
                    put_u64(&mut body, b);
                }
                if let Some(trace) = r.trace {
                    body.push(EXT_TRACE);
                    put_u64(&mut body, trace.trace_id);
                    body.push(trace.flags);
                }
            }
            Frame::SumBatch(r) => {
                put_u64(&mut body, r.request_id);
                put_u16(&mut body, r.shard);
                put_u32(&mut body, r.results.len() as u32);
                for op in &r.results {
                    put_u64(&mut body, op.sum);
                    body.push(op.flags);
                }
                if let Some(timing) = r.timing {
                    body.push(EXT_TRACE);
                    put_u64(&mut body, timing.trace_id);
                    put_u32(&mut body, timing.queue_us);
                    put_u32(&mut body, timing.linger_us);
                    put_u32(&mut body, timing.service_us);
                    put_u32(&mut body, timing.pace_us);
                }
            }
            Frame::Busy(r) => {
                put_u64(&mut body, r.request_id);
                put_u16(&mut body, r.shard);
                put_u32(&mut body, r.queue_depth);
            }
            Frame::Error(r) => {
                put_u16(&mut body, r.code);
                let detail = truncate_utf8(&r.detail, MAX_ERROR_DETAIL as usize);
                put_u32(&mut body, detail.len() as u32);
                body.extend_from_slice(detail.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(5 + body.len());
        put_u32(&mut out, 1 + body.len() as u32);
        out.push(self.frame_type());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a frame body (everything after the type byte).
    ///
    /// # Errors
    ///
    /// Returns the [`ProtocolError`] describing exactly what is wrong;
    /// malformed input never panics.
    pub fn decode(frame_type: u8, body: &[u8]) -> Result<Frame, ProtocolError> {
        let mut cur = Cursor { buf: body };
        let frame = match frame_type {
            TYPE_ADD_BATCH => {
                let request_id = cur.u64()?;
                let nbits = cur.u8()?;
                if nbits == 0 || nbits > 64 {
                    return Err(ProtocolError::BadWidth { nbits });
                }
                let count = cur.u32()?;
                if count > MAX_BATCH_OPS {
                    return Err(ProtocolError::OversizedBatch { count });
                }
                let mut ops = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ops.push((cur.u64()?, cur.u64()?));
                }
                let trace = if cur.is_empty() {
                    None
                } else {
                    cur.extension_tag()?;
                    let trace_id = cur.u64()?;
                    let flags = cur.u8()?;
                    if trace_id == 0 {
                        return Err(ProtocolError::BadExtension(
                            "trace_id 0 is the no-trace sentinel".into(),
                        ));
                    }
                    if flags & !FLAG_TRACE_SAMPLED != 0 {
                        return Err(ProtocolError::BadExtension(format!(
                            "reserved trace flag bits set: 0b{flags:08b}"
                        )));
                    }
                    Some(TraceContext { trace_id, flags })
                };
                Frame::AddBatch(AddBatch {
                    request_id,
                    nbits,
                    ops,
                    trace,
                })
            }
            TYPE_SUM_BATCH => {
                let request_id = cur.u64()?;
                let shard = cur.u16()?;
                let count = cur.u32()?;
                if count > MAX_BATCH_OPS {
                    return Err(ProtocolError::OversizedBatch { count });
                }
                let mut results = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    results.push(OpResult {
                        sum: cur.u64()?,
                        flags: cur.u8()?,
                    });
                }
                let timing = if cur.is_empty() {
                    None
                } else {
                    cur.extension_tag()?;
                    let timing = ServerTiming {
                        trace_id: cur.u64()?,
                        queue_us: cur.u32()?,
                        linger_us: cur.u32()?,
                        service_us: cur.u32()?,
                        pace_us: cur.u32()?,
                    };
                    if timing.trace_id == 0 {
                        return Err(ProtocolError::BadExtension(
                            "trace_id 0 is the no-trace sentinel".into(),
                        ));
                    }
                    Some(timing)
                };
                Frame::SumBatch(SumBatch {
                    request_id,
                    shard,
                    results,
                    timing,
                })
            }
            TYPE_BUSY => Frame::Busy(Busy {
                request_id: cur.u64()?,
                shard: cur.u16()?,
                queue_depth: cur.u32()?,
            }),
            TYPE_ERROR => {
                let code = cur.u16()?;
                let len = cur.u32()?;
                if len > MAX_ERROR_DETAIL {
                    return Err(ProtocolError::Malformed(format!(
                        "error detail of {len} bytes exceeds the {MAX_ERROR_DETAIL} byte limit"
                    )));
                }
                let bytes = cur.take(len as usize)?;
                let detail = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtocolError::Malformed("error detail is not UTF-8".into()))?;
                Frame::Error(ErrorFrame { code, detail })
            }
            other => return Err(ProtocolError::UnknownFrameType(other)),
        };
        cur.finish()?;
        Ok(frame)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Truncates to at most `max` bytes without splitting a UTF-8 scalar.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// A bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed(format!(
                "body truncated: needed {n} more bytes, had {}",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the [`EXT_TRACE`] tag byte that opens an extension; any
    /// other tag is a typed [`ProtocolError::BadExtension`].
    fn extension_tag(&mut self) -> Result<(), ProtocolError> {
        let tag = self.u8()?;
        if tag != EXT_TRACE {
            return Err(ProtocolError::BadExtension(format!(
                "unknown extension tag 0x{tag:02X}"
            )));
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after the body",
                self.buf.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("prefix"));
        assert_eq!(len as usize, bytes.len() - 4);
        let decoded = Frame::decode(bytes[4], &bytes[5..]).expect("decodes");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::AddBatch(AddBatch {
            request_id: 42,
            nbits: 64,
            ops: vec![(1, 2), (u64::MAX, 7)],
            trace: None,
        }));
        round_trip(Frame::AddBatch(AddBatch {
            request_id: 0,
            nbits: 1,
            ops: vec![],
            trace: None,
        }));
        round_trip(Frame::SumBatch(SumBatch {
            request_id: 42,
            shard: 3,
            results: vec![
                OpResult { sum: 3, flags: 0 },
                OpResult {
                    sum: 9,
                    flags: FLAG_STALLED | FLAG_EXACT,
                },
            ],
            timing: None,
        }));
        round_trip(Frame::Busy(Busy {
            request_id: 9,
            shard: 1,
            queue_depth: 64,
        }));
        round_trip(Frame::Error(ErrorFrame {
            code: 5,
            detail: "nope".into(),
        }));
    }

    #[test]
    fn flags_decode_into_accessors() {
        let op = OpResult {
            sum: 1,
            flags: FLAG_STALLED,
        };
        assert!(op.stalled());
        assert!(!op.exact_path());
        let op = OpResult {
            sum: 1,
            flags: FLAG_EXACT,
        };
        assert!(!op.stalled());
        assert!(op.exact_path());
    }

    #[test]
    fn bad_width_is_typed() {
        for nbits in [0u8, 65, 255] {
            let mut body = Vec::new();
            put_u64(&mut body, 1);
            body.push(nbits);
            put_u32(&mut body, 0);
            assert_eq!(
                Frame::decode(TYPE_ADD_BATCH, &body),
                Err(ProtocolError::BadWidth { nbits })
            );
        }
    }

    #[test]
    fn oversized_batch_is_typed() {
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(32);
        put_u32(&mut body, MAX_BATCH_OPS + 1);
        assert_eq!(
            Frame::decode(TYPE_ADD_BATCH, &body),
            Err(ProtocolError::OversizedBatch {
                count: MAX_BATCH_OPS + 1
            })
        );
    }

    #[test]
    fn truncated_and_padded_bodies_are_typed() {
        let frame = Frame::AddBatch(AddBatch {
            request_id: 7,
            nbits: 16,
            ops: vec![(1, 2)],
            trace: None,
        });
        let bytes = frame.encode();
        // Drop the last operand byte: count promises more than present.
        let short = Frame::decode(bytes[4], &bytes[5..bytes.len() - 1]);
        assert!(
            matches!(short, Err(ProtocolError::Malformed(_))),
            "{short:?}"
        );
        // A trailing byte after the base fields is read as an extension
        // tag; 0x00 is no known extension.
        let mut padded = bytes[5..].to_vec();
        padded.push(0);
        let long = Frame::decode(bytes[4], &padded);
        assert!(
            matches!(long, Err(ProtocolError::BadExtension(_))),
            "{long:?}"
        );
        // A Busy body has no extensions: any trailing byte is malformed.
        let busy = Frame::Busy(Busy {
            request_id: 1,
            shard: 0,
            queue_depth: 2,
        })
        .encode();
        let mut padded = busy[5..].to_vec();
        padded.push(0);
        let long = Frame::decode(busy[4], &padded);
        assert!(matches!(long, Err(ProtocolError::Malformed(_))), "{long:?}");
    }

    #[test]
    fn trace_extensions_round_trip() {
        round_trip(Frame::AddBatch(AddBatch {
            request_id: 42,
            nbits: 64,
            ops: vec![(1, 2)],
            trace: Some(TraceContext::sampled(0xDEAD_BEEF_CAFE_F00D)),
        }));
        round_trip(Frame::SumBatch(SumBatch {
            request_id: 42,
            shard: 1,
            results: vec![OpResult { sum: 3, flags: 0 }],
            timing: Some(ServerTiming {
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                queue_us: 120,
                linger_us: 480,
                service_us: 77,
                pace_us: 3000,
            }),
        }));
    }

    #[test]
    fn bad_trace_extensions_are_typed() {
        // Zero trace id.
        let mut bytes = Frame::AddBatch(AddBatch {
            request_id: 1,
            nbits: 32,
            ops: vec![],
            trace: Some(TraceContext::sampled(7)),
        })
        .encode();
        bytes[5 + 8 + 1 + 4 + 1..5 + 8 + 1 + 4 + 1 + 8].fill(0);
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::BadExtension(_))
        ));
        // Reserved flag bits.
        let mut bytes = Frame::AddBatch(AddBatch {
            request_id: 1,
            nbits: 32,
            ops: vec![],
            trace: Some(TraceContext::sampled(7)),
        })
        .encode();
        *bytes.last_mut().expect("flags byte") = 0b1000_0010;
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::BadExtension(_))
        ));
        // Truncated extension payload.
        let bytes = Frame::AddBatch(AddBatch {
            request_id: 1,
            nbits: 32,
            ops: vec![],
            trace: Some(TraceContext::sampled(7)),
        })
        .encode();
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..bytes.len() - 3]),
            Err(ProtocolError::Malformed(_))
        ));
        // Trailing garbage after a complete extension.
        let mut bytes = Frame::AddBatch(AddBatch {
            request_id: 1,
            nbits: 32,
            ops: vec![],
            trace: Some(TraceContext::sampled(7)),
        })
        .encode();
        bytes.push(0xAA);
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        assert_eq!(
            Frame::decode(0x55, &[]),
            Err(ProtocolError::UnknownFrameType(0x55))
        );
    }

    #[test]
    fn error_detail_is_bounded_and_utf8_checked() {
        let long = "x".repeat(MAX_ERROR_DETAIL as usize + 500);
        let frame = Frame::Error(ErrorFrame {
            code: 5,
            detail: long,
        });
        let bytes = frame.encode();
        let decoded = Frame::decode(bytes[4], &bytes[5..]).expect("decodes");
        let Frame::Error(e) = decoded else {
            panic!("wrong frame");
        };
        assert_eq!(e.detail.len(), MAX_ERROR_DETAIL as usize);

        let mut body = Vec::new();
        put_u16(&mut body, 1);
        put_u32(&mut body, 2);
        body.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(matches!(
            Frame::decode(TYPE_ERROR, &body),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
