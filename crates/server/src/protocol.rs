//! The binary wire protocol: frame types and body encode/decode.
//!
//! Every frame is `[u32 LE length][u8 type][body]`, where `length`
//! counts the type byte plus the body. All multi-byte integers are
//! little-endian. Four frame types exist:
//!
//! | type   | name       | direction       | body |
//! |--------|------------|-----------------|------|
//! | `0x01` | `AddBatch` | client → server | `request_id u64, nbits u8, count u32, count × (a u64, b u64)` |
//! | `0x81` | `SumBatch` | server → client | `request_id u64, shard u16, count u32, count × (sum u64, flags u8)` |
//! | `0xB1` | `Busy`     | server → client | `request_id u64, shard u16, queue_depth u32` |
//! | `0xEE` | `Error`    | server → client | `code u16, detail_len u32, detail utf-8` |
//!
//! Per-op `flags`: bit 0 ([`FLAG_STALLED`]) — the `ER` detector fired
//! and the op paid the recovery bubble; bit 1 ([`FLAG_EXACT`]) — the
//! exact path delivered the sum (escalation or degraded mode).
//!
//! ## Tagged trailing extensions
//!
//! `AddBatch` and `SumBatch` bodies may carry *tagged extensions*
//! after the base fields, each opened by a tag byte. Known tags have
//! fixed payloads:
//!
//! - [`EXT_TRACE`] (`0x54`, `'T'`): on `AddBatch` a [`TraceContext`]
//!   (`trace_id u64, flags u8`) asking the server to sample this
//!   request; on `SumBatch` a [`ServerTiming`] (`trace_id u64,
//!   queue_us/linger_us/service_us/pace_us u32`) echoing the
//!   server-side latency decomposition.
//! - [`EXT_DEADLINE`] (`0x44`, `'D'`, `AddBatch` only): a client-
//!   stamped latency budget (`budget_us u32`). Requests that outwait
//!   their budget inside the server are shed with a typed
//!   `DeadlineExceeded` error frame instead of occupying a batch slot.
//! - [`EXT_HEDGE`] (`0x48`, `'H'`, `AddBatch` only): a hedge identity
//!   (`key u64, seq u32`). The server executes at most one request per
//!   `(key, seq)`; duplicates get a typed `DuplicateHedge` error, so
//!   clients can race a hedged copy without double-executing.
//!
//! Unrecognized tags in `0x80..=0xFF` are *skippable*: they carry a
//! `len u8` followed by `len` payload bytes, are preserved verbatim
//! through decode/encode, and never fail a frame — a newer peer can
//! append extensions an older peer safely ignores. Unrecognized tags
//! below `0x80` are a typed `BadExtension` error. Known tags may
//! appear in any order but at most once each.
//!
//! Negotiation is implicit and backward compatible in both directions:
//! frames without extensions are **byte-identical** to the
//! pre-extension protocol (covered by golden-bytes tests), and the
//! server only attaches timing to responses whose request carried a
//! trace context — an untraced client never receives bytes it cannot
//! parse.
//!
//! Decoding is total: every malformed input maps to a typed
//! [`ProtocolError`], never a panic.

use crate::error::ProtocolError;

/// Hard ceiling on `length`; larger prefixes are rejected before any
/// allocation, so a hostile 4 GiB prefix costs the server nothing.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Hard ceiling on ops per `AddBatch` (64 KiB of operands).
pub const MAX_BATCH_OPS: u32 = 4096;

/// Hard ceiling on the `Error` frame detail string, in bytes.
pub const MAX_ERROR_DETAIL: u32 = 1024;

/// Frame type byte of [`AddBatch`].
pub const TYPE_ADD_BATCH: u8 = 0x01;
/// Frame type byte of [`SumBatch`].
pub const TYPE_SUM_BATCH: u8 = 0x81;
/// Frame type byte of [`Busy`].
pub const TYPE_BUSY: u8 = 0xB1;
/// Frame type byte of [`ErrorFrame`].
pub const TYPE_ERROR: u8 = 0xEE;

/// Per-op flag: the `ER` detector fired (the op stalled one cycle).
pub const FLAG_STALLED: u8 = 0b01;
/// Per-op flag: the exact path delivered the sum.
pub const FLAG_EXACT: u8 = 0b10;

/// Tag byte of the optional trace-context extension (`'T'`).
pub const EXT_TRACE: u8 = 0x54;
/// Tag byte of the optional deadline extension (`'D'`, request-only).
pub const EXT_DEADLINE: u8 = 0x44;
/// Tag byte of the optional hedge-identity extension (`'H'`,
/// request-only).
pub const EXT_HEDGE: u8 = 0x48;
/// First tag of the skippable range: unknown tags at or above this
/// carry a `len u8` + payload and are preserved, not rejected.
pub const EXT_SKIPPABLE_MIN: u8 = 0x80;
/// [`TraceContext`] flag: the client asks the server to sample this
/// request into its trace rings.
pub const FLAG_TRACE_SAMPLED: u8 = 0b1;

/// The hedge identity carried by [`EXT_HEDGE`]: the server executes at
/// most one request per `(key, seq)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HedgeKey {
    /// Client-chosen dedup key shared by all copies of one logical
    /// request (conventionally the trace id); must be nonzero.
    pub key: u64,
    /// Attempt number: 0 for the primary send, 1+ for hedges/retries
    /// that are *allowed* to re-execute (a fresh `seq` is a fresh
    /// logical attempt).
    pub seq: u32,
}

/// An unrecognized skippable extension, preserved verbatim: the tag
/// byte (`>= 0x80`) and its payload (at most 255 bytes).
pub type UnknownExt = (u8, Vec<u8>);

/// The optional trace context a client attaches to an [`AddBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-chosen trace id; must be nonzero (0 is the "no trace"
    /// sentinel everywhere downstream).
    pub trace_id: u64,
    /// [`FLAG_TRACE_SAMPLED`]; all other bits are reserved and must be
    /// zero.
    pub flags: u8,
}

impl TraceContext {
    /// A sampled trace context for `trace_id`.
    pub fn sampled(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            flags: FLAG_TRACE_SAMPLED,
        }
    }

    /// Whether the client asked for this request to be sampled.
    pub fn is_sampled(&self) -> bool {
        self.flags & FLAG_TRACE_SAMPLED != 0
    }
}

/// The server-side latency decomposition echoed on a [`SumBatch`] whose
/// request carried a sampled [`TraceContext`]. All durations in
/// microseconds; `write_us` cannot be echoed (the response is still
/// being written), so the client computes the network share as
/// `rtt - (queue + linger + service + pace)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerTiming {
    /// Echo of the request's trace id.
    pub trace_id: u64,
    /// Time in the shard queue before batch formation began.
    pub queue_us: u32,
    /// Time inside the adaptive batcher's forming/linger window.
    pub linger_us: u32,
    /// `ResilientPipeline` compute time for this request.
    pub service_us: u32,
    /// Modeled device pacing the batch waited out.
    pub pace_us: u32,
}

impl ServerTiming {
    /// Total server-side time the extension accounts for, µs.
    pub fn total_us(&self) -> u64 {
        self.queue_us as u64 + self.linger_us as u64 + self.service_us as u64 + self.pace_us as u64
    }
}

/// A client's batch of operand pairs to add at width `nbits`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddBatch {
    /// Client-chosen id, echoed in the response; also the shard routing
    /// key (`request_id % shards`).
    pub request_id: u64,
    /// Adder width in bits (`1..=64`); operands are truncated to it.
    pub nbits: u8,
    /// The operand pairs.
    pub ops: Vec<(u64, u64)>,
    /// Optional trace-context extension; `None` encodes byte-identically
    /// to the pre-extension protocol.
    pub trace: Option<TraceContext>,
    /// Optional client-stamped latency budget ([`EXT_DEADLINE`]), µs.
    pub deadline_us: Option<u32>,
    /// Optional hedge identity ([`EXT_HEDGE`]) for server-side dedup.
    pub hedge: Option<HedgeKey>,
    /// Unrecognized skippable extensions, preserved in wire order.
    pub unknown: Vec<UnknownExt>,
}

impl AddBatch {
    /// An extension-free request (byte-identical to the pre-extension
    /// protocol on the wire).
    pub fn new(request_id: u64, nbits: u8, ops: Vec<(u64, u64)>) -> AddBatch {
        AddBatch {
            request_id,
            nbits,
            ops,
            trace: None,
            deadline_us: None,
            hedge: None,
            unknown: Vec::new(),
        }
    }

    /// Attaches a trace context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> AddBatch {
        self.trace = Some(trace);
        self
    }

    /// Attaches a latency budget in microseconds.
    #[must_use]
    pub fn with_deadline_us(mut self, budget_us: u32) -> AddBatch {
        self.deadline_us = Some(budget_us);
        self
    }

    /// Attaches a hedge identity for server-side dedup.
    #[must_use]
    pub fn with_hedge(mut self, key: u64, seq: u32) -> AddBatch {
        self.hedge = Some(HedgeKey { key, seq });
        self
    }
}

/// One op's result inside a [`SumBatch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpResult {
    /// The delivered sum, truncated to the request width.
    pub sum: u64,
    /// [`FLAG_STALLED`] | [`FLAG_EXACT`] bits.
    pub flags: u8,
}

impl OpResult {
    /// Whether the `ER` detector fired on this op.
    pub fn stalled(&self) -> bool {
        self.flags & FLAG_STALLED != 0
    }

    /// Whether the exact path delivered this sum.
    pub fn exact_path(&self) -> bool {
        self.flags & FLAG_EXACT != 0
    }
}

/// The server's answer to an [`AddBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumBatch {
    /// Echo of the request id.
    pub request_id: u64,
    /// The shard that executed the batch.
    pub shard: u16,
    /// Per-op results, in request order.
    pub results: Vec<OpResult>,
    /// Optional server-timing extension, attached only when the request
    /// carried a sampled [`TraceContext`]; `None` encodes
    /// byte-identically to the pre-extension protocol.
    pub timing: Option<ServerTiming>,
    /// Unrecognized skippable extensions, preserved in wire order.
    pub unknown: Vec<UnknownExt>,
}

/// Explicit load-shed: the target shard's queue was full. The request
/// was *not* executed; the client may retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Echo of the request id.
    pub request_id: u64,
    /// The shard whose queue was full.
    pub shard: u16,
    /// The queue depth observed at rejection time.
    pub queue_depth: u32,
}

/// A typed error answer; `code` is [`ProtocolError::code`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Stable numeric error code.
    pub code: u16,
    /// Human-readable detail (truncated to [`MAX_ERROR_DETAIL`] bytes
    /// on encode).
    pub detail: String,
}

/// Any frame of the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client request.
    AddBatch(AddBatch),
    /// Server response with results.
    SumBatch(SumBatch),
    /// Server load-shed response.
    Busy(Busy),
    /// Server typed-error response.
    Error(ErrorFrame),
}

impl Frame {
    /// The frame's type byte.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::AddBatch(_) => TYPE_ADD_BATCH,
            Frame::SumBatch(_) => TYPE_SUM_BATCH,
            Frame::Busy(_) => TYPE_BUSY,
            Frame::Error(_) => TYPE_ERROR,
        }
    }

    /// Encodes the full frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::AddBatch(r) => {
                put_u64(&mut body, r.request_id);
                body.push(r.nbits);
                put_u32(&mut body, r.ops.len() as u32);
                for &(a, b) in &r.ops {
                    put_u64(&mut body, a);
                    put_u64(&mut body, b);
                }
                if let Some(budget_us) = r.deadline_us {
                    body.push(EXT_DEADLINE);
                    put_u32(&mut body, budget_us);
                }
                if let Some(hedge) = r.hedge {
                    body.push(EXT_HEDGE);
                    put_u64(&mut body, hedge.key);
                    put_u32(&mut body, hedge.seq);
                }
                if let Some(trace) = r.trace {
                    body.push(EXT_TRACE);
                    put_u64(&mut body, trace.trace_id);
                    body.push(trace.flags);
                }
                put_unknown_exts(&mut body, &r.unknown);
            }
            Frame::SumBatch(r) => {
                put_u64(&mut body, r.request_id);
                put_u16(&mut body, r.shard);
                put_u32(&mut body, r.results.len() as u32);
                for op in &r.results {
                    put_u64(&mut body, op.sum);
                    body.push(op.flags);
                }
                if let Some(timing) = r.timing {
                    body.push(EXT_TRACE);
                    put_u64(&mut body, timing.trace_id);
                    put_u32(&mut body, timing.queue_us);
                    put_u32(&mut body, timing.linger_us);
                    put_u32(&mut body, timing.service_us);
                    put_u32(&mut body, timing.pace_us);
                }
                put_unknown_exts(&mut body, &r.unknown);
            }
            Frame::Busy(r) => {
                put_u64(&mut body, r.request_id);
                put_u16(&mut body, r.shard);
                put_u32(&mut body, r.queue_depth);
            }
            Frame::Error(r) => {
                put_u16(&mut body, r.code);
                let detail = truncate_utf8(&r.detail, MAX_ERROR_DETAIL as usize);
                put_u32(&mut body, detail.len() as u32);
                body.extend_from_slice(detail.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(5 + body.len());
        put_u32(&mut out, 1 + body.len() as u32);
        out.push(self.frame_type());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a frame body (everything after the type byte).
    ///
    /// # Errors
    ///
    /// Returns the [`ProtocolError`] describing exactly what is wrong;
    /// malformed input never panics.
    pub fn decode(frame_type: u8, body: &[u8]) -> Result<Frame, ProtocolError> {
        let mut cur = Cursor { buf: body };
        let frame = match frame_type {
            TYPE_ADD_BATCH => {
                let request_id = cur.u64()?;
                let nbits = cur.u8()?;
                if nbits == 0 || nbits > 64 {
                    return Err(ProtocolError::BadWidth { nbits });
                }
                let count = cur.u32()?;
                if count > MAX_BATCH_OPS {
                    return Err(ProtocolError::OversizedBatch { count });
                }
                let mut ops = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ops.push((cur.u64()?, cur.u64()?));
                }
                let mut trace = None;
                let mut deadline_us = None;
                let mut hedge = None;
                let mut unknown = Vec::new();
                while !cur.is_empty() {
                    let tag = cur.u8()?;
                    match tag {
                        EXT_TRACE => {
                            reject_duplicate(tag, trace.is_some())?;
                            let trace_id = cur.u64()?;
                            let flags = cur.u8()?;
                            if trace_id == 0 {
                                return Err(ProtocolError::BadExtension(
                                    "trace_id 0 is the no-trace sentinel".into(),
                                ));
                            }
                            if flags & !FLAG_TRACE_SAMPLED != 0 {
                                return Err(ProtocolError::BadExtension(format!(
                                    "reserved trace flag bits set: 0b{flags:08b}"
                                )));
                            }
                            trace = Some(TraceContext { trace_id, flags });
                        }
                        EXT_DEADLINE => {
                            reject_duplicate(tag, deadline_us.is_some())?;
                            deadline_us = Some(cur.u32()?);
                        }
                        EXT_HEDGE => {
                            reject_duplicate(tag, hedge.is_some())?;
                            let key = cur.u64()?;
                            let seq = cur.u32()?;
                            if key == 0 {
                                return Err(ProtocolError::BadExtension(
                                    "hedge key 0 is the no-hedge sentinel".into(),
                                ));
                            }
                            hedge = Some(HedgeKey { key, seq });
                        }
                        _ => cur.skippable_ext(tag, &mut unknown)?,
                    }
                }
                Frame::AddBatch(AddBatch {
                    request_id,
                    nbits,
                    ops,
                    trace,
                    deadline_us,
                    hedge,
                    unknown,
                })
            }
            TYPE_SUM_BATCH => {
                let request_id = cur.u64()?;
                let shard = cur.u16()?;
                let count = cur.u32()?;
                if count > MAX_BATCH_OPS {
                    return Err(ProtocolError::OversizedBatch { count });
                }
                let mut results = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    results.push(OpResult {
                        sum: cur.u64()?,
                        flags: cur.u8()?,
                    });
                }
                let mut timing = None;
                let mut unknown = Vec::new();
                while !cur.is_empty() {
                    let tag = cur.u8()?;
                    match tag {
                        EXT_TRACE => {
                            reject_duplicate(tag, timing.is_some())?;
                            let parsed = ServerTiming {
                                trace_id: cur.u64()?,
                                queue_us: cur.u32()?,
                                linger_us: cur.u32()?,
                                service_us: cur.u32()?,
                                pace_us: cur.u32()?,
                            };
                            if parsed.trace_id == 0 {
                                return Err(ProtocolError::BadExtension(
                                    "trace_id 0 is the no-trace sentinel".into(),
                                ));
                            }
                            timing = Some(parsed);
                        }
                        EXT_DEADLINE | EXT_HEDGE => {
                            return Err(ProtocolError::BadExtension(format!(
                                "request-only extension 0x{tag:02X} on a response frame"
                            )));
                        }
                        _ => cur.skippable_ext(tag, &mut unknown)?,
                    }
                }
                Frame::SumBatch(SumBatch {
                    request_id,
                    shard,
                    results,
                    timing,
                    unknown,
                })
            }
            TYPE_BUSY => Frame::Busy(Busy {
                request_id: cur.u64()?,
                shard: cur.u16()?,
                queue_depth: cur.u32()?,
            }),
            TYPE_ERROR => {
                let code = cur.u16()?;
                let len = cur.u32()?;
                if len > MAX_ERROR_DETAIL {
                    return Err(ProtocolError::Malformed(format!(
                        "error detail of {len} bytes exceeds the {MAX_ERROR_DETAIL} byte limit"
                    )));
                }
                let bytes = cur.take(len as usize)?;
                let detail = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtocolError::Malformed("error detail is not UTF-8".into()))?;
                Frame::Error(ErrorFrame { code, detail })
            }
            other => return Err(ProtocolError::UnknownFrameType(other)),
        };
        cur.finish()?;
        Ok(frame)
    }
}

/// Appends preserved skippable extensions as `[tag][len u8][payload]`.
/// Payloads longer than 255 bytes are truncated (the wire format
/// cannot carry more; decode never produces such a payload).
fn put_unknown_exts(out: &mut Vec<u8>, unknown: &[UnknownExt]) {
    for (tag, payload) in unknown {
        debug_assert!(
            *tag >= EXT_SKIPPABLE_MIN,
            "tag 0x{tag:02X} is not skippable"
        );
        debug_assert!(
            payload.len() <= u8::MAX as usize,
            "oversized skippable payload"
        );
        let len = payload.len().min(u8::MAX as usize);
        out.push(*tag);
        out.push(len as u8);
        out.extend_from_slice(&payload[..len]);
    }
}

/// A known extension tag may appear at most once per frame.
fn reject_duplicate(tag: u8, seen: bool) -> Result<(), ProtocolError> {
    if seen {
        return Err(ProtocolError::BadExtension(format!(
            "duplicate extension tag 0x{tag:02X}"
        )));
    }
    Ok(())
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Truncates to at most `max` bytes without splitting a UTF-8 scalar.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// A bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed(format!(
                "body truncated: needed {n} more bytes, had {}",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Handles a tag no known-extension arm claimed: skippable tags
    /// (`>= 0x80`) are length-prefixed and preserved into `unknown`;
    /// anything else is a typed [`ProtocolError::BadExtension`].
    fn skippable_ext(
        &mut self,
        tag: u8,
        unknown: &mut Vec<UnknownExt>,
    ) -> Result<(), ProtocolError> {
        if tag < EXT_SKIPPABLE_MIN {
            return Err(ProtocolError::BadExtension(format!(
                "unknown extension tag 0x{tag:02X}"
            )));
        }
        let len = self.u8()? as usize;
        unknown.push((tag, self.take(len)?.to_vec()));
        Ok(())
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after the body",
                self.buf.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("prefix"));
        assert_eq!(len as usize, bytes.len() - 4);
        let decoded = Frame::decode(bytes[4], &bytes[5..]).expect("decodes");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::AddBatch(AddBatch::new(
            42,
            64,
            vec![(1, 2), (u64::MAX, 7)],
        )));
        round_trip(Frame::AddBatch(AddBatch::new(0, 1, vec![])));
        round_trip(Frame::SumBatch(SumBatch {
            request_id: 42,
            shard: 3,
            results: vec![
                OpResult { sum: 3, flags: 0 },
                OpResult {
                    sum: 9,
                    flags: FLAG_STALLED | FLAG_EXACT,
                },
            ],
            timing: None,
            unknown: vec![],
        }));
        round_trip(Frame::Busy(Busy {
            request_id: 9,
            shard: 1,
            queue_depth: 64,
        }));
        round_trip(Frame::Error(ErrorFrame {
            code: 5,
            detail: "nope".into(),
        }));
    }

    #[test]
    fn flags_decode_into_accessors() {
        let op = OpResult {
            sum: 1,
            flags: FLAG_STALLED,
        };
        assert!(op.stalled());
        assert!(!op.exact_path());
        let op = OpResult {
            sum: 1,
            flags: FLAG_EXACT,
        };
        assert!(!op.stalled());
        assert!(op.exact_path());
    }

    #[test]
    fn bad_width_is_typed() {
        for nbits in [0u8, 65, 255] {
            let mut body = Vec::new();
            put_u64(&mut body, 1);
            body.push(nbits);
            put_u32(&mut body, 0);
            assert_eq!(
                Frame::decode(TYPE_ADD_BATCH, &body),
                Err(ProtocolError::BadWidth { nbits })
            );
        }
    }

    #[test]
    fn oversized_batch_is_typed() {
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(32);
        put_u32(&mut body, MAX_BATCH_OPS + 1);
        assert_eq!(
            Frame::decode(TYPE_ADD_BATCH, &body),
            Err(ProtocolError::OversizedBatch {
                count: MAX_BATCH_OPS + 1
            })
        );
    }

    #[test]
    fn truncated_and_padded_bodies_are_typed() {
        let frame = Frame::AddBatch(AddBatch::new(7, 16, vec![(1, 2)]));
        let bytes = frame.encode();
        // Drop the last operand byte: count promises more than present.
        let short = Frame::decode(bytes[4], &bytes[5..bytes.len() - 1]);
        assert!(
            matches!(short, Err(ProtocolError::Malformed(_))),
            "{short:?}"
        );
        // A trailing byte after the base fields is read as an extension
        // tag; 0x00 is no known extension.
        let mut padded = bytes[5..].to_vec();
        padded.push(0);
        let long = Frame::decode(bytes[4], &padded);
        assert!(
            matches!(long, Err(ProtocolError::BadExtension(_))),
            "{long:?}"
        );
        // A Busy body has no extensions: any trailing byte is malformed.
        let busy = Frame::Busy(Busy {
            request_id: 1,
            shard: 0,
            queue_depth: 2,
        })
        .encode();
        let mut padded = busy[5..].to_vec();
        padded.push(0);
        let long = Frame::decode(busy[4], &padded);
        assert!(matches!(long, Err(ProtocolError::Malformed(_))), "{long:?}");
    }

    #[test]
    fn trace_extensions_round_trip() {
        round_trip(Frame::AddBatch(
            AddBatch::new(42, 64, vec![(1, 2)])
                .with_trace(TraceContext::sampled(0xDEAD_BEEF_CAFE_F00D)),
        ));
        round_trip(Frame::SumBatch(SumBatch {
            request_id: 42,
            shard: 1,
            results: vec![OpResult { sum: 3, flags: 0 }],
            timing: Some(ServerTiming {
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                queue_us: 120,
                linger_us: 480,
                service_us: 77,
                pace_us: 3000,
            }),
            unknown: vec![],
        }));
    }

    #[test]
    fn deadline_and_hedge_extensions_round_trip_in_any_combination() {
        round_trip(Frame::AddBatch(
            AddBatch::new(42, 64, vec![(1, 2)]).with_deadline_us(50_000),
        ));
        round_trip(Frame::AddBatch(
            AddBatch::new(42, 64, vec![(1, 2)]).with_hedge(0xABCD, 1),
        ));
        round_trip(Frame::AddBatch(
            AddBatch::new(42, 64, vec![(1, 2)])
                .with_deadline_us(0)
                .with_hedge(7, 0)
                .with_trace(TraceContext::sampled(9)),
        ));
    }

    #[test]
    fn known_extensions_decode_in_any_order() {
        // Hand-encode trace before deadline (the reverse of the
        // canonical encode order) and check both are picked up.
        let mut body = Vec::new();
        put_u64(&mut body, 5);
        body.push(32);
        put_u32(&mut body, 0);
        body.push(EXT_TRACE);
        put_u64(&mut body, 77);
        body.push(FLAG_TRACE_SAMPLED);
        body.push(EXT_DEADLINE);
        put_u32(&mut body, 1234);
        let decoded = Frame::decode(TYPE_ADD_BATCH, &body).expect("decodes");
        let Frame::AddBatch(req) = decoded else {
            panic!("wrong frame");
        };
        assert_eq!(req.trace, Some(TraceContext::sampled(77)));
        assert_eq!(req.deadline_us, Some(1234));
    }

    #[test]
    fn duplicate_and_misplaced_known_extensions_are_typed() {
        // Duplicate deadline.
        let mut bytes = Frame::AddBatch(AddBatch::new(1, 32, vec![]).with_deadline_us(10)).encode();
        bytes.push(EXT_DEADLINE);
        put_u32(&mut bytes, 20);
        let patched_len = ((bytes.len() - 4) as u32).to_le_bytes();
        bytes[..4].copy_from_slice(&patched_len);
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::BadExtension(_))
        ));
        // Zero hedge key.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(32);
        put_u32(&mut body, 0);
        body.push(EXT_HEDGE);
        put_u64(&mut body, 0);
        put_u32(&mut body, 0);
        assert!(matches!(
            Frame::decode(TYPE_ADD_BATCH, &body),
            Err(ProtocolError::BadExtension(_))
        ));
        // Request-only extension on a response frame.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        put_u16(&mut body, 0);
        put_u32(&mut body, 0);
        body.push(EXT_DEADLINE);
        put_u32(&mut body, 10);
        assert!(matches!(
            Frame::decode(TYPE_SUM_BATCH, &body),
            Err(ProtocolError::BadExtension(_))
        ));
    }

    #[test]
    fn unknown_skippable_extensions_are_preserved_verbatim() {
        let frame = Frame::AddBatch(AddBatch {
            unknown: vec![(0x99, vec![1, 2, 3]), (0xF0, vec![]), (0x99, vec![4])],
            ..AddBatch::new(3, 32, vec![(10, 11)])
        });
        round_trip(frame.clone());
        // And they coexist with every known extension.
        let Frame::AddBatch(base) = frame else {
            panic!("wrong frame");
        };
        round_trip(Frame::AddBatch(
            base.with_deadline_us(9)
                .with_hedge(5, 2)
                .with_trace(TraceContext::sampled(6)),
        ));
        round_trip(Frame::SumBatch(SumBatch {
            request_id: 1,
            shard: 0,
            results: vec![],
            timing: None,
            unknown: vec![(0x80, vec![0xAB; 255])],
        }));
        // A truncated skippable payload is malformed, not silently
        // accepted.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(32);
        put_u32(&mut body, 0);
        body.push(0x99);
        body.push(10); // promises 10 payload bytes
        body.push(1); // delivers 1
        assert!(matches!(
            Frame::decode(TYPE_ADD_BATCH, &body),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn bad_trace_extensions_are_typed() {
        // Zero trace id.
        let mut bytes =
            Frame::AddBatch(AddBatch::new(1, 32, vec![]).with_trace(TraceContext::sampled(7)))
                .encode();
        bytes[5 + 8 + 1 + 4 + 1..5 + 8 + 1 + 4 + 1 + 8].fill(0);
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::BadExtension(_))
        ));
        // Reserved flag bits.
        let mut bytes =
            Frame::AddBatch(AddBatch::new(1, 32, vec![]).with_trace(TraceContext::sampled(7)))
                .encode();
        *bytes.last_mut().expect("flags byte") = 0b1000_0010;
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::BadExtension(_))
        ));
        // Truncated extension payload.
        let bytes =
            Frame::AddBatch(AddBatch::new(1, 32, vec![]).with_trace(TraceContext::sampled(7)))
                .encode();
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..bytes.len() - 3]),
            Err(ProtocolError::Malformed(_))
        ));
        // Trailing garbage after a complete extension.
        let mut bytes =
            Frame::AddBatch(AddBatch::new(1, 32, vec![]).with_trace(TraceContext::sampled(7)))
                .encode();
        bytes.push(0xAA);
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        assert_eq!(
            Frame::decode(0x55, &[]),
            Err(ProtocolError::UnknownFrameType(0x55))
        );
    }

    #[test]
    fn error_detail_is_bounded_and_utf8_checked() {
        let long = "x".repeat(MAX_ERROR_DETAIL as usize + 500);
        let frame = Frame::Error(ErrorFrame {
            code: 5,
            detail: long,
        });
        let bytes = frame.encode();
        let decoded = Frame::decode(bytes[4], &bytes[5..]).expect("decodes");
        let Frame::Error(e) = decoded else {
            panic!("wrong frame");
        };
        assert_eq!(e.detail.len(), MAX_ERROR_DETAIL as usize);

        let mut body = Vec::new();
        put_u16(&mut body, 1);
        put_u32(&mut body, 2);
        body.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(matches!(
            Frame::decode(TYPE_ERROR, &body),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
