//! The binary wire protocol: frame types and body encode/decode.
//!
//! Every frame is `[u32 LE length][u8 type][body]`, where `length`
//! counts the type byte plus the body. All multi-byte integers are
//! little-endian. Four frame types exist:
//!
//! | type   | name       | direction       | body |
//! |--------|------------|-----------------|------|
//! | `0x01` | `AddBatch` | client → server | `request_id u64, nbits u8, count u32, count × (a u64, b u64)` |
//! | `0x81` | `SumBatch` | server → client | `request_id u64, shard u16, count u32, count × (sum u64, flags u8)` |
//! | `0xB1` | `Busy`     | server → client | `request_id u64, shard u16, queue_depth u32` |
//! | `0xEE` | `Error`    | server → client | `code u16, detail_len u32, detail utf-8` |
//!
//! Per-op `flags`: bit 0 ([`FLAG_STALLED`]) — the `ER` detector fired
//! and the op paid the recovery bubble; bit 1 ([`FLAG_EXACT`]) — the
//! exact path delivered the sum (escalation or degraded mode).
//!
//! Decoding is total: every malformed input maps to a typed
//! [`ProtocolError`], never a panic.

use crate::error::ProtocolError;

/// Hard ceiling on `length`; larger prefixes are rejected before any
/// allocation, so a hostile 4 GiB prefix costs the server nothing.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Hard ceiling on ops per `AddBatch` (64 KiB of operands).
pub const MAX_BATCH_OPS: u32 = 4096;

/// Hard ceiling on the `Error` frame detail string, in bytes.
pub const MAX_ERROR_DETAIL: u32 = 1024;

/// Frame type byte of [`AddBatch`].
pub const TYPE_ADD_BATCH: u8 = 0x01;
/// Frame type byte of [`SumBatch`].
pub const TYPE_SUM_BATCH: u8 = 0x81;
/// Frame type byte of [`Busy`].
pub const TYPE_BUSY: u8 = 0xB1;
/// Frame type byte of [`ErrorFrame`].
pub const TYPE_ERROR: u8 = 0xEE;

/// Per-op flag: the `ER` detector fired (the op stalled one cycle).
pub const FLAG_STALLED: u8 = 0b01;
/// Per-op flag: the exact path delivered the sum.
pub const FLAG_EXACT: u8 = 0b10;

/// A client's batch of operand pairs to add at width `nbits`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddBatch {
    /// Client-chosen id, echoed in the response; also the shard routing
    /// key (`request_id % shards`).
    pub request_id: u64,
    /// Adder width in bits (`1..=64`); operands are truncated to it.
    pub nbits: u8,
    /// The operand pairs.
    pub ops: Vec<(u64, u64)>,
}

/// One op's result inside a [`SumBatch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpResult {
    /// The delivered sum, truncated to the request width.
    pub sum: u64,
    /// [`FLAG_STALLED`] | [`FLAG_EXACT`] bits.
    pub flags: u8,
}

impl OpResult {
    /// Whether the `ER` detector fired on this op.
    pub fn stalled(&self) -> bool {
        self.flags & FLAG_STALLED != 0
    }

    /// Whether the exact path delivered this sum.
    pub fn exact_path(&self) -> bool {
        self.flags & FLAG_EXACT != 0
    }
}

/// The server's answer to an [`AddBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumBatch {
    /// Echo of the request id.
    pub request_id: u64,
    /// The shard that executed the batch.
    pub shard: u16,
    /// Per-op results, in request order.
    pub results: Vec<OpResult>,
}

/// Explicit load-shed: the target shard's queue was full. The request
/// was *not* executed; the client may retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Echo of the request id.
    pub request_id: u64,
    /// The shard whose queue was full.
    pub shard: u16,
    /// The queue depth observed at rejection time.
    pub queue_depth: u32,
}

/// A typed error answer; `code` is [`ProtocolError::code`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Stable numeric error code.
    pub code: u16,
    /// Human-readable detail (truncated to [`MAX_ERROR_DETAIL`] bytes
    /// on encode).
    pub detail: String,
}

/// Any frame of the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client request.
    AddBatch(AddBatch),
    /// Server response with results.
    SumBatch(SumBatch),
    /// Server load-shed response.
    Busy(Busy),
    /// Server typed-error response.
    Error(ErrorFrame),
}

impl Frame {
    /// The frame's type byte.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::AddBatch(_) => TYPE_ADD_BATCH,
            Frame::SumBatch(_) => TYPE_SUM_BATCH,
            Frame::Busy(_) => TYPE_BUSY,
            Frame::Error(_) => TYPE_ERROR,
        }
    }

    /// Encodes the full frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::AddBatch(r) => {
                put_u64(&mut body, r.request_id);
                body.push(r.nbits);
                put_u32(&mut body, r.ops.len() as u32);
                for &(a, b) in &r.ops {
                    put_u64(&mut body, a);
                    put_u64(&mut body, b);
                }
            }
            Frame::SumBatch(r) => {
                put_u64(&mut body, r.request_id);
                put_u16(&mut body, r.shard);
                put_u32(&mut body, r.results.len() as u32);
                for op in &r.results {
                    put_u64(&mut body, op.sum);
                    body.push(op.flags);
                }
            }
            Frame::Busy(r) => {
                put_u64(&mut body, r.request_id);
                put_u16(&mut body, r.shard);
                put_u32(&mut body, r.queue_depth);
            }
            Frame::Error(r) => {
                put_u16(&mut body, r.code);
                let detail = truncate_utf8(&r.detail, MAX_ERROR_DETAIL as usize);
                put_u32(&mut body, detail.len() as u32);
                body.extend_from_slice(detail.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(5 + body.len());
        put_u32(&mut out, 1 + body.len() as u32);
        out.push(self.frame_type());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a frame body (everything after the type byte).
    ///
    /// # Errors
    ///
    /// Returns the [`ProtocolError`] describing exactly what is wrong;
    /// malformed input never panics.
    pub fn decode(frame_type: u8, body: &[u8]) -> Result<Frame, ProtocolError> {
        let mut cur = Cursor { buf: body };
        let frame = match frame_type {
            TYPE_ADD_BATCH => {
                let request_id = cur.u64()?;
                let nbits = cur.u8()?;
                if nbits == 0 || nbits > 64 {
                    return Err(ProtocolError::BadWidth { nbits });
                }
                let count = cur.u32()?;
                if count > MAX_BATCH_OPS {
                    return Err(ProtocolError::OversizedBatch { count });
                }
                let mut ops = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ops.push((cur.u64()?, cur.u64()?));
                }
                Frame::AddBatch(AddBatch {
                    request_id,
                    nbits,
                    ops,
                })
            }
            TYPE_SUM_BATCH => {
                let request_id = cur.u64()?;
                let shard = cur.u16()?;
                let count = cur.u32()?;
                if count > MAX_BATCH_OPS {
                    return Err(ProtocolError::OversizedBatch { count });
                }
                let mut results = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    results.push(OpResult {
                        sum: cur.u64()?,
                        flags: cur.u8()?,
                    });
                }
                Frame::SumBatch(SumBatch {
                    request_id,
                    shard,
                    results,
                })
            }
            TYPE_BUSY => Frame::Busy(Busy {
                request_id: cur.u64()?,
                shard: cur.u16()?,
                queue_depth: cur.u32()?,
            }),
            TYPE_ERROR => {
                let code = cur.u16()?;
                let len = cur.u32()?;
                if len > MAX_ERROR_DETAIL {
                    return Err(ProtocolError::Malformed(format!(
                        "error detail of {len} bytes exceeds the {MAX_ERROR_DETAIL} byte limit"
                    )));
                }
                let bytes = cur.take(len as usize)?;
                let detail = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtocolError::Malformed("error detail is not UTF-8".into()))?;
                Frame::Error(ErrorFrame { code, detail })
            }
            other => return Err(ProtocolError::UnknownFrameType(other)),
        };
        cur.finish()?;
        Ok(frame)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Truncates to at most `max` bytes without splitting a UTF-8 scalar.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// A bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed(format!(
                "body truncated: needed {n} more bytes, had {}",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after the body",
                self.buf.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("prefix"));
        assert_eq!(len as usize, bytes.len() - 4);
        let decoded = Frame::decode(bytes[4], &bytes[5..]).expect("decodes");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::AddBatch(AddBatch {
            request_id: 42,
            nbits: 64,
            ops: vec![(1, 2), (u64::MAX, 7)],
        }));
        round_trip(Frame::AddBatch(AddBatch {
            request_id: 0,
            nbits: 1,
            ops: vec![],
        }));
        round_trip(Frame::SumBatch(SumBatch {
            request_id: 42,
            shard: 3,
            results: vec![
                OpResult { sum: 3, flags: 0 },
                OpResult {
                    sum: 9,
                    flags: FLAG_STALLED | FLAG_EXACT,
                },
            ],
        }));
        round_trip(Frame::Busy(Busy {
            request_id: 9,
            shard: 1,
            queue_depth: 64,
        }));
        round_trip(Frame::Error(ErrorFrame {
            code: 5,
            detail: "nope".into(),
        }));
    }

    #[test]
    fn flags_decode_into_accessors() {
        let op = OpResult {
            sum: 1,
            flags: FLAG_STALLED,
        };
        assert!(op.stalled());
        assert!(!op.exact_path());
        let op = OpResult {
            sum: 1,
            flags: FLAG_EXACT,
        };
        assert!(!op.stalled());
        assert!(op.exact_path());
    }

    #[test]
    fn bad_width_is_typed() {
        for nbits in [0u8, 65, 255] {
            let mut body = Vec::new();
            put_u64(&mut body, 1);
            body.push(nbits);
            put_u32(&mut body, 0);
            assert_eq!(
                Frame::decode(TYPE_ADD_BATCH, &body),
                Err(ProtocolError::BadWidth { nbits })
            );
        }
    }

    #[test]
    fn oversized_batch_is_typed() {
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(32);
        put_u32(&mut body, MAX_BATCH_OPS + 1);
        assert_eq!(
            Frame::decode(TYPE_ADD_BATCH, &body),
            Err(ProtocolError::OversizedBatch {
                count: MAX_BATCH_OPS + 1
            })
        );
    }

    #[test]
    fn truncated_and_padded_bodies_are_typed() {
        let frame = Frame::AddBatch(AddBatch {
            request_id: 7,
            nbits: 16,
            ops: vec![(1, 2)],
        });
        let bytes = frame.encode();
        // Drop the last operand byte: count promises more than present.
        let short = Frame::decode(bytes[4], &bytes[5..bytes.len() - 1]);
        assert!(
            matches!(short, Err(ProtocolError::Malformed(_))),
            "{short:?}"
        );
        // Add a trailing byte: body longer than the fields account for.
        let mut padded = bytes[5..].to_vec();
        padded.push(0);
        let long = Frame::decode(bytes[4], &padded);
        assert!(matches!(long, Err(ProtocolError::Malformed(_))), "{long:?}");
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        assert_eq!(
            Frame::decode(0x55, &[]),
            Err(ProtocolError::UnknownFrameType(0x55))
        );
    }

    #[test]
    fn error_detail_is_bounded_and_utf8_checked() {
        let long = "x".repeat(MAX_ERROR_DETAIL as usize + 500);
        let frame = Frame::Error(ErrorFrame {
            code: 5,
            detail: long,
        });
        let bytes = frame.encode();
        let decoded = Frame::decode(bytes[4], &bytes[5..]).expect("decodes");
        let Frame::Error(e) = decoded else {
            panic!("wrong frame");
        };
        assert_eq!(e.detail.len(), MAX_ERROR_DETAIL as usize);

        let mut body = Vec::new();
        put_u16(&mut body, 1);
        put_u32(&mut body, 2);
        body.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(matches!(
            Frame::decode(TYPE_ERROR, &body),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
