//! Server-side SLO accounting: a thread-safe shell around
//! [`vlsa_slo::SloEngine`].
//!
//! The engine itself is single-threaded and clockless; the server has
//! many feeders — every shard worker (availability, latency,
//! correctness per batch) and every connection thread (sheds on the
//! submit path). This wrapper serializes them behind one mutex, keeps
//! the modeled clock as a monotonic max across shards (each worker
//! reports `total_cycles × cycle_ns`, and sheds borrow whatever the
//! fleet clock currently reads), and caches the firing counts in
//! atomics so hot paths and `/readyz` never take the lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vlsa_slo::{Objectives, SloEngine};
use vlsa_telemetry::Json;

/// Snapshot of how many burn-rate rules are firing, by severity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloVerdict {
    /// Page-severity rules currently firing.
    pub pages_firing: u64,
    /// Warn-severity rules currently firing.
    pub warns_firing: u64,
}

/// Shared SLO accountant for one server process.
#[derive(Debug)]
pub struct ServerSlo {
    engine: Mutex<SloEngine>,
    /// Modeled nanoseconds: the max over all shards' cycle clocks.
    clock_ns: AtomicU64,
    pages: AtomicU64,
    warns: AtomicU64,
    latency_threshold_us: u64,
    /// Supervisor restarts (robustness counters, surfaced on `/slo` so
    /// a burn can be attributed to fault recovery at a glance).
    restarts: AtomicU64,
    /// Requests answered `Retryable` (drained or refused, not executed).
    retryable: AtomicU64,
    /// Requests shed past their deadline budget.
    deadline_exceeded: AtomicU64,
    /// Hedged duplicates refused by the dedup ring.
    hedge_duplicates: AtomicU64,
}

impl ServerSlo {
    /// An accountant enforcing the given objectives.
    pub fn new(objectives: Objectives) -> ServerSlo {
        let latency_threshold_us = objectives.latency_threshold_us;
        ServerSlo {
            engine: Mutex::new(SloEngine::new(objectives)),
            clock_ns: AtomicU64::new(0),
            pages: AtomicU64::new(0),
            warns: AtomicU64::new(0),
            latency_threshold_us,
            restarts: AtomicU64::new(0),
            retryable: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            hedge_duplicates: AtomicU64::new(0),
        }
    }

    /// Latency SLO threshold in µs — workers classify each reply
    /// against this without taking the engine lock.
    pub fn latency_threshold_us(&self) -> u64 {
        self.latency_threshold_us
    }

    /// Couples a firing correctness page to the shard degrade flags
    /// (the same flags `ResilientPipeline` polls).
    pub fn set_degrade_signals(&self, flags: Vec<Arc<AtomicBool>>) {
        self.engine
            .lock()
            .expect("slo engine lock")
            .set_degrade_signals(flags);
    }

    /// Folds a shard's modeled clock into the fleet clock and returns
    /// the current fleet reading.
    fn advance_clock(&self, now_ns: u64) -> u64 {
        self.clock_ns.fetch_max(now_ns, Ordering::Relaxed);
        self.clock_ns.load(Ordering::Relaxed)
    }

    /// Records `n` shed requests against the availability budget.
    /// Sheds happen on connection threads with no cycle clock of their
    /// own, so they are stamped with the current fleet clock.
    pub fn record_shed(&self, n: u64) {
        let now = self.clock_ns.load(Ordering::Relaxed);
        let mut engine = self.engine.lock().expect("slo engine lock");
        engine.record_availability(now, 0, n);
        engine.evaluate(now);
        self.cache_firing(&engine);
    }

    /// Feeds one batch's worth of evidence from a shard worker and
    /// re-evaluates every burn-rate rule.
    ///
    /// `now_ns` is the shard's modeled clock (`total_cycles ×
    /// cycle_ns`); `answered` counts requests that got a reply
    /// (availability good events); `lat_(good|bad)` classify replies
    /// against the latency threshold; `corr_(good|bad)` classify ops
    /// against residue/conformance evidence.
    #[allow(clippy::similar_names)]
    pub fn observe_batch(
        &self,
        now_ns: u64,
        answered: u64,
        lat_good: u64,
        lat_bad: u64,
        corr_good: u64,
        corr_bad: u64,
    ) -> SloVerdict {
        let now = self.advance_clock(now_ns);
        let mut engine = self.engine.lock().expect("slo engine lock");
        engine.record_availability(now, answered, 0);
        engine.record_latency(now, lat_good, lat_bad);
        engine.record_correctness(now, corr_good, corr_bad);
        engine.evaluate(now);
        self.cache_firing(&engine)
    }

    fn cache_firing(&self, engine: &SloEngine) -> SloVerdict {
        let verdict = SloVerdict {
            pages_firing: engine.pages_firing() as u64,
            warns_firing: engine.warns_firing() as u64,
        };
        self.pages.store(verdict.pages_firing, Ordering::Relaxed);
        self.warns.store(verdict.warns_firing, Ordering::Relaxed);
        verdict
    }

    /// Records a supervisor restart plus the `drained` queued requests
    /// it evacuated into `Retryable` answers. A drained request never
    /// got a real answer: it burns availability budget like a shed.
    pub fn record_restart(&self, drained: u64) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        self.retryable.fetch_add(drained, Ordering::Relaxed);
        if drained > 0 {
            let now = self.clock_ns.load(Ordering::Relaxed);
            let mut engine = self.engine.lock().expect("slo engine lock");
            engine.record_availability(now, 0, drained);
            engine.evaluate(now);
            self.cache_firing(&engine);
        }
    }

    /// Records `n` requests answered `Retryable` outside a restart
    /// drain (in-flight losses, deposed-worker refusals) against the
    /// availability budget.
    pub fn record_retryable(&self, n: u64) {
        self.retryable.fetch_add(n, Ordering::Relaxed);
        if n > 0 {
            let now = self.clock_ns.load(Ordering::Relaxed);
            let mut engine = self.engine.lock().expect("slo engine lock");
            engine.record_availability(now, 0, n);
            engine.evaluate(now);
            self.cache_firing(&engine);
        }
    }

    /// Records `n` requests shed past their deadline budget. A
    /// deadline shed is an availability-bad event: the service declined
    /// to answer usefully.
    pub fn record_deadline_exceeded(&self, n: u64) {
        self.deadline_exceeded.fetch_add(n, Ordering::Relaxed);
        if n > 0 {
            let now = self.clock_ns.load(Ordering::Relaxed);
            let mut engine = self.engine.lock().expect("slo engine lock");
            engine.record_availability(now, 0, n);
            engine.evaluate(now);
            self.cache_firing(&engine);
        }
    }

    /// Records a refused hedge duplicate. Counter only: the client
    /// already has (or will get) the first copy's answer, so the
    /// request was served — no budget burns.
    pub fn record_hedge_duplicate(&self) {
        self.hedge_duplicates.fetch_add(1, Ordering::Relaxed);
    }

    /// Supervisor restarts recorded so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Firing counts without taking the engine lock.
    pub fn verdict(&self) -> SloVerdict {
        SloVerdict {
            pages_firing: self.pages.load(Ordering::Relaxed),
            warns_firing: self.warns.load(Ordering::Relaxed),
        }
    }

    /// Full status document (`/slo`): per-objective burn rates, budget
    /// consumption, rule states, recent alert transitions, and the
    /// robustness counters (restarts, retryable, deadline sheds, hedge
    /// duplicates) so a burning budget is attributable to fault
    /// recovery without leaving the endpoint.
    pub fn status_json(&self) -> Json {
        let now = self.clock_ns.load(Ordering::Relaxed);
        let status = self.engine.lock().expect("slo engine lock").status(now);
        status
            .set("restarts", self.restarts.load(Ordering::Relaxed))
            .set("retryable", self.retryable.load(Ordering::Relaxed))
            .set(
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            )
            .set(
                "hedge_duplicates",
                self.hedge_duplicates.load(Ordering::Relaxed),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn observe_batch_keeps_the_clock_monotonic_across_shards() {
        let slo = ServerSlo::new(Objectives::demo());
        slo.observe_batch(5_000, 10, 10, 0, 10, 0);
        // A slower shard reporting an older clock must not rewind it.
        slo.observe_batch(1_000, 10, 10, 0, 10, 0);
        let status = slo.status_json();
        assert_eq!(
            status.get("modeled_now_ns").and_then(Json::as_u64),
            Some(5_000)
        );
    }

    #[test]
    fn shed_storm_fires_an_availability_page() {
        let slo = ServerSlo::new(Objectives::demo());
        // A healthy prefill across the demo long window, then a storm
        // of sheds with no answers: burn goes far beyond 14.4x.
        for tick in 0..100u64 {
            slo.observe_batch(tick * 100_000_000, 100, 100, 0, 100, 0);
        }
        assert_eq!(slo.verdict().pages_firing, 0);
        for tick in 100..140u64 {
            slo.observe_batch(tick * 100_000_000, 0, 0, 0, 0, 0);
            slo.record_shed(500);
        }
        assert!(
            slo.verdict().pages_firing >= 1,
            "status: {}",
            slo.status_json()
        );
    }

    #[test]
    fn correctness_page_flips_the_attached_degrade_flags() {
        let slo = ServerSlo::new(Objectives::demo());
        let flags: Vec<Arc<AtomicBool>> =
            (0..2).map(|_| Arc::new(AtomicBool::new(false))).collect();
        slo.set_degrade_signals(flags.clone());
        for tick in 0..100u64 {
            slo.observe_batch(tick * 100_000_000, 100, 100, 0, 0, 100);
        }
        assert!(slo.verdict().pages_firing >= 1);
        for flag in &flags {
            assert!(flag.load(Ordering::Relaxed), "degrade flag should latch");
        }
    }
}
