//! Request-scoped observability: the sampling policy, per-shard trace
//! rings, and per-shard tail-latency exemplars — the state behind the
//! `/trace/{id}` and `/exemplars` endpoints.
//!
//! One [`ServerObs`] lives per server. Connection threads consult it
//! twice per request: at submit time to decide whether the request is
//! sampled (client-requested via the wire [`TraceContext`] extension,
//! or server-initiated every `sample_every`-th untraced request), and
//! at write-back time to record the finished [`RequestTrace`] into the
//! executing shard's ring and exemplar set. Unsampled requests touch
//! one relaxed atomic — the "off by default, ~free when off" telemetry
//! rule, applied to tracing.
//!
//! [`TraceContext`]: crate::protocol::TraceContext

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use vlsa_telemetry::{ExemplarSet, Json};
use vlsa_trace::{RequestTrace, TraceRing};

/// Sampling and retention knobs for [`ServerObs`].
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Server-initiated sampling: every Nth request *without* a client
    /// trace context gets a server-generated trace id. `0` disables
    /// self-sampling (only client-requested traces are recorded).
    pub sample_every: u64,
    /// Traces retained per shard ring (oldest evicted first).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            sample_every: 64,
            ring_capacity: 512,
        }
    }
}

/// Per-server trace state: a monotonic epoch for span timestamps, the
/// sampling counters, and one [`TraceRing`] + [`ExemplarSet`] per
/// shard.
#[derive(Debug)]
pub struct ServerObs {
    epoch: Instant,
    sample_every: u64,
    untraced_seen: AtomicU64,
    id_seq: AtomicU64,
    rings: Vec<TraceRing>,
    exemplars: Vec<ExemplarSet>,
}

/// SplitMix64: a bijection on `u64`, so distinct sequence numbers give
/// distinct (and well-scattered) trace ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ServerObs {
    /// Trace state for a pool of `shards` shards.
    pub fn new(config: ObsConfig, shards: usize) -> ServerObs {
        ServerObs {
            epoch: Instant::now(),
            sample_every: config.sample_every,
            untraced_seen: AtomicU64::new(0),
            id_seq: AtomicU64::new(0),
            rings: (0..shards)
                .map(|_| TraceRing::new(config.ring_capacity))
                .collect(),
            exemplars: (0..shards)
                .map(|_| ExemplarSet::with_default_buckets())
                .collect(),
        }
    }

    /// Microseconds since this server's trace epoch — the `start_us`
    /// base every recorded span shares.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Whether the next *untraced* request should be server-sampled.
    /// Counts every call, fires every `sample_every`-th.
    pub fn should_self_sample(&self) -> bool {
        self.sample_every > 0
            && self
                .untraced_seen
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every)
    }

    /// A fresh nonzero server-generated trace id.
    pub fn next_trace_id(&self) -> u64 {
        let id = splitmix64(self.id_seq.fetch_add(1, Ordering::Relaxed));
        if id == 0 {
            // SplitMix64 is a bijection: exactly one input maps to 0.
            0x9E37_79B9_7F4A_7C15
        } else {
            id
        }
    }

    /// Number of per-shard rings.
    pub fn shard_count(&self) -> usize {
        self.rings.len()
    }

    /// Records a finished trace into its shard's ring and feeds the
    /// shard's exemplar set with the trace's total server-side latency.
    pub fn record(&self, trace: RequestTrace) {
        let shard = trace.shard as usize;
        if shard >= self.rings.len() {
            return;
        }
        self.exemplars[shard].observe(trace.total_us(), trace.trace_id);
        self.rings[shard].record(trace);
    }

    /// Finds a trace by id, searching every shard's ring (newest first
    /// within each ring).
    pub fn lookup(&self, trace_id: u64) -> Option<RequestTrace> {
        self.rings.iter().find_map(|ring| ring.lookup(trace_id))
    }

    /// A shard's exemplar set.
    pub fn exemplars(&self, shard: usize) -> &ExemplarSet {
        &self.exemplars[shard]
    }

    /// Every shard's exemplars as one JSON document:
    /// `{"shards": [{"shard": 0, "buckets": [...]}, ...]}`.
    pub fn exemplars_json(&self) -> Json {
        let shards: Vec<Json> = self
            .exemplars
            .iter()
            .enumerate()
            .map(|(shard, set)| {
                // Graft the shard id into the set's own document.
                let doc = set.to_json();
                Json::obj().set("shard", shard as u64).set(
                    "buckets",
                    doc.get("buckets").cloned().unwrap_or(Json::Arr(Vec::new())),
                )
            })
            .collect();
        Json::obj().set("shards", Json::Arr(shards))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(trace_id: u64, shard: u16, service_us: u32) -> RequestTrace {
        RequestTrace {
            trace_id,
            shard,
            service_us,
            ..RequestTrace::default()
        }
    }

    #[test]
    fn self_sampling_fires_every_nth_request() {
        let obs = ServerObs::new(
            ObsConfig {
                sample_every: 4,
                ring_capacity: 8,
            },
            1,
        );
        let fired: Vec<bool> = (0..8).map(|_| obs.should_self_sample()).collect();
        assert_eq!(
            fired,
            vec![true, false, false, false, true, false, false, false]
        );
        let off = ServerObs::new(
            ObsConfig {
                sample_every: 0,
                ring_capacity: 8,
            },
            1,
        );
        assert!((0..8).all(|_| !off.should_self_sample()));
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let obs = ServerObs::new(ObsConfig::default(), 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = obs.next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn record_routes_to_the_shard_ring_and_exemplars() {
        let obs = ServerObs::new(ObsConfig::default(), 2);
        obs.record(trace(0xA, 0, 100));
        obs.record(trace(0xB, 1, 9_000_000));
        assert_eq!(obs.lookup(0xA).expect("shard 0").shard, 0);
        assert_eq!(obs.lookup(0xB).expect("shard 1").shard, 1);
        assert!(obs.lookup(0xC).is_none());
        // Out-of-range shard ids are dropped, not a panic.
        obs.record(trace(0xD, 9, 1));
        assert!(obs.lookup(0xD).is_none());
        assert_eq!(obs.exemplars(1).worst().expect("exemplar").trace_id, 0xB);
        let doc = Json::parse(&obs.exemplars_json().to_string()).expect("valid JSON");
        let shards = doc.get("shards").and_then(Json::as_arr).expect("arr");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[1].get("shard").and_then(Json::as_u64), Some(1));
        assert!(!shards[1]
            .get("buckets")
            .and_then(Json::as_arr)
            .expect("buckets")
            .is_empty());
    }
}
