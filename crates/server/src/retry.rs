//! Client-side resilience: retries with exponential backoff and
//! jitter, a retry *budget* so a storm of failures cannot amplify
//! itself, and optional hedged requests.
//!
//! ## Retry classes
//!
//! The wire protocol makes retry safety explicit. `Busy` and
//! `Retryable` (code 9) answers mean the request was **not executed**
//! — retrying cannot double-apply it. A timeout or torn connection is
//! ambiguous, so every retry carries a fresh `(key, seq)` hedge
//! identity when hedging is on: the server's dedup ring refuses a copy
//! of an attempt it already accepted, which makes "resend after an
//! ambiguous loss" safe too. `DeadlineExceeded` (code 10) is final by
//! definition — the budget is gone; retrying would answer even later.
//!
//! ## Retry budget
//!
//! Backoff alone synchronizes clients into retry waves. The budget
//! caps *total* retries to a fraction of total requests (plus a small
//! floor so cold starts can retry at all): when the service is mostly
//! healthy, every failure may retry; when it is mostly failing,
//! retries are denied and failures surface fast instead of tripling
//! the offered load.
//!
//! ## Hedging
//!
//! With [`RetryPolicy::hedge_after`] set, an attempt that has not
//! answered within the hedge delay sends a *copy* (same `(key, seq)`)
//! over a second connection under a different request id (so it routes
//! to a different shard). Whichever answers first wins; the server's
//! dedup ring guarantees at most one copy executes — a `DuplicateHedge`
//! answer on the hedge path means the primary copy was accepted and is
//! merely slow, so the client goes back to waiting for it.

use std::io;
use std::time::Duration;

use crate::client::{ClientError, Response, VlsaClient, DEFAULT_TIMEOUT};
use crate::error::ProtocolError;
use crate::protocol::{AddBatch, SumBatch, TraceContext};

/// Retry/hedge policy for a [`RetryClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Retries allowed as a fraction of requests issued (plus a floor
    /// of 10 so a cold start can retry at all).
    pub retry_budget_pct: f64,
    /// Send a hedged copy if an attempt has not answered within this
    /// delay; `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Stamp every attempt with this `EXT_DEADLINE` budget in
    /// microseconds; `None` sends no deadline.
    pub deadline_us: Option<u32>,
    /// Chaos hook (the `tear:every=N` fault clause): tear the primary
    /// connection mid-frame after every `N`th request sent, forcing the
    /// retry path to recover over a fresh connection.
    pub tear_every: Option<u32>,
    /// Seed for backoff jitter and hedge keys (deterministic runs).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            retry_budget_pct: 0.2,
            hedge_after: None,
            deadline_us: None,
            tear_every: None,
            seed: 0x5eed,
        }
    }
}

/// The final verdict for one logical request, after retries and hedges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Executed; the sums arrived.
    Answered {
        /// The server's answer.
        sums: SumBatch,
        /// Attempts it took (1 = first try).
        attempts: u32,
        /// Whether the winning answer came over the hedge connection.
        hedged_won: bool,
    },
    /// Shed (`Busy`) on the final attempt, or the retry budget denied
    /// further attempts after a shed.
    Shed,
    /// The server shed it past its deadline budget — final, no retry.
    DeadlineExceeded,
    /// Retries exhausted (or denied by the budget) without an answer.
    Failed(String),
}

/// Counters a [`RetryClient`] accumulates across requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Logical requests issued.
    pub requests: u64,
    /// Retry attempts actually sent (not counting first attempts).
    pub retries: u64,
    /// Requests that failed first but were answered by a retry.
    pub retried_successfully: u64,
    /// Hedged copies sent.
    pub hedges: u64,
    /// Requests whose winning answer came over the hedge connection.
    pub hedge_wins: u64,
    /// `DeadlineExceeded` verdicts received.
    pub deadline_exceeded: u64,
    /// Typed `Retryable` answers seen (worker loss / restart drain).
    pub retryable_seen: u64,
    /// Retries denied by the retry budget.
    pub budget_denied: u64,
    /// Connections deliberately torn by the chaos hook.
    pub torn: u64,
}

/// A [`VlsaClient`] wrapped in retry, backoff, budget, and hedging
/// machinery. Reconnects transparently after transport failures.
#[derive(Debug)]
pub struct RetryClient {
    addr: String,
    primary: Option<VlsaClient>,
    hedge_conn: Option<VlsaClient>,
    policy: RetryPolicy,
    rng: u64,
    request_id_base: u64,
    next_offset: u64,
    id_stride: u64,
    sends: u64,
    stats: RetryStats,
}

impl RetryClient {
    /// Connects to `addr` with the given policy. The address is kept
    /// for reconnects after torn connections.
    ///
    /// # Errors
    ///
    /// Propagates the initial connection failure.
    pub fn connect(addr: &str, policy: RetryPolicy) -> io::Result<RetryClient> {
        let primary = VlsaClient::connect(addr)?;
        Ok(RetryClient {
            addr: addr.to_string(),
            primary: Some(primary),
            hedge_conn: None,
            policy,
            rng: policy.seed | 1,
            request_id_base: 0,
            next_offset: 0,
            id_stride: 1,
            sends: 0,
            stats: RetryStats::default(),
        })
    }

    /// Seeds the request-id sequence (`base + n·stride`) — the shard
    /// routing key, same contract as
    /// [`VlsaClient::with_request_id_base`].
    pub fn with_request_ids(mut self, base: u64, stride: u64) -> RetryClient {
        self.request_id_base = base;
        self.id_stride = stride.max(1);
        self
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// One logical request: retries, backoff, budget, and hedging per
    /// the policy. Transport failures are retried (with reconnects) up
    /// to `max_attempts`; only a final, unretryable transport failure
    /// surfaces as `Err`.
    ///
    /// # Errors
    ///
    /// Hard protocol violations and unretryable server errors.
    pub fn request(&mut self, nbits: u8, ops: &[(u64, u64)]) -> Result<Outcome, ClientError> {
        self.request_traced(nbits, ops, None)
    }

    /// [`RetryClient::request`] with a trace context on every attempt.
    ///
    /// # Errors
    ///
    /// Hard protocol violations and unretryable server errors.
    pub fn request_traced(
        &mut self,
        nbits: u8,
        ops: &[(u64, u64)],
        trace: Option<TraceContext>,
    ) -> Result<Outcome, ClientError> {
        self.stats.requests += 1;
        let hedge_key = self.next_u64() | 1; // nonzero by construction
        let mut last_failure = String::new();
        let mut attempt = 0u32;
        while attempt < self.policy.max_attempts {
            attempt += 1;
            if attempt > 1 {
                if !self.budget_allows() {
                    self.stats.budget_denied += 1;
                    return Ok(Outcome::Failed(format!(
                        "retry budget denied attempt {attempt}: {last_failure}"
                    )));
                }
                self.stats.retries += 1;
                std::thread::sleep(self.backoff(attempt));
            }
            let request_id = self.request_id_base + self.next_offset * self.id_stride;
            self.next_offset += 1;
            let mut request = AddBatch::new(request_id, nbits, ops.to_vec());
            if let Some(tc) = trace {
                request = request.with_trace(tc);
            }
            if let Some(budget_us) = self.policy.deadline_us {
                request = request.with_deadline_us(budget_us);
            }
            if self.policy.hedge_after.is_some() {
                // Fresh seq per attempt: an ambiguous loss is resent as
                // a new attempt the dedup ring will accept, while a
                // same-seq copy (the hedge) cannot double-execute.
                request = request.with_hedge(hedge_key, attempt);
            }
            match self.attempt_once(&request) {
                Ok(Response::Sums(sums)) => {
                    if attempt > 1 {
                        self.stats.retried_successfully += 1;
                    }
                    return Ok(Outcome::Answered {
                        sums,
                        attempts: attempt,
                        hedged_won: false,
                    });
                }
                Ok(Response::Busy(busy)) => {
                    last_failure = format!("shed by shard {} (busy)", busy.shard);
                }
                Ok(Response::Retryable(e)) => {
                    self.stats.retryable_seen += 1;
                    last_failure = e.detail;
                }
                Ok(Response::DeadlineExceeded(_)) => {
                    self.stats.deadline_exceeded += 1;
                    return Ok(Outcome::DeadlineExceeded);
                }
                Err(HedgedError::HedgeWon { sums }) => {
                    if attempt > 1 {
                        self.stats.retried_successfully += 1;
                    }
                    self.stats.hedge_wins += 1;
                    return Ok(Outcome::Answered {
                        sums,
                        attempts: attempt,
                        hedged_won: true,
                    });
                }
                Err(HedgedError::Client(ClientError::Timeout)) => {
                    // The connection has an orphaned response in
                    // flight; a fresh connection is cheaper than
                    // re-synchronizing around it.
                    self.primary = None;
                    last_failure = "timed out".to_string();
                }
                Err(HedgedError::Client(ClientError::Disconnected | ClientError::Io(_))) => {
                    self.primary = None;
                    last_failure = "connection lost".to_string();
                }
                Err(HedgedError::Client(e)) => return Err(e),
            }
        }
        Ok(match last_failure.as_str() {
            s if s.contains("busy") => Outcome::Shed,
            _ => Outcome::Failed(format!(
                "{} attempts exhausted: {last_failure}",
                self.policy.max_attempts
            )),
        })
    }

    /// One attempt: send on the primary, wait (hedging midway when
    /// configured), and classify.
    fn attempt_once(&mut self, request: &AddBatch) -> Result<Response, HedgedError> {
        let primary = self.primary_conn().map_err(ClientError::Io)?;
        primary.send_request(request).map_err(HedgedError::Client)?;
        self.sends += 1;
        if let Some(every) = self.policy.tear_every {
            if self.sends.is_multiple_of(u64::from(every.max(1))) {
                // The request is in flight; tearing here makes its fate
                // ambiguous — exactly the loss the retry/hedge identity
                // machinery must make safe to resend.
                self.stats.torn += 1;
                if let Some(client) = self.primary.take() {
                    client.tear();
                }
                return Err(HedgedError::Client(ClientError::Disconnected));
            }
        }
        let Some(hedge_after) = self.policy.hedge_after else {
            let primary = self.primary.as_mut().expect("connected above");
            return primary
                .read_response(request.request_id)
                .map_err(HedgedError::Client);
        };
        // Hedged wait: give the primary `hedge_after`, then race a copy
        // over the second connection.
        let primary = self.primary.as_mut().expect("connected above");
        let _ = primary.set_read_timeout(Some(hedge_after));
        let first = primary.read_response(request.request_id);
        let _ = primary.set_read_timeout(Some(DEFAULT_TIMEOUT));
        match first {
            Err(ClientError::Timeout) => self.hedge(request),
            other => other.map_err(HedgedError::Client),
        }
    }

    /// Sends the hedged copy (same `(key, seq)`, different request id →
    /// different shard) and resolves the race.
    fn hedge(&mut self, request: &AddBatch) -> Result<Response, HedgedError> {
        self.stats.hedges += 1;
        let copy_id = request.request_id + 1; // adjacent id: another shard on multi-shard pools
        let copy = AddBatch {
            request_id: copy_id,
            ..request.clone()
        };
        let hedged: Result<Response, ClientError> = (|| {
            if self.hedge_conn.is_none() {
                self.hedge_conn = Some(VlsaClient::connect(&self.addr)?);
            }
            let conn = self.hedge_conn.as_mut().expect("connected above");
            conn.send_request(&copy)?;
            conn.read_response(copy_id)
        })();
        match hedged {
            Ok(Response::Sums(sums)) => {
                // The copy executed: the primary's copy never reached
                // the server. The primary connection may still produce
                // a late frame; drop it rather than re-sync.
                self.primary = None;
                return Err(HedgedError::HedgeWon { sums });
            }
            Err(ClientError::Server(e)) if e.code == ProtocolError::CODE_DUPLICATE_HEDGE => {
                // The primary's copy was accepted and is just slow —
                // fall through and finish waiting for it.
            }
            // Any other hedge-path verdict (busy, torn hedge conn, …):
            // the hedge is best-effort; fall back to the primary.
            Ok(_) | Err(_) => {
                self.hedge_conn = None;
            }
        }
        let primary = self.primary.as_mut().expect("connected in attempt_once");
        primary
            .read_response(request.request_id)
            .map_err(HedgedError::Client)
    }

    fn primary_conn(&mut self) -> io::Result<&mut VlsaClient> {
        if self.primary.is_none() {
            self.primary = Some(VlsaClient::connect(&self.addr)?);
        }
        Ok(self.primary.as_mut().expect("just connected"))
    }

    /// Whether the retry budget covers one more retry: total retries
    /// stay under `pct × requests + 10`.
    fn budget_allows(&self) -> bool {
        let allowed = self
            .policy
            .retry_budget_pct
            .mul_add(self.stats.requests as f64, 10.0);
        (self.stats.retries as f64) < allowed
    }

    /// Exponential backoff with multiplicative jitter in `[0.5, 1.0]`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(2).min(16);
        let base = self.policy.base_backoff.saturating_mul(1 << exp);
        let capped = base.min(self.policy.max_backoff);
        let jitter = 0.5 + 0.5 * self.next_f64();
        capped.mul_f64(jitter)
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, good enough for jitter and keys.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Internal: an attempt's failure, or a win that arrived over the
/// hedge connection.
enum HedgedError {
    Client(ClientError),
    HedgeWon { sums: SumBatch },
}

impl From<ClientError> for HedgedError {
    fn from(e: ClientError) -> HedgedError {
        HedgedError::Client(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let mut c = RetryClient {
            addr: String::new(),
            primary: None,
            hedge_conn: None,
            policy: RetryPolicy::default(),
            rng: 7,
            request_id_base: 0,
            next_offset: 0,
            id_stride: 1,
            sends: 0,
            stats: RetryStats::default(),
        };
        let b2 = c.backoff(2);
        let b5 = c.backoff(5);
        assert!(b2 >= Duration::from_millis(1), "{b2:?}");
        assert!(b2 <= Duration::from_millis(2), "{b2:?}");
        assert!(b5 >= Duration::from_millis(8), "jitter floor, got {b5:?}");
        for attempt in 2..20 {
            assert!(c.backoff(attempt) <= c.policy.max_backoff);
        }
    }

    #[test]
    fn budget_denies_when_retries_outrun_requests() {
        let mut c = RetryClient {
            addr: String::new(),
            primary: None,
            hedge_conn: None,
            policy: RetryPolicy {
                retry_budget_pct: 0.1,
                ..RetryPolicy::default()
            },
            rng: 7,
            request_id_base: 0,
            next_offset: 0,
            id_stride: 1,
            sends: 0,
            stats: RetryStats::default(),
        };
        // Cold start: the floor of 10 admits early retries.
        c.stats.requests = 1;
        assert!(c.budget_allows());
        // 100 requests at 10% + floor 10 → 20 retries allowed.
        c.stats.requests = 100;
        c.stats.retries = 19;
        assert!(c.budget_allows());
        c.stats.retries = 20;
        assert!(!c.budget_allows());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = |seed| RetryClient {
            addr: String::new(),
            primary: None,
            hedge_conn: None,
            policy: RetryPolicy {
                seed,
                ..RetryPolicy::default()
            },
            rng: seed | 1,
            request_id_base: 0,
            next_offset: 0,
            id_stride: 1,
            sends: 0,
            stats: RetryStats::default(),
        };
        let (mut a, mut b) = (mk(42), mk(42));
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = mk(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
