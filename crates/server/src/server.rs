//! The TCP front end: accept loop, per-connection protocol loop, and
//! the `/metrics` scrape mount.
//!
//! Connections are cheap threads (the protocol is synchronous per
//! connection — one request in flight each; concurrency comes from many
//! connections feeding the shared shard queues, which is where batching
//! happens). The accept loop and its graceful flag-and-wake shutdown
//! come from `vlsa_monitor::AcceptLoop`; the HTTP `/metrics` endpoint
//! is `vlsa_monitor::ScrapeServer` mounted over the process telemetry
//! registry — one socket implementation in the whole tree.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use vlsa_core::SpecError;
use vlsa_monitor::{exposition, AcceptLoop, ScrapeServer};
use vlsa_telemetry::names::server as metric;

use crate::error::ProtocolError;
use crate::framing::{read_frame, write_frame, ReadError};
use crate::protocol::Frame;
use crate::shard::{ShardConfig, ShardPool};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Wire-protocol listen address (`"127.0.0.1:0"` for ephemeral).
    pub addr: String,
    /// Number of pipeline shards.
    pub shards: usize,
    /// Per-shard configuration.
    pub shard: ShardConfig,
    /// Mount a `/metrics` + `/snapshot` HTTP endpoint (ephemeral port,
    /// see [`VlsaServer::metrics_addr`]).
    pub metrics: bool,
    /// Idle read timeout per connection; bounds how long shutdown
    /// waits for connection threads to notice the stop flag.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 1,
            shard: ShardConfig::default(),
            metrics: false,
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Invalid adder width/window in the shard config.
    Spec(SpecError),
    /// Socket setup failed.
    Io(io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Spec(e) => write!(f, "invalid shard config: {e}"),
            ServerError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SpecError> for ServerError {
    fn from(e: SpecError) -> ServerError {
        ServerError::Spec(e)
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

/// Connection-level counters (shard-agnostic), shared with observers
/// without requiring telemetry.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Malformed/unexpected frames answered with a typed error frame.
    pub protocol_errors: AtomicU64,
}

/// The running service: accept loop + shard pool + optional `/metrics`.
pub struct VlsaServer {
    accept: AcceptLoop,
    scrape: Option<ScrapeServer>,
    pool: Arc<ShardPool>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl VlsaServer {
    /// Binds the wire-protocol listener (and the `/metrics` endpoint if
    /// configured) and starts the shard workers.
    ///
    /// # Errors
    ///
    /// [`ServerError::Spec`] for an invalid shard config,
    /// [`ServerError::Io`] for socket failures.
    pub fn start(config: ServerConfig) -> Result<VlsaServer, ServerError> {
        let pool = Arc::new(ShardPool::start(&config.shard, config.shards)?);
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let scrape = if config.metrics {
            let registry = vlsa_telemetry::recorder();
            let snap = Arc::clone(&registry);
            Some(ScrapeServer::start(
                "127.0.0.1:0",
                Arc::new(move || exposition(&registry)),
                Arc::new(move || snap.snapshot().to_string()),
            )?)
        } else {
            None
        };
        let accept = AcceptLoop::spawn("vlsa-server-accept", &config.addr, {
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let read_timeout = config.read_timeout;
            Arc::new(move |stream: TcpStream| {
                let pool = Arc::clone(&pool);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                stats.connections.fetch_add(1, Ordering::Relaxed);
                if vlsa_telemetry::is_enabled() {
                    vlsa_telemetry::recorder()
                        .counter(metric::CONNECTIONS)
                        .incr();
                }
                let handle = std::thread::Builder::new()
                    .name("vlsa-conn".to_string())
                    .spawn(move || serve_connection(stream, &pool, &stats, &stop, read_timeout));
                if let Ok(handle) = handle {
                    // Handles of finished connections accumulate until
                    // shutdown; fine at bench scale, and join-at-exit
                    // guarantees no thread outlives the server.
                    conns.lock().expect("conns lock").push(handle);
                }
            })
        })?;
        Ok(VlsaServer {
            accept,
            scrape,
            pool,
            stats,
            stop,
            conns,
        })
    }

    /// The wire-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.accept.addr()
    }

    /// The `/metrics` endpoint address, when mounted.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::addr)
    }

    /// The shard pool (stats, degrade flags).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Connection-level counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Graceful stop: no new connections, accepted requests drain and
    /// get their replies, then workers and connection threads join.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.accept.shutdown();
        // Closing the queues lets workers drain everything already
        // accepted, so blocked connections get their replies before
        // their threads notice the stop flag.
        self.pool.shutdown();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(scrape) = &mut self.scrape {
            scrape.shutdown();
        }
    }
}

impl Drop for VlsaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for VlsaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VlsaServer")
            .field("addr", &self.addr())
            .field("metrics_addr", &self.metrics_addr())
            .field("pool", &self.pool)
            .finish()
    }
}

/// One connection's protocol loop: read a frame, answer it, repeat.
/// Every exit path is clean — a typed error frame where the protocol
/// allows one, then teardown of *this* connection only.
fn serve_connection(
    mut stream: TcpStream,
    pool: &ShardPool,
    stats: &ServerStats,
    stop: &AtomicBool,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let note_protocol_error = |stats: &ServerStats| {
        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        if vlsa_telemetry::is_enabled() {
            vlsa_telemetry::recorder()
                .counter(metric::PROTOCOL_ERRORS)
                .incr();
        }
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match read_frame(&mut stream) {
            Ok(Frame::AddBatch(request)) => {
                let (tx, rx) = channel();
                let response = match pool.submit(request, tx) {
                    Ok(()) => match rx.recv() {
                        Ok(frame) => frame,
                        // The worker dropped the reply sender without
                        // answering: shutdown raced the request.
                        Err(_) => Frame::Error(ProtocolError::Shutdown.to_frame()),
                    },
                    Err(frame) => *frame,
                };
                if write_frame(&mut stream, &response).is_err() {
                    break;
                }
            }
            Ok(frame) => {
                // Well-formed, but clients may only send requests.
                note_protocol_error(stats);
                let err = ProtocolError::UnexpectedFrame {
                    frame_type: frame.frame_type(),
                };
                let _ = write_frame(&mut stream, &Frame::Error(err.to_frame()));
                break;
            }
            Err(ReadError::Eof) => break,
            Err(ReadError::IdleTimeout) => continue,
            // Mid-frame truncation or a dead socket: nothing to answer.
            Err(ReadError::Io(_)) => break,
            Err(ReadError::Protocol(e)) => {
                // The stream cannot be re-synchronized after a framing
                // error; answer with the typed error and tear down.
                note_protocol_error(stats);
                let _ = write_frame(&mut stream, &Frame::Error(e.to_frame()));
                break;
            }
        }
    }
}
