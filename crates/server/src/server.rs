//! The TCP front end: accept loop, per-connection protocol loop, and
//! the HTTP observability mount.
//!
//! Connections are cheap threads (the protocol is synchronous per
//! connection — one request in flight each; concurrency comes from many
//! connections feeding the shared shard queues, which is where batching
//! happens). The accept loop and its graceful flag-and-wake shutdown
//! come from `vlsa_monitor::AcceptLoop`; the HTTP endpoints are
//! `vlsa_monitor::ScrapeServer` routes — one socket implementation in
//! the whole tree:
//!
//! | route | serves |
//! |---|---|
//! | `/metrics` | Prometheus exposition of the telemetry registry |
//! | `/snapshot` | build info + the registry as JSON |
//! | `/exemplars` | per-shard worst-request trace ids per latency bucket |
//! | `/trace/{id}` | a sampled request's span tree (`?format=chrome` for a Chrome-trace document) |
//! | `/profile?seconds=N&hz=H` | folded stacks from the sampling profiler (`?format=json` for JSON; one session at a time, 429 otherwise) |
//! | `/slo` | error-budget and burn-rate status per objective |
//! | `/events?n=N` | the newest N canonical wide events, JSONL |
//! | `/query?expr=&range=` | range evaluation over the embedded metrics history (`rate`, `increase`, `avg/max_over_time`, `quantile`) |
//! | `/series` | per-series retention/compression stats of the embedded store |
//! | `/healthz` | liveness — 200 whenever the process can answer |
//! | `/readyz` | readiness — 503 while shards are degraded or an SLO page is firing |

use std::collections::{HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vlsa_chaos::ChaosInjector;
use vlsa_core::SpecError;
use vlsa_monitor::{
    exposition, percent_decode, query_param, AcceptLoop, HttpResponse, Route, ScrapeServer,
};
use vlsa_telemetry::names::{labeled_multi, recorded, server as metric};
use vlsa_telemetry::Json;
use vlsa_tsdb::{eval_range, parse_duration_us, range_response_json, Expr, QueryError};
use vlsa_tsdb::{RecordingRule, Tsdb, TsdbConfig};

use vlsa_slo::Objectives;

use crate::clock::ModeledClock;
use crate::error::ProtocolError;
use crate::events::{EventLog, EventLogConfig};
use crate::framing::{read_frame_bounded, write_frame, ReadError};
use crate::obs::{ObsConfig, ServerObs};
use crate::protocol::Frame;
use crate::shard::{JobTrace, PoolHooks, Reply, ShardConfig, ShardPool};
use crate::slo::ServerSlo;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Wire-protocol listen address (`"127.0.0.1:0"` for ephemeral).
    pub addr: String,
    /// Number of pipeline shards.
    pub shards: usize,
    /// Per-shard configuration.
    pub shard: ShardConfig,
    /// Mount the HTTP observability endpoints (`/metrics`, `/snapshot`,
    /// `/exemplars`, `/trace/{id}`, `/profile`) on an ephemeral port,
    /// see [`VlsaServer::metrics_addr`].
    pub metrics: bool,
    /// Request-tracing sampling and retention policy. Tracing state
    /// always exists (client-requested traces are always honored);
    /// `sample_every: 0` turns off server-initiated sampling.
    pub trace: ObsConfig,
    /// Idle read timeout per connection; bounds how long shutdown
    /// waits for connection threads to notice the stop flag.
    pub read_timeout: Duration,
    /// Write timeout per connection socket: a peer that stops draining
    /// its receive buffer cannot pin a connection thread forever.
    pub write_timeout: Duration,
    /// Total idle lifetime before a connection is reaped. A reaped
    /// connection simply closes (there is no frame to answer); clients
    /// reconnect. Zero disables reaping.
    pub idle_max: Duration,
    /// Per-frame feed deadline: once a frame's first byte arrives, the
    /// rest must arrive within this budget or the connection is torn
    /// down with a typed `SlowFrame` error (slow-loris defense).
    pub frame_deadline: Duration,
    /// Fault injector threaded into the shard workers and the reply
    /// path; `None` (production) costs nothing.
    pub chaos: Option<Arc<ChaosInjector>>,
    /// SLO objectives to enforce; `Some` wires an error-budget
    /// accountant into the shard workers and the submit path, serves
    /// `/slo`, and couples a firing correctness page to the shard
    /// degrade flags.
    pub slo: Option<Objectives>,
    /// Wide-event retention and rate-limit policy; `Some` makes every
    /// shard worker emit one canonical event per batch, served at
    /// `/events`.
    pub events: Option<EventLogConfig>,
    /// Mirror accepted wide events to a JSONL file (requires
    /// [`ServerConfig::events`]).
    pub events_file: Option<PathBuf>,
    /// Embedded time-series store policy. When `Some` *and*
    /// [`ServerConfig::metrics`] is on, the server self-ingests every
    /// telemetry registry snapshot into a `vlsa-tsdb` store on a
    /// modeled-time cadence, evaluates the default recording rules on
    /// each tick, and mounts `/query` and `/series`. On by default:
    /// turning metrics on buys history, not just instantaneous scrape.
    pub tsdb: Option<TsdbConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 1,
            shard: ShardConfig::default(),
            metrics: false,
            trace: ObsConfig::default(),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(2),
            idle_max: Duration::from_secs(60),
            frame_deadline: Duration::from_secs(2),
            chaos: None,
            slo: None,
            events: None,
            events_file: None,
            tsdb: Some(TsdbConfig::default()),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Invalid adder width/window in the shard config.
    Spec(SpecError),
    /// Socket setup failed.
    Io(io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Spec(e) => write!(f, "invalid shard config: {e}"),
            ServerError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SpecError> for ServerError {
    fn from(e: SpecError) -> ServerError {
        ServerError::Spec(e)
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

/// Connection-level counters (shard-agnostic), shared with observers
/// without requiring telemetry.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Malformed/unexpected frames answered with a typed error frame.
    pub protocol_errors: AtomicU64,
    /// Connections closed by the idle reaper.
    pub idle_reaped: AtomicU64,
    /// Connections torn down for feeding a frame slower than the
    /// per-frame deadline.
    pub slow_frames: AtomicU64,
    /// Hedged copies refused because their `(key, seq)` was already
    /// accepted.
    pub hedge_duplicates: AtomicU64,
}

/// Server-side dedup for hedged requests: the first copy of a
/// `(key, seq)` executes, later copies are refused with a typed
/// `DuplicateHedge` frame without occupying a batch slot. A bounded
/// FIFO of recent keys — hedges race each other by milliseconds, so a
/// small window is enough, and an evicted key merely means a very late
/// duplicate executes twice (same sums, never wrong answers).
/// A hedge identity on the wire: the idempotency key and attempt seq.
type HedgeId = (u64, u32);

#[derive(Debug)]
struct HedgeDedup {
    cap: usize,
    inner: Mutex<(HashSet<HedgeId>, VecDeque<HedgeId>)>,
}

impl HedgeDedup {
    fn new(cap: usize) -> HedgeDedup {
        HedgeDedup {
            cap,
            inner: Mutex::new((HashSet::new(), VecDeque::new())),
        }
    }

    /// Whether this `(key, seq)` is the first copy seen (and is now
    /// registered).
    fn first_copy(&self, key: u64, seq: u32) -> bool {
        let mut guard = self.inner.lock().expect("hedge dedup lock");
        let (seen, order) = &mut *guard;
        if !seen.insert((key, seq)) {
            return false;
        }
        order.push_back((key, seq));
        if order.len() > self.cap {
            if let Some(oldest) = order.pop_front() {
                seen.remove(&oldest);
            }
        }
        true
    }
}

/// The running service: accept loop + shard pool + trace state +
/// optional HTTP observability mount.
pub struct VlsaServer {
    accept: AcceptLoop,
    scrape: Option<ScrapeServer>,
    pool: Arc<ShardPool>,
    stats: Arc<ServerStats>,
    obs: Arc<ServerObs>,
    slo: Option<Arc<ServerSlo>>,
    events: Option<Arc<EventLog>>,
    tsdb: Option<Arc<Tsdb>>,
    ingest: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl VlsaServer {
    /// Binds the wire-protocol listener (and the HTTP observability
    /// endpoints if configured) and starts the shard workers.
    ///
    /// # Errors
    ///
    /// [`ServerError::Spec`] for an invalid shard config,
    /// [`ServerError::Io`] for socket failures.
    pub fn start(config: ServerConfig) -> Result<VlsaServer, ServerError> {
        let slo = config.slo.clone().map(|obj| Arc::new(ServerSlo::new(obj)));
        // One modeled clock for the whole process: folded forward by
        // every shard batch, read by the event log's rate limiter and
        // the tsdb self-scraper.
        let clock = Arc::new(ModeledClock::new());
        let events = match (config.events, &config.events_file) {
            (Some(ev), Some(path)) => Some(Arc::new(EventLog::with_clock_and_file(
                ev,
                Arc::clone(&clock),
                path,
            )?)),
            (Some(ev), None) => Some(Arc::new(EventLog::with_clock(ev, Arc::clone(&clock)))),
            (None, _) => None,
        };
        let hooks = PoolHooks {
            slo: slo.clone(),
            events: events.clone(),
            chaos: config.chaos.clone(),
            clock: Arc::clone(&clock),
        };
        let pool = Arc::new(ShardPool::start_with_hooks(
            &config.shard,
            config.shards,
            hooks,
        )?);
        if let Some(slo) = &slo {
            // A firing correctness page flips every shard to the exact
            // adder — the same flags the conformance monitor drives.
            slo.set_degrade_signals(
                (0..pool.shard_count())
                    .map(|i| pool.degrade_flag(i))
                    .collect(),
            );
        }
        let stats = Arc::new(ServerStats::default());
        let obs = Arc::new(ServerObs::new(config.trace, config.shards));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        if vlsa_telemetry::is_enabled() {
            // One constant-1 gauge whose labels carry the build/config
            // identity, the Prometheus `build_info` convention.
            vlsa_telemetry::recorder()
                .gauge(&labeled_multi(
                    metric::BUILD_INFO,
                    &[
                        ("version", env!("CARGO_PKG_VERSION")),
                        ("nbits", &config.shard.nbits.to_string()),
                        ("window", &config.shard.window.to_string()),
                        ("shards", &config.shards.to_string()),
                        ("cycle_ns", &config.shard.cycle_ns.to_string()),
                        ("backend", config.shard.backend.as_str()),
                    ],
                ))
                .set(1.0);
        }
        // The embedded metrics history rides with the HTTP mount: the
        // store exists to be queried, and the scrape loop's registry is
        // only populated when telemetry is recording anyway.
        let tsdb = match (&config.tsdb, config.metrics) {
            (Some(cfg), true) => {
                // Zero baselines must exist before the first ingest
                // tick, or increase() over the run misses early ops.
                crate::shard::warm_metrics(config.shards);
                let db = Arc::new(Tsdb::new(*cfg));
                for (name, expr) in default_recording_rules() {
                    db.add_rule(RecordingRule {
                        name: name.to_string(),
                        expr: expr.to_string(),
                    })
                    .expect("default recording rules parse");
                }
                Some(db)
            }
            _ => None,
        };
        let ingest = tsdb
            .as_ref()
            .map(|db| spawn_ingest(Arc::clone(db), Arc::clone(&clock), Arc::clone(&stop)));
        let scrape = if config.metrics {
            Some(ScrapeServer::with_routes(
                "127.0.0.1:0",
                observability_routes(
                    &config,
                    Arc::clone(&obs),
                    Arc::clone(&pool),
                    slo.clone(),
                    events.clone(),
                    tsdb.clone(),
                ),
            )?)
        } else {
            None
        };
        let shared = Arc::new(ConnShared {
            pool: Arc::clone(&pool),
            stats: Arc::clone(&stats),
            obs: Arc::clone(&obs),
            stop: Arc::clone(&stop),
            slo: slo.clone(),
            chaos: config.chaos.clone(),
            hedge: HedgeDedup::new(4096),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            idle_max: config.idle_max,
            frame_deadline: config.frame_deadline,
        });
        let accept = AcceptLoop::spawn("vlsa-server-accept", &config.addr, {
            let conns = Arc::clone(&conns);
            Arc::new(move |stream: TcpStream| {
                let shared = Arc::clone(&shared);
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                if vlsa_telemetry::is_enabled() {
                    vlsa_telemetry::recorder()
                        .counter(metric::CONNECTIONS)
                        .incr();
                }
                let handle = std::thread::Builder::new()
                    .name("vlsa-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared));
                if let Ok(handle) = handle {
                    // Handles of finished connections accumulate until
                    // shutdown; fine at bench scale, and join-at-exit
                    // guarantees no thread outlives the server.
                    conns.lock().expect("conns lock").push(handle);
                }
            })
        })?;
        Ok(VlsaServer {
            accept,
            scrape,
            pool,
            stats,
            obs,
            slo,
            events,
            tsdb,
            ingest,
            stop,
            conns,
        })
    }

    /// The wire-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.accept.addr()
    }

    /// The `/metrics` endpoint address, when mounted.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::addr)
    }

    /// The shard pool (stats, degrade flags).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// The trace state (rings, exemplars, sampling counters).
    pub fn obs(&self) -> &Arc<ServerObs> {
        &self.obs
    }

    /// Connection-level counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The SLO accountant, when [`ServerConfig::slo`] is set.
    pub fn slo(&self) -> Option<&Arc<ServerSlo>> {
        self.slo.as_ref()
    }

    /// The wide-event log, when [`ServerConfig::events`] is set.
    pub fn events(&self) -> Option<&Arc<EventLog>> {
        self.events.as_ref()
    }

    /// The embedded time-series store, when [`ServerConfig::tsdb`] and
    /// [`ServerConfig::metrics`] are both set.
    pub fn tsdb(&self) -> Option<&Arc<Tsdb>> {
        self.tsdb.as_ref()
    }

    /// Graceful stop: no new connections, accepted requests drain and
    /// get their replies, then workers and connection threads join.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.accept.shutdown();
        // Closing the queues lets workers drain everything already
        // accepted, so blocked connections get their replies before
        // their threads notice the stop flag.
        self.pool.shutdown();
        // The ingest thread takes its final snapshot after the pool has
        // drained, so the last tick carries the complete run's counters
        // — post-shutdown queries (and the CI accounting gate) see
        // everything the server did.
        if let Some(ingest) = self.ingest.take() {
            let _ = ingest.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(scrape) = &mut self.scrape {
            scrape.shutdown();
        }
    }
}

impl Drop for VlsaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for VlsaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VlsaServer")
            .field("addr", &self.addr())
            .field("metrics_addr", &self.metrics_addr())
            .field("pool", &self.pool)
            .finish()
    }
}

/// The recording rules every server registers: fleet throughput and
/// shed rates, the worst-shard tail, and the SLO/conformance verdicts
/// — so burn rates and chi-square/CUSUM statistics become *history*,
/// not just instantaneous gauges.
fn default_recording_rules() -> &'static [(&'static str, &'static str)] {
    &[
        (recorded::OPS_PER_SEC, "rate(vlsa.server.ops[1s])"),
        (recorded::SHED_PER_SEC, "rate(vlsa.server.shed[1s])"),
        (
            recorded::P999_US,
            "quantile(0.999, vlsa.server.request_latency_us[10s])",
        ),
        (
            recorded::BURN_RATE_MAX,
            "max_over_time(vlsa.slo.burn_rate[10s])",
        ),
        (
            recorded::PAGES_FIRING,
            "max_over_time(vlsa.slo.pages_firing[10s])",
        ),
        (recorded::CHI2_MAX, "max_over_time(vlsa.monitor.chi2[1m])"),
        (recorded::CUSUM_MAX, "max_over_time(vlsa.monitor.cusum[1m])"),
    ]
}

/// The self-scrape loop: polls on a short wall interval, but *samples
/// on the modeled-time axis* — a tick is taken only when modeled time
/// has advanced past the last ingest, so timestamps are deterministic
/// functions of the work the shards did, an idle server appends
/// nothing, and a loaded one gets a snapshot per poll. The final tick
/// (after the pool drains) captures the complete run.
fn spawn_ingest(db: Arc<Tsdb>, clock: Arc<ModeledClock>, stop: Arc<AtomicBool>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("vlsa-tsdb-ingest".to_string())
        .spawn(move || {
            let mut last_append = Instant::now();
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let now_us = clock.now_us();
                if now_us > db.last_ingest_us() || db.ingest_ticks() == 0 {
                    // Resolve the recorder per tick: a scoped registry
                    // (tests) can come and go under us.
                    db.ingest_registry(&vlsa_telemetry::recorder(), now_us);
                    last_append = Instant::now();
                } else if last_append.elapsed() >= Duration::from_millis(250) {
                    // Idle heartbeat: the modeled clock pauses between
                    // runs, but a snapshot taken mid-batch may have
                    // missed counter increments that landed after the
                    // final clock advance. Re-sampling one µs past the
                    // last tick converges the history to the true
                    // closing totals while the server sits idle.
                    db.ingest_registry(&vlsa_telemetry::recorder(), db.last_ingest_us() + 1);
                    last_append = Instant::now();
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            // Final snapshot strictly after every earlier tick, so the
            // run's closing counter values are always queryable.
            let now_us = clock.now_us().max(db.last_ingest_us() + 1);
            db.ingest_registry(&vlsa_telemetry::recorder(), now_us);
        })
        .expect("spawn tsdb ingest thread")
}

/// The `/query?expr=&range=` handler body, shared with the fleet
/// aggregator: evaluates a range expression against a store and shapes
/// the JSON response (400 for a bad expression or parameters).
///
/// Parameters: `expr` (required, percent-encoded welcome), `start`/
/// `end` (µs of the store's time axis; `end` defaults to the newest
/// ingest, `start` to `end − range` or 0), `range` and `step` as
/// `30s`-style durations (`step` defaults to ~240 instants).
pub fn answer_query(db: &Tsdb, query: &str) -> HttpResponse {
    let Some(raw_expr) = query_param(query, "expr") else {
        return HttpResponse::bad_request(
            "missing ?expr= (e.g. /query?expr=rate(vlsa.server.ops[1s])&range=30s)".to_string(),
        );
    };
    let expr_text = percent_decode(raw_expr);
    let expr = match Expr::parse(&expr_text) {
        Ok(expr) => expr,
        Err(e) => return HttpResponse::bad_request(format!("{e}")),
    };
    let parse_ts = |key: &str| -> Result<Option<u64>, HttpResponse> {
        match query_param(query, key) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| HttpResponse::bad_request(format!("bad ?{key}= (want µs): {v:?}"))),
        }
    };
    let (start_param, end_param) = match (parse_ts("start"), parse_ts("end")) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let end = end_param.unwrap_or_else(|| db.last_ingest_us());
    let start = match (start_param, query_param(query, "range")) {
        (Some(s), _) => s,
        (None, Some(r)) => match parse_duration_us(&percent_decode(r)) {
            Ok(range) => end.saturating_sub(range),
            Err(e) => return HttpResponse::bad_request(format!("bad ?range=: {e}")),
        },
        (None, None) => 0,
    };
    if start > end {
        return HttpResponse::bad_request(format!("empty time range: start {start} > end {end}"));
    }
    let step = match query_param(query, "step") {
        Some(s) => match parse_duration_us(&percent_decode(s)) {
            Ok(step) => step.max(1),
            Err(e) => return HttpResponse::bad_request(format!("bad ?step=: {e}")),
        },
        // Default to ~240 evaluation instants across the range.
        None => ((end - start) / 240).max(1),
    };
    match eval_range(db, &expr, start, end, step) {
        Ok(results) => HttpResponse::ok_json(
            range_response_json(&expr_text, start, end, step, &results).to_string(),
        ),
        Err(e @ QueryError::Parse(_)) => HttpResponse::bad_request(format!("{e}")),
        Err(e @ QueryError::Decode(_)) => HttpResponse {
            status: 500,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: format!("{e}\n"),
        },
    }
}

/// The HTTP observability route table (see the module docs for the
/// full list). The scrape server serves each connection on its own
/// thread, so `/profile` — which blocks for the requested duration by
/// design — is bounded to one concurrent session per process; a second
/// request while one runs gets a typed 429.
fn observability_routes(
    config: &ServerConfig,
    obs: Arc<ServerObs>,
    pool: Arc<ShardPool>,
    slo: Option<Arc<ServerSlo>>,
    events: Option<Arc<EventLog>>,
    tsdb: Option<Arc<Tsdb>>,
) -> Vec<Route> {
    let registry = vlsa_telemetry::recorder();
    let build_info = Json::obj()
        .set("version", env!("CARGO_PKG_VERSION"))
        .set("nbits", config.shard.nbits as u64)
        .set("window", config.shard.window as u64)
        .set("shards", config.shards as u64)
        .set("cycle_ns", config.shard.cycle_ns)
        .set("backend", config.shard.backend.as_str())
        .set("trace_sample_every", config.trace.sample_every);
    let mut routes = Vec::new();
    {
        let registry = Arc::clone(&registry);
        routes.push(Route::exact(
            "/metrics",
            Arc::new(move |_path: &str, _query: &str| HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
                body: exposition(&registry),
            }),
        ));
    }
    {
        let registry = Arc::clone(&registry);
        let build_info = build_info.clone();
        routes.push(Route::exact(
            "/snapshot",
            Arc::new(move |_path: &str, _query: &str| {
                let doc = Json::obj()
                    .set("build", build_info.clone())
                    .set("metrics", registry.snapshot());
                HttpResponse::ok_json(doc.to_string())
            }),
        ));
    }
    {
        let obs = Arc::clone(&obs);
        routes.push(Route::exact(
            "/exemplars",
            Arc::new(move |_path: &str, _query: &str| {
                HttpResponse::ok_json(obs.exemplars_json().to_string())
            }),
        ));
    }
    {
        let obs = Arc::clone(&obs);
        routes.push(Route::prefix(
            "/trace/",
            Arc::new(move |path: &str, query: &str| {
                let id_str = path.strip_prefix("/trace/").unwrap_or("");
                let Ok(trace_id) = id_str.parse::<u64>() else {
                    return HttpResponse::bad_request(format!(
                        "trace id must be a decimal u64, got {id_str:?}"
                    ));
                };
                match obs.lookup(trace_id) {
                    Some(trace) => {
                        let doc = if query_param(query, "format") == Some("chrome") {
                            trace.chrome_json()
                        } else {
                            trace.to_json()
                        };
                        HttpResponse::ok_json(doc.to_string())
                    }
                    None => HttpResponse::not_found(format!(
                        "no trace {trace_id} in the rings (evicted or never sampled)"
                    )),
                }
            }),
        ));
    }
    {
        // One profiling session per process: sampling perturbs what it
        // measures, and overlapping sessions would double both the
        // signal overhead and the confusion.
        let profiling = Arc::new(AtomicBool::new(false));
        routes.push(Route::exact(
            "/profile",
            Arc::new(move |_path: &str, query: &str| {
                if profiling
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    let body = Json::obj()
                        .set("error", "profile_in_progress")
                        .set(
                            "detail",
                            "one concurrent profiling session per process; retry when it ends",
                        )
                        .to_string();
                    return HttpResponse::too_many_requests(body);
                }
                let seconds = query_param(query, "seconds")
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(1)
                    .clamp(1, 30);
                let hz = query_param(query, "hz")
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or(99);
                let profile = vlsa_profile::sample(Duration::from_secs(seconds), hz);
                let response = if query_param(query, "format") == Some("json") {
                    HttpResponse::ok_json(profile.to_json().to_string())
                } else {
                    HttpResponse::ok_text(profile.to_folded())
                };
                profiling.store(false, Ordering::Release);
                response
            }),
        ));
    }
    {
        let slo = slo.clone();
        routes.push(Route::exact(
            "/slo",
            Arc::new(move |_path: &str, _query: &str| match &slo {
                Some(slo) => HttpResponse::ok_json(slo.status_json().to_string()),
                None => HttpResponse::ok_json(Json::obj().set("enabled", false).to_string()),
            }),
        ));
    }
    {
        routes.push(Route::exact(
            "/events",
            Arc::new(move |_path: &str, query: &str| match &events {
                Some(events) => {
                    let n = query_param(query, "n")
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or(100);
                    HttpResponse {
                        status: 200,
                        content_type: "application/x-ndjson".to_string(),
                        body: events.last_jsonl(n),
                    }
                }
                None => HttpResponse::not_found(
                    "wide events are not enabled on this server".to_string(),
                ),
            }),
        ));
    }
    {
        let tsdb = tsdb.clone();
        routes.push(Route::exact(
            "/query",
            Arc::new(move |_path: &str, query: &str| match &tsdb {
                Some(db) => answer_query(db, query),
                None => HttpResponse::not_found(
                    "the time-series store is not enabled on this server".to_string(),
                ),
            }),
        ));
    }
    {
        routes.push(Route::exact(
            "/series",
            Arc::new(move |_path: &str, _query: &str| match &tsdb {
                Some(db) => HttpResponse::ok_json(db.stats_json().to_string()),
                None => HttpResponse::not_found(
                    "the time-series store is not enabled on this server".to_string(),
                ),
            }),
        ));
    }
    {
        // Liveness plus the supervisor's vital signs: a chaos run curls
        // this through a shard kill to watch the restart land without
        // the process restarting.
        let pool = Arc::clone(&pool);
        routes.push(Route::exact(
            "/healthz",
            Arc::new(move |_path: &str, _query: &str| {
                HttpResponse::ok_json(
                    Json::obj()
                        .set("ok", true)
                        .set("restarts", pool.restarts())
                        .set("degraded_shards", pool.degraded_shards())
                        .set("closing", pool.is_closing())
                        .to_string(),
                )
            }),
        ));
    }
    {
        routes.push(Route::exact(
            "/readyz",
            Arc::new(move |_path: &str, _query: &str| {
                let degraded = pool.degraded_shards();
                let verdict = slo.as_ref().map(|s| s.verdict()).unwrap_or_default();
                let ready = degraded == 0 && verdict.pages_firing == 0;
                let body = Json::obj()
                    .set("ready", ready)
                    .set("degraded_shards", degraded)
                    .set("slo_pages_firing", verdict.pages_firing)
                    .set("slo_warns_firing", verdict.warns_firing)
                    .to_string();
                if ready {
                    HttpResponse::ok_json(body)
                } else {
                    HttpResponse::service_unavailable(body)
                }
            }),
        ));
    }
    routes
}

/// Everything a connection thread needs, shared across all of them.
#[derive(Debug)]
struct ConnShared {
    pool: Arc<ShardPool>,
    stats: Arc<ServerStats>,
    obs: Arc<ServerObs>,
    stop: Arc<AtomicBool>,
    slo: Option<Arc<ServerSlo>>,
    chaos: Option<Arc<ChaosInjector>>,
    hedge: HedgeDedup,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_max: Duration,
    frame_deadline: Duration,
}

impl ConnShared {
    fn note_protocol_error(&self) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        if vlsa_telemetry::is_enabled() {
            vlsa_telemetry::recorder()
                .counter(metric::PROTOCOL_ERRORS)
                .incr();
        }
    }
}

/// One connection's protocol loop: read a frame, answer it, repeat.
/// Every exit path is clean — a typed error frame where the protocol
/// allows one, then teardown of *this* connection only.
fn serve_connection(mut stream: TcpStream, shared: &ConnShared) {
    if stream.set_read_timeout(Some(shared.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(shared.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut last_activity = Instant::now();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match read_frame_bounded(&stream, shared.frame_deadline) {
            Ok(Frame::AddBatch(request)) => {
                last_activity = Instant::now();
                if !answer_request(&mut stream, shared, request) {
                    break;
                }
            }
            Ok(frame) => {
                // Well-formed, but clients may only send requests.
                shared.note_protocol_error();
                let err = ProtocolError::UnexpectedFrame {
                    frame_type: frame.frame_type(),
                };
                let _ = write_frame(&mut stream, &Frame::Error(err.to_frame()));
                break;
            }
            Err(ReadError::Eof) => break,
            Err(ReadError::IdleTimeout) => {
                // Idle at a frame boundary: keep waiting until the
                // cumulative idle lifetime runs out, then reap. There
                // is no frame to answer — the peer just went quiet.
                if !shared.idle_max.is_zero() && last_activity.elapsed() >= shared.idle_max {
                    shared.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    if vlsa_telemetry::is_enabled() {
                        vlsa_telemetry::recorder()
                            .counter(metric::IDLE_REAPED)
                            .incr();
                    }
                    break;
                }
            }
            Err(ReadError::SlowFrame) => {
                // A started frame outlived its feed deadline: the peer
                // is slow-lorising (or broken). Typed error, teardown.
                shared.stats.slow_frames.fetch_add(1, Ordering::Relaxed);
                if vlsa_telemetry::is_enabled() {
                    vlsa_telemetry::recorder()
                        .counter(metric::SLOW_FRAMES)
                        .incr();
                }
                shared.note_protocol_error();
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error(ProtocolError::SlowFrame.to_frame()),
                );
                break;
            }
            // Mid-frame truncation or a dead socket: nothing to answer.
            Err(ReadError::Io(_)) => break,
            Err(ReadError::Protocol(e)) => {
                // The stream cannot be re-synchronized after a framing
                // error; answer with the typed error and tear down.
                shared.note_protocol_error();
                let _ = write_frame(&mut stream, &Frame::Error(e.to_frame()));
                break;
            }
        }
    }
}

/// Answers one `AddBatch`: hedge dedup, submit, await the worker (or
/// map its loss to a typed `Retryable`), inject planned reply faults,
/// write. Returns whether the connection is still usable.
fn answer_request(
    stream: &mut TcpStream,
    shared: &ConnShared,
    request: crate::protocol::AddBatch,
) -> bool {
    let obs = &shared.obs;
    let request_id = request.request_id;
    // Hedged copies: only the first (key, seq) executes; later copies
    // are refused typed, without occupying a batch slot. A fresh seq is
    // a fresh logical attempt and executes normally.
    if let Some(h) = request.hedge {
        if !shared.hedge.first_copy(h.key, h.seq) {
            shared
                .stats
                .hedge_duplicates
                .fetch_add(1, Ordering::Relaxed);
            if vlsa_telemetry::is_enabled() {
                vlsa_telemetry::recorder()
                    .counter(metric::HEDGE_DUPLICATES)
                    .incr();
            }
            if let Some(slo) = &shared.slo {
                slo.record_hedge_duplicate();
            }
            return write_frame(
                stream,
                &Frame::Error(ProtocolError::DuplicateHedge.to_frame()),
            )
            .is_ok();
        }
    }
    // The sampling decision: client-requested traces are always
    // honored (and echoed on the wire); otherwise the server
    // self-samples every Nth request with a generated id, ring-only —
    // the response stays extension-free for untraced clients.
    let trace = match request.trace {
        Some(tc) if tc.is_sampled() => Some(JobTrace {
            trace_id: tc.trace_id,
            echo: true,
            start_us: obs.now_us(),
        }),
        Some(_) => None,
        None => obs.should_self_sample().then(|| JobTrace {
            trace_id: obs.next_trace_id(),
            echo: false,
            start_us: obs.now_us(),
        }),
    };
    let (tx, rx) = channel();
    let reply = match shared.pool.submit_traced(request, tx, trace) {
        Ok(()) => match rx.recv() {
            Ok(reply) => reply,
            // The worker dropped the reply sender without answering.
            // During shutdown that is the drain racing the request;
            // otherwise the worker died holding it — the request was
            // not executed and is safe to retry.
            Err(_) => Reply {
                frame: if shared.pool.is_closing() || shared.stop.load(Ordering::Relaxed) {
                    Frame::Error(ProtocolError::Shutdown.to_frame())
                } else {
                    shared.pool.retryable_frame(request_id)
                },
                trace: None,
            },
        },
        Err(frame) => Reply {
            frame: *frame,
            trace: None,
        },
    };
    // Planned response-side chaos: delay and/or duplicate this reply.
    // Clients must tolerate both — a delayed answer races its hedge,
    // a duplicated one exercises stale-frame skipping.
    let fault = shared
        .chaos
        .as_ref()
        .and_then(|chaos| chaos.reply_fault(shared.pool.route(request_id) as u16));
    if let Some(fault) = &fault {
        if let Some(delay) = fault.delay {
            std::thread::sleep(delay);
        }
    }
    let write_start = Instant::now();
    let mut wrote = write_frame(stream, &reply.frame).is_ok();
    if wrote && fault.is_some_and(|f| f.duplicate) {
        wrote = write_frame(stream, &reply.frame).is_ok();
    }
    if let Some(mut rt) = reply.trace {
        rt.write_us = write_start.elapsed().as_micros().min(u32::MAX as u128) as u32;
        obs.record(rt);
    }
    wrote
}
