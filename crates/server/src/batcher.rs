//! The adaptive batcher: policy + queue = coalesced per-shard batches.
//!
//! A shard's worker doesn't process requests one by one — it asks its
//! [`Batcher`] for the next coalesced batch: everything queued right
//! now, topped up by whatever arrives within the linger window, capped
//! by total op count. Under light load a batch is one request flushed
//! after at most `linger`; under heavy load batches fill to `max_ops`
//! instantly and the linger never matters — the classic adaptive
//! batching trade of a little latency for a lot of throughput.

use std::sync::Arc;
use std::time::Duration;

use crate::queue::Bounded;

/// When to flush a coalescing batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once the batch holds this many ops (weight cap).
    pub max_ops: usize,
    /// Flush this long after the first item even if below `max_ops`.
    pub linger: Duration,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_ops: 4096,
            linger: Duration::from_micros(500),
        }
    }
}

/// A [`Bounded`] queue paired with a [`BatchPolicy`] and a weight
/// function — the consumer-side view a shard worker drains.
pub struct Batcher<T> {
    queue: Arc<Bounded<T>>,
    policy: BatchPolicy,
    weigh: Box<dyn Fn(&T) -> usize + Send + Sync>,
}

impl<T> Batcher<T> {
    /// Wraps `queue` with `policy`, weighing items with `weigh` (for
    /// the server: a request's op count).
    pub fn new(
        queue: Arc<Bounded<T>>,
        policy: BatchPolicy,
        weigh: impl Fn(&T) -> usize + Send + Sync + 'static,
    ) -> Batcher<T> {
        Batcher {
            queue,
            policy,
            weigh: Box::new(weigh),
        }
    }

    /// The shared queue (the producer side hands this to `try_push`
    /// callers).
    pub fn queue(&self) -> &Arc<Bounded<T>> {
        &self.queue
    }

    /// The flush policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Blocks for the next coalesced batch; empty means closed and
    /// drained.
    pub fn next_batch(&self) -> Vec<T> {
        self.next_batch_timed().0
    }

    /// [`Batcher::next_batch`] plus the instant batch formation began,
    /// for tracing the queue-wait vs batch-linger split.
    pub fn next_batch_timed(&self) -> (Vec<T>, std::time::Instant) {
        self.queue
            .pop_batch_timed(self.policy.max_ops, &self.weigh, self.policy.linger)
    }
}

impl<T> std::fmt::Debug for Batcher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("queue", &self.queue)
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_up_to_the_op_cap() {
        let queue = Arc::new(Bounded::new(8));
        let batcher = Batcher::new(
            Arc::clone(&queue),
            BatchPolicy {
                max_ops: 5,
                linger: Duration::ZERO,
            },
            |ops: &Vec<u64>| ops.len(),
        );
        queue.try_push(vec![1, 2]).expect("push");
        queue.try_push(vec![3, 4]).expect("push");
        queue.try_push(vec![5, 6]).expect("push");
        // 2 + 2 fit under the 5-op cap; the third request would overflow.
        let batch = batcher.next_batch();
        assert_eq!(batch.len(), 2);
        let rest = batcher.next_batch();
        assert_eq!(rest, vec![vec![5, 6]]);
    }

    #[test]
    fn empty_batch_signals_closed() {
        let queue: Arc<Bounded<Vec<u64>>> = Arc::new(Bounded::new(2));
        let batcher = Batcher::new(Arc::clone(&queue), BatchPolicy::default(), Vec::len);
        queue.close();
        assert!(batcher.next_batch().is_empty());
    }
}
