//! A bounded MPSC queue with non-blocking producers and a batching
//! consumer.
//!
//! Producers never block: [`Bounded::try_push`] either enqueues or
//! reports [`PushError::Full`] — the backpressure signal the server
//! turns into an explicit `Busy` frame (shed, never silently dropped).
//! The single consumer blocks in [`Bounded::pop_batch`], which is the
//! batching primitive: wait for the first item, then keep draining up
//! to a weight cap or until a linger deadline passes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused. The item comes back to the caller — nothing
/// is ever dropped inside the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed or retry.
    Full(T),
    /// The queue was closed; the consumer is gone or going.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. One lives per shard, in an `Arc` shared between
/// the connection threads (producers) and the shard worker (consumer).
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (an internal misconfiguration, not
    /// external input).
    pub fn new(capacity: usize) -> Bounded<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. Returns the depth *after* the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`] — the item is returned either way.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Closes the queue: further pushes fail, and once the consumer has
    /// drained the remaining items, [`Bounded::pop_batch`] returns
    /// empty. Items already queued are still delivered — close is a
    /// drain, not a drop.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Takes every queued item immediately, without blocking or
    /// closing the queue. The supervisor uses this to evacuate a dead
    /// worker's queue into typed `Retryable` answers before spawning
    /// its replacement — the queue itself (and its producers) live on.
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.items.drain(..).collect()
    }

    /// Blocks for the first item, then drains greedily: items are taken
    /// while their cumulative weight (per `weigh`) stays within
    /// `max_weight`, lingering up to `linger` past the first item for
    /// more to arrive. An item heavier than `max_weight` alone is still
    /// taken (as a batch of one) so nothing can wedge the queue.
    ///
    /// Returns an empty vector only when the queue is closed and fully
    /// drained — the consumer's signal to exit.
    pub fn pop_batch(
        &self,
        max_weight: usize,
        weigh: impl Fn(&T) -> usize,
        linger: Duration,
    ) -> Vec<T> {
        self.pop_batch_timed(max_weight, weigh, linger).0
    }

    /// [`Bounded::pop_batch`] plus the instant batch formation began
    /// (when the first item was taken off the queue). Tracing uses the
    /// instant to split a request's wait into queue time (enqueue →
    /// formation start) and batch linger (formation start → dispatch).
    pub fn pop_batch_timed(
        &self,
        max_weight: usize,
        weigh: impl Fn(&T) -> usize,
        linger: Duration,
    ) -> (Vec<T>, Instant) {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.closed {
                return (Vec::new(), Instant::now());
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
        let formation_start = Instant::now();
        let deadline = formation_start + linger;
        let mut batch = Vec::new();
        let mut weight = 0usize;
        loop {
            while let Some(item_weight) = inner.items.front().map(&weigh) {
                if !batch.is_empty() && weight + item_weight > max_weight {
                    return (batch, formation_start);
                }
                let item = inner.items.pop_front().expect("front checked");
                weight += item_weight;
                batch.push(item);
                if weight >= max_weight {
                    return (batch, formation_start);
                }
            }
            // Drained below the cap: linger for stragglers.
            if inner.closed {
                return (batch, formation_start);
            }
            let now = Instant::now();
            if now >= deadline {
                return (batch, formation_start);
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("queue lock");
            inner = guard;
        }
    }
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_with_the_item_returned() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains() {
        let q = Bounded::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        let batch = q.pop_batch(10, |_| 1, Duration::ZERO);
        assert_eq!(batch, vec![1, 2]);
        let done: Vec<i32> = q.pop_batch(10, |_| 1, Duration::ZERO);
        assert!(done.is_empty());
    }

    #[test]
    fn pop_batch_respects_the_weight_cap() {
        let q = Bounded::new(8);
        for w in [3usize, 3, 3, 3] {
            q.try_push(w).expect("push");
        }
        // Cap 7: two 3-weight items fit, the third would overflow.
        let batch = q.pop_batch(7, |w| *w, Duration::ZERO);
        assert_eq!(batch, vec![3, 3]);
        // An item heavier than the cap still goes through alone.
        let q2 = Bounded::new(2);
        q2.try_push(100usize).expect("push");
        let heavy = q2.pop_batch(7, |w| *w, Duration::ZERO);
        assert_eq!(heavy, vec![100]);
    }

    #[test]
    fn pop_batch_lingers_for_stragglers() {
        let q = Arc::new(Bounded::new(8));
        let producer = Arc::clone(&q);
        q.try_push(1).expect("push");
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            producer.try_push(2).expect("push");
        });
        // The linger window is generous enough to catch the straggler.
        let batch = q.pop_batch(10, |_| 1, Duration::from_millis(500));
        t.join().expect("producer");
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn pop_batch_blocks_until_an_item_or_close() {
        let q = Arc::new(Bounded::<i32>::new(2));
        let closer = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            closer.close();
        });
        let batch = q.pop_batch(10, |_| 1, Duration::ZERO);
        t.join().expect("closer");
        assert!(batch.is_empty());
    }

    #[test]
    fn drain_now_empties_without_closing() {
        let q = Bounded::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        assert_eq!(q.drain_now(), vec![1, 2]);
        assert!(q.is_empty());
        assert!(!q.is_closed());
        assert_eq!(q.try_push(3), Ok(1), "queue stays usable after a drain");
    }

    #[test]
    fn pop_batch_timed_reports_when_formation_began() {
        let q = Bounded::new(4);
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(1).expect("push");
        let (batch, formation_start) = q.pop_batch_timed(10, |_| 1, Duration::ZERO);
        assert_eq!(batch, vec![1]);
        // Formation began strictly after the pre-enqueue instant: the
        // enqueue→formation gap is the queue-wait a trace reports.
        assert!(formation_start > before);
        assert!(formation_start <= Instant::now());
    }
}
