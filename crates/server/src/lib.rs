//! # vlsa-server
//!
//! A sharded, batching addition service over the VLSA resilient
//! pipeline — the serving layer that turns the paper's single-stream
//! latency contract (≈ `1 + P(error)` cycles per op) into an observable
//! *service-level* property: throughput and tail latency under
//! concurrency.
//!
//! ```text
//!                      ┌───────────────────────────────────────────┐
//!  client ── AddBatch ─► accept loop ─ route by request_id % N ─┐  │
//!  client ── AddBatch ─►  (vlsa-monitor AcceptLoop)             │  │
//!                      │                              ┌─────────▼┐ │
//!                      │   bounded queue + batcher →  │ shard 0  │ │
//!                      │   (Busy frame when full)     │ Resilient│ │
//!                      │                              │ Pipeline │ │
//!                      │                              └─────────┬┘ │
//!  client ◄─ SumBatch ─┤            …shards 1..N-1…             │  │
//!  client ◄─ Busy ─────┤  /metrics (vlsa-monitor ScrapeServer) ◄┘  │
//!                      └───────────────────────────────────────────┘
//! ```
//!
//! - **Shard pool** ([`ShardPool`]): one OS thread per shard, each
//!   owning a `ResilientPipeline` (and optionally a live
//!   `ConformanceMonitor` wired to that shard's degrade flag). Requests
//!   route by `request_id % shards`.
//! - **Adaptive batcher** ([`Batcher`]): per-shard coalescing — flush
//!   on op-count cap or linger deadline — so many small requests become
//!   few pipeline calls.
//! - **Backpressure, never silent drops** ([`Bounded`]): producers
//!   never block and never lose work silently; a full queue sheds with
//!   a typed [`Busy`] frame, and shutdown answers with a typed error.
//! - **Binary wire protocol** ([`protocol`](crate::protocol)):
//!   length-prefixed frames, hard size limits enforced before
//!   allocation, and every malformed input mapped to a typed
//!   [`ProtocolError`] — malformed external input cannot panic the
//!   server.
//! - **Full ops-stack integration**: `vlsa.server.*` telemetry
//!   (per-shard latency histograms and quantile gauges via labeled
//!   instrument names), per-batch trace spans, and `/metrics` served by
//!   `vlsa-monitor`'s `ScrapeServer`.
//!
//! ## Usage
//!
//! ```
//! use vlsa_server::{Response, ServerConfig, VlsaClient, VlsaServer};
//!
//! let mut server = VlsaServer::start(ServerConfig::default()).expect("start");
//! let mut client = VlsaClient::connect(server.addr()).expect("connect");
//! match client.add_batch(32, &[(2, 3), (10, 20)]).expect("request") {
//!     Response::Sums(sums) => {
//!         assert_eq!(sums.results[0].sum, 5);
//!         assert_eq!(sums.results[1].sum, 30);
//!     }
//!     other => unreachable!("no load, no faults: {other:?}"),
//! }
//! server.shutdown();
//! ```
//!
//! ## Fault tolerance
//!
//! Each pool runs a supervisor thread ([`SupervisorConfig`]) that
//! restarts dead or wedged shard workers, draining their queues into
//! typed `Retryable` (code 9) frames — accepted work is never silently
//! lost. Requests can carry a deadline budget (`EXT_DEADLINE`); expired
//! ones are shed with typed `DeadlineExceeded` (code 10) frames instead
//! of occupying batch slots. [`RetryClient`] adds client-side backoff,
//! retry budgets, and hedged requests (deduplicated server-side by
//! `(key, seq)`), and the `vlsa-chaos` crate injects planned faults
//! through [`PoolHooks::chaos`] / `ServerConfig::chaos` to prove the
//! whole loop under failure.

pub mod protocol;

mod batcher;
mod client;
mod clock;
mod error;
mod events;
mod framing;
mod obs;
mod queue;
mod retry;
mod server;
mod shard;
mod slo;

pub use batcher::{BatchPolicy, Batcher};
pub use client::{ClientError, Response, VlsaClient, DEFAULT_TIMEOUT};
pub use clock::ModeledClock;
pub use error::ProtocolError;
pub use events::{EventLog, EventLogConfig, WideEvent};
pub use framing::{read_frame, read_frame_bounded, write_frame, ReadError};
pub use obs::{ObsConfig, ServerObs};
pub use protocol::{
    AddBatch, Busy, ErrorFrame, Frame, HedgeKey, OpResult, ServerTiming, SumBatch, TraceContext,
};
pub use queue::{Bounded, PushError};
pub use retry::{Outcome, RetryClient, RetryPolicy, RetryStats};
pub use server::{answer_query, ServerConfig, ServerError, ServerStats, VlsaServer};
pub use shard::{
    Job, JobTrace, PoolHooks, Reply, ShardConfig, ShardPool, ShardSnapshot, ShardStats,
    SupervisorConfig,
};
pub use slo::{ServerSlo, SloVerdict};
pub use vlsa_batch::Backend;
