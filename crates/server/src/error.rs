//! Typed wire-protocol errors.
//!
//! Malformed external input never panics the server: every way a frame
//! can be wrong maps to a [`ProtocolError`] variant, each with a stable
//! numeric code that travels in an `Error` frame so clients can react
//! programmatically (the `QueueError` precedent, applied to the wire).

use std::fmt;

use crate::protocol::ErrorFrame;

/// Everything that can be wrong with a frame, or with the server's
/// ability to answer one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame type byte is not one this protocol defines.
    UnknownFrameType(u8),
    /// The length prefix exceeds [`crate::protocol::MAX_FRAME_LEN`];
    /// the frame is rejected *before* any allocation or body read.
    OversizedFrame {
        /// The advertised frame length.
        len: u32,
    },
    /// The batch op count exceeds [`crate::protocol::MAX_BATCH_OPS`].
    OversizedBatch {
        /// The advertised op count.
        count: u32,
    },
    /// The adder width is outside `1..=64`.
    BadWidth {
        /// The advertised width.
        nbits: u8,
    },
    /// The body does not parse: truncated fields, trailing bytes, or a
    /// length field inconsistent with the payload.
    Malformed(String),
    /// A well-formed frame arrived where the protocol does not allow it
    /// (e.g. a client sending a `SumBatch`).
    UnexpectedFrame {
        /// The offending frame's type byte.
        frame_type: u8,
    },
    /// The server is shutting down and can no longer answer.
    Shutdown,
    /// The optional tagged extension after the base body fields does
    /// not parse: unknown tag, zero trace id, or reserved flag bits.
    BadExtension(String),
}

impl ProtocolError {
    /// The stable numeric code carried in `Error` frames.
    pub fn code(&self) -> u16 {
        match self {
            ProtocolError::UnknownFrameType(_) => 1,
            ProtocolError::OversizedFrame { .. } => 2,
            ProtocolError::OversizedBatch { .. } => 3,
            ProtocolError::BadWidth { .. } => 4,
            ProtocolError::Malformed(_) => 5,
            ProtocolError::UnexpectedFrame { .. } => 6,
            ProtocolError::Shutdown => 7,
            ProtocolError::BadExtension(_) => 8,
        }
    }

    /// This error rendered as the `Error` frame the server sends back.
    pub fn to_frame(&self) -> ErrorFrame {
        ErrorFrame {
            code: self.code(),
            detail: self.to_string(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownFrameType(t) => {
                write!(f, "unknown frame type 0x{t:02X}")
            }
            ProtocolError::OversizedFrame { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {} byte limit",
                    crate::protocol::MAX_FRAME_LEN
                )
            }
            ProtocolError::OversizedBatch { count } => {
                write!(
                    f,
                    "batch of {count} ops exceeds the {} op limit",
                    crate::protocol::MAX_BATCH_OPS
                )
            }
            ProtocolError::BadWidth { nbits } => {
                write!(f, "adder width {nbits} is outside 1..=64")
            }
            ProtocolError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            ProtocolError::UnexpectedFrame { frame_type } => {
                write!(f, "frame type 0x{frame_type:02X} is not valid here")
            }
            ProtocolError::Shutdown => write!(f, "server is shutting down"),
            ProtocolError::BadExtension(detail) => {
                write!(f, "bad frame extension: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ProtocolError::UnknownFrameType(9),
            ProtocolError::OversizedFrame { len: 1 << 30 },
            ProtocolError::OversizedBatch { count: 1 << 20 },
            ProtocolError::BadWidth { nbits: 65 },
            ProtocolError::Malformed("x".into()),
            ProtocolError::UnexpectedFrame { frame_type: 0x81 },
            ProtocolError::Shutdown,
            ProtocolError::BadExtension("bad tag".into()),
        ];
        let codes: Vec<u16> = errors.iter().map(ProtocolError::code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        for e in &errors {
            let frame = e.to_frame();
            assert_eq!(frame.code, e.code());
            assert_eq!(frame.detail, e.to_string());
        }
    }
}
