//! Typed wire-protocol errors.
//!
//! Malformed external input never panics the server: every way a frame
//! can be wrong maps to a [`ProtocolError`] variant, each with a stable
//! numeric code that travels in an `Error` frame so clients can react
//! programmatically (the `QueueError` precedent, applied to the wire).

use std::fmt;

use crate::protocol::ErrorFrame;

/// Everything that can be wrong with a frame, or with the server's
/// ability to answer one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame type byte is not one this protocol defines.
    UnknownFrameType(u8),
    /// The length prefix exceeds [`crate::protocol::MAX_FRAME_LEN`];
    /// the frame is rejected *before* any allocation or body read.
    OversizedFrame {
        /// The advertised frame length.
        len: u32,
    },
    /// The batch op count exceeds [`crate::protocol::MAX_BATCH_OPS`].
    OversizedBatch {
        /// The advertised op count.
        count: u32,
    },
    /// The adder width is outside `1..=64`.
    BadWidth {
        /// The advertised width.
        nbits: u8,
    },
    /// The body does not parse: truncated fields, trailing bytes, or a
    /// length field inconsistent with the payload.
    Malformed(String),
    /// A well-formed frame arrived where the protocol does not allow it
    /// (e.g. a client sending a `SumBatch`).
    UnexpectedFrame {
        /// The offending frame's type byte.
        frame_type: u8,
    },
    /// The server is shutting down and can no longer answer.
    Shutdown,
    /// The optional tagged extension after the base body fields does
    /// not parse: unknown tag, zero trace id, or reserved flag bits.
    BadExtension(String),
    /// The request was accepted but its shard worker died or was
    /// deposed before answering; the request was **not** (completely)
    /// executed and is safe to retry.
    Retryable(String),
    /// The request outwaited its client-stamped [`EXT_DEADLINE`]
    /// budget inside the server and was shed without executing.
    ///
    /// [`EXT_DEADLINE`]: crate::protocol::EXT_DEADLINE
    DeadlineExceeded {
        /// The client's budget, µs.
        budget_us: u32,
        /// How long the request had already waited when shed, µs.
        waited_us: u32,
    },
    /// A hedged copy whose `(key, seq)` was already accepted; this copy
    /// was not executed (the first copy's answer stands).
    DuplicateHedge,
    /// The peer fed a frame slower than the per-frame deadline allows
    /// (slow-loris); the connection is torn down.
    SlowFrame,
}

impl ProtocolError {
    /// The stable numeric code carried in `Error` frames.
    pub fn code(&self) -> u16 {
        match self {
            ProtocolError::UnknownFrameType(_) => 1,
            ProtocolError::OversizedFrame { .. } => 2,
            ProtocolError::OversizedBatch { .. } => 3,
            ProtocolError::BadWidth { .. } => 4,
            ProtocolError::Malformed(_) => 5,
            ProtocolError::UnexpectedFrame { .. } => 6,
            ProtocolError::Shutdown => 7,
            ProtocolError::BadExtension(_) => 8,
            ProtocolError::Retryable(_) => 9,
            ProtocolError::DeadlineExceeded { .. } => 10,
            ProtocolError::DuplicateHedge => 11,
            ProtocolError::SlowFrame => 12,
        }
    }

    /// Code 9 ([`ProtocolError::Retryable`]) as seen on the wire.
    pub const CODE_RETRYABLE: u16 = 9;
    /// Code 10 ([`ProtocolError::DeadlineExceeded`]) as seen on the
    /// wire.
    pub const CODE_DEADLINE_EXCEEDED: u16 = 10;
    /// Code 11 ([`ProtocolError::DuplicateHedge`]) as seen on the wire.
    pub const CODE_DUPLICATE_HEDGE: u16 = 11;

    /// This error rendered as the `Error` frame the server sends back.
    pub fn to_frame(&self) -> ErrorFrame {
        ErrorFrame {
            code: self.code(),
            detail: self.to_string(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownFrameType(t) => {
                write!(f, "unknown frame type 0x{t:02X}")
            }
            ProtocolError::OversizedFrame { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {} byte limit",
                    crate::protocol::MAX_FRAME_LEN
                )
            }
            ProtocolError::OversizedBatch { count } => {
                write!(
                    f,
                    "batch of {count} ops exceeds the {} op limit",
                    crate::protocol::MAX_BATCH_OPS
                )
            }
            ProtocolError::BadWidth { nbits } => {
                write!(f, "adder width {nbits} is outside 1..=64")
            }
            ProtocolError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            ProtocolError::UnexpectedFrame { frame_type } => {
                write!(f, "frame type 0x{frame_type:02X} is not valid here")
            }
            ProtocolError::Shutdown => write!(f, "server is shutting down"),
            ProtocolError::BadExtension(detail) => {
                write!(f, "bad frame extension: {detail}")
            }
            ProtocolError::Retryable(detail) => {
                write!(f, "not executed, safe to retry: {detail}")
            }
            ProtocolError::DeadlineExceeded {
                budget_us,
                waited_us,
            } => {
                write!(
                    f,
                    "deadline exceeded: budget {budget_us} us, waited {waited_us} us"
                )
            }
            ProtocolError::DuplicateHedge => {
                write!(f, "duplicate hedge: this (key, seq) was already accepted")
            }
            ProtocolError::SlowFrame => {
                write!(f, "frame fed slower than the per-frame deadline")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ProtocolError::UnknownFrameType(9),
            ProtocolError::OversizedFrame { len: 1 << 30 },
            ProtocolError::OversizedBatch { count: 1 << 20 },
            ProtocolError::BadWidth { nbits: 65 },
            ProtocolError::Malformed("x".into()),
            ProtocolError::UnexpectedFrame { frame_type: 0x81 },
            ProtocolError::Shutdown,
            ProtocolError::BadExtension("bad tag".into()),
            ProtocolError::Retryable("worker restarted".into()),
            ProtocolError::DeadlineExceeded {
                budget_us: 500,
                waited_us: 900,
            },
            ProtocolError::DuplicateHedge,
            ProtocolError::SlowFrame,
        ];
        let codes: Vec<u16> = errors.iter().map(ProtocolError::code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        assert_eq!(ProtocolError::CODE_RETRYABLE, 9);
        assert_eq!(ProtocolError::CODE_DEADLINE_EXCEEDED, 10);
        assert_eq!(ProtocolError::CODE_DUPLICATE_HEDGE, 11);
        for e in &errors {
            let frame = e.to_frame();
            assert_eq!(frame.code, e.code());
            assert_eq!(frame.detail, e.to_string());
        }
    }
}
