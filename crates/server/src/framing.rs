//! Length-prefixed frame I/O over any `Read`/`Write` stream.
//!
//! The reader enforces [`crate::protocol::MAX_FRAME_LEN`] *before*
//! allocating — a hostile length prefix is answered with a typed error,
//! not an out-of-memory. Clean disconnects (EOF at a frame boundary)
//! and idle read timeouts at a frame boundary are distinguished from
//! hard I/O failures so the connection loop can tear down, keep
//! waiting, or report, respectively.

use std::io::{self, ErrorKind, Read, Write};

use crate::error::ProtocolError;
use crate::protocol::{Frame, MAX_FRAME_LEN};

/// Why a frame could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// A read timeout expired while waiting for the *first* byte of a
    /// frame — the connection is idle, not broken.
    IdleTimeout,
    /// A hard I/O failure, or a timeout/EOF in the middle of a frame
    /// (the stream can no longer be re-synchronized).
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::IdleTimeout => write!(f, "idle read timeout"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame.
///
/// # Errors
///
/// [`ReadError::Eof`] on a clean close, [`ReadError::IdleTimeout`] when
/// a read timeout fires before any byte of a new frame,
/// [`ReadError::Protocol`] for malformed bytes, [`ReadError::Io`] for
/// everything else (including mid-frame truncation).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ReadError> {
    let mut len_buf = [0u8; 4];
    // The first byte tells idle/closed apart from mid-frame failures.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ReadError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(ReadError::IdleTimeout)
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    len_buf[0] = first[0];
    r.read_exact(&mut len_buf[1..]).map_err(ReadError::Io)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ReadError::Protocol(ProtocolError::Malformed(
            "frame length 0 leaves no room for the type byte".into(),
        )));
    }
    if len > MAX_FRAME_LEN {
        return Err(ReadError::Protocol(ProtocolError::OversizedFrame { len }));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame).map_err(ReadError::Io)?;
    Frame::decode(frame[0], &frame[1..]).map_err(ReadError::Protocol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AddBatch, Busy};

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = vec![
            Frame::AddBatch(AddBatch {
                request_id: 1,
                nbits: 32,
                ops: vec![(3, 4)],
                trace: None,
            }),
            Frame::Busy(Busy {
                request_id: 1,
                shard: 0,
                queue_depth: 9,
            }),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write");
        }
        let mut r = io::Cursor::new(wire);
        for f in &frames {
            let got = read_frame(&mut r).expect("read");
            assert_eq!(&got, f);
        }
        assert!(matches!(read_frame(&mut r), Err(ReadError::Eof)));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_a_body() {
        // 4 GiB-ish prefix and no body at all: the typed error comes
        // back before any allocation-sized read is attempted.
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut r = io::Cursor::new(wire);
        let err = read_frame(&mut r);
        assert!(
            matches!(
                err,
                Err(ReadError::Protocol(ProtocolError::OversizedFrame { .. }))
            ),
            "{err:?}"
        );
    }

    #[test]
    fn zero_length_prefix_is_typed() {
        let mut r = io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(ReadError::Protocol(ProtocolError::Malformed(_)))
        ));
    }

    #[test]
    fn truncation_mid_frame_is_an_io_error() {
        let full = Frame::AddBatch(AddBatch {
            request_id: 1,
            nbits: 32,
            ops: vec![(3, 4)],
            trace: None,
        })
        .encode();
        // Cut the frame in half: the header promises more than arrives.
        let mut r = io::Cursor::new(full[..full.len() / 2].to_vec());
        assert!(matches!(read_frame(&mut r), Err(ReadError::Io(_))));
    }
}
