//! Length-prefixed frame I/O over any `Read`/`Write` stream.
//!
//! The reader enforces [`crate::protocol::MAX_FRAME_LEN`] *before*
//! allocating — a hostile length prefix is answered with a typed error,
//! not an out-of-memory. Clean disconnects (EOF at a frame boundary)
//! and idle read timeouts at a frame boundary are distinguished from
//! hard I/O failures so the connection loop can tear down, keep
//! waiting, or report, respectively.

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::error::ProtocolError;
use crate::protocol::{Frame, MAX_FRAME_LEN};

/// Why a frame could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// A read timeout expired while waiting for the *first* byte of a
    /// frame — the connection is idle, not broken.
    IdleTimeout,
    /// The peer started a frame but fed it slower than the per-frame
    /// deadline allows (slow-loris); the connection should be torn
    /// down with a typed error.
    SlowFrame,
    /// A hard I/O failure, or a timeout/EOF in the middle of a frame
    /// (the stream can no longer be re-synchronized).
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::IdleTimeout => write!(f, "idle read timeout"),
            ReadError::SlowFrame => write!(f, "frame fed slower than the per-frame deadline"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame.
///
/// # Errors
///
/// [`ReadError::Eof`] on a clean close, [`ReadError::IdleTimeout`] when
/// a read timeout fires before any byte of a new frame,
/// [`ReadError::Protocol`] for malformed bytes, [`ReadError::Io`] for
/// everything else (including mid-frame truncation).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ReadError> {
    let mut len_buf = [0u8; 4];
    // The first byte tells idle/closed apart from mid-frame failures.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ReadError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(ReadError::IdleTimeout)
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    len_buf[0] = first[0];
    r.read_exact(&mut len_buf[1..]).map_err(ReadError::Io)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ReadError::Protocol(ProtocolError::Malformed(
            "frame length 0 leaves no room for the type byte".into(),
        )));
    }
    if len > MAX_FRAME_LEN {
        return Err(ReadError::Protocol(ProtocolError::OversizedFrame { len }));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame).map_err(ReadError::Io)?;
    Frame::decode(frame[0], &frame[1..]).map_err(ReadError::Protocol)
}

/// Reads one frame from a TCP stream, bounding the lifetime of a
/// *partial* frame: waiting for the first byte uses whatever read
/// timeout the stream already carries (the idle policy), but once a
/// frame has started, the rest of it must arrive within
/// `frame_deadline` or the read fails with [`ReadError::SlowFrame`].
///
/// Without this bound, a slow-loris peer dripping one byte per idle
/// window keeps a connection (and its buffer) pinned indefinitely —
/// `read_exact` makes one byte of progress per timeout and never
/// fails. The stream's original read timeout is restored on exit.
///
/// # Errors
///
/// As [`read_frame`], plus [`ReadError::SlowFrame`] when the frame
/// outlives its deadline.
pub fn read_frame_bounded(
    stream: &TcpStream,
    frame_deadline: Duration,
) -> Result<Frame, ReadError> {
    let mut first = [0u8; 1];
    loop {
        match (&mut &*stream).read(&mut first) {
            Ok(0) => return Err(ReadError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(ReadError::IdleTimeout)
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    let start = Instant::now();
    let idle_timeout = stream.read_timeout().ok().flatten();
    let result = read_started_frame(stream, first[0], start, frame_deadline);
    let _ = stream.set_read_timeout(idle_timeout);
    result
}

/// The rest of [`read_frame_bounded`] once the first byte has arrived.
fn read_started_frame(
    stream: &TcpStream,
    first: u8,
    start: Instant,
    deadline: Duration,
) -> Result<Frame, ReadError> {
    let mut len_buf = [first, 0, 0, 0];
    read_exact_deadline(stream, &mut len_buf[1..], start, deadline)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ReadError::Protocol(ProtocolError::Malformed(
            "frame length 0 leaves no room for the type byte".into(),
        )));
    }
    if len > MAX_FRAME_LEN {
        return Err(ReadError::Protocol(ProtocolError::OversizedFrame { len }));
    }
    let mut frame = vec![0u8; len as usize];
    read_exact_deadline(stream, &mut frame, start, deadline)?;
    Frame::decode(frame[0], &frame[1..]).map_err(ReadError::Protocol)
}

/// `read_exact` that gives up once `start + deadline` passes, by
/// shrinking the socket's read timeout to the remaining budget before
/// each read.
fn read_exact_deadline(
    stream: &TcpStream,
    buf: &mut [u8],
    start: Instant,
    deadline: Duration,
) -> Result<(), ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
            return Err(ReadError::SlowFrame);
        };
        // A zero SO_RCVTIMEO means "block forever"; keep at least 1 ms.
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match (&mut &*stream).read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ReadError::Io(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if start.elapsed() >= deadline {
                    return Err(ReadError::SlowFrame);
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AddBatch, Busy};

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = vec![
            Frame::AddBatch(AddBatch::new(1, 32, vec![(3, 4)])),
            Frame::Busy(Busy {
                request_id: 1,
                shard: 0,
                queue_depth: 9,
            }),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write");
        }
        let mut r = io::Cursor::new(wire);
        for f in &frames {
            let got = read_frame(&mut r).expect("read");
            assert_eq!(&got, f);
        }
        assert!(matches!(read_frame(&mut r), Err(ReadError::Eof)));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_a_body() {
        // 4 GiB-ish prefix and no body at all: the typed error comes
        // back before any allocation-sized read is attempted.
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut r = io::Cursor::new(wire);
        let err = read_frame(&mut r);
        assert!(
            matches!(
                err,
                Err(ReadError::Protocol(ProtocolError::OversizedFrame { .. }))
            ),
            "{err:?}"
        );
    }

    #[test]
    fn zero_length_prefix_is_typed() {
        let mut r = io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(ReadError::Protocol(ProtocolError::Malformed(_)))
        ));
    }

    #[test]
    fn truncation_mid_frame_is_an_io_error() {
        let full = Frame::AddBatch(AddBatch::new(1, 32, vec![(3, 4)])).encode();
        // Cut the frame in half: the header promises more than arrives.
        let mut r = io::Cursor::new(full[..full.len() / 2].to_vec());
        assert!(matches!(read_frame(&mut r), Err(ReadError::Io(_))));
    }
}
