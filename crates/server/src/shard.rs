//! The shard pool: one `ResilientPipeline` worker thread per shard,
//! operands routed by request id, supervised for fault recovery.
//!
//! Each shard owns a bounded job queue ([`crate::queue::Bounded`]), an
//! adaptive [`crate::batcher::Batcher`], a `ResilientPipeline`, and —
//! optionally — a live `ConformanceMonitor` wired to the shard's
//! degrade flag, so traffic drift on one shard flips *that shard* to
//! the exact path while the others keep speculating.
//!
//! ## Supervision
//!
//! A pool-level supervisor thread watches every shard worker through a
//! [`ShardHealth`] heartbeat. Two failure modes are detected: a **dead**
//! worker (the thread panicked — its liveness latch clears on unwind)
//! and a **wedged** worker (alive but making no batch progress while
//! work is pending, past [`SupervisorConfig::wedge_timeout`]). Either
//! way the supervisor bumps the shard's *generation* (deposing the old
//! worker, which refuses any jobs it still holds with typed `Retryable`
//! frames when it wakes), evacuates the queue into `Retryable` answers
//! — accepted work is never silently lost — and spawns a replacement
//! worker on the *same* queue. The degrade latch is shared state, so a
//! shard that had degraded to the exact adder stays degraded across the
//! restart.
//!
//! ## Deadlines
//!
//! Jobs whose request carries an `EXT_DEADLINE` budget are checked when
//! their batch is formed: a job that has already outwaited its budget
//! is answered with a typed `DeadlineExceeded` frame instead of
//! occupying batch compute — under overload this sheds exactly the
//! requests whose answers would arrive too late to matter.
//!
//! ## Modeled device time
//!
//! Each shard models one adder device. With
//! [`ShardConfig::cycle_ns`] set, a worker paces itself to the modeled
//! clock: after computing a batch it sleeps until the device would have
//! finished it (`batch_cycles × cycle_ns` after the previous batch).
//! Aggregate wall-clock throughput then reflects modeled device
//! parallelism — more shards, more devices — independent of how many
//! host cores the simulation happens to get.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vlsa_batch::{Backend, SlicedExecutor, WorkerPool, LANES};
use vlsa_chaos::{ChaosInjector, WorkerFault};
use vlsa_core::{SpecError, SpeculativeAdder};
use vlsa_monitor::{ConformanceMonitor, MonitorConfig};
use vlsa_pipeline::{ResilienceConfig, ResilientPipeline};
use vlsa_telemetry::names::{labeled, server as metric};
use vlsa_telemetry::DEFAULT_BUCKETS;
use vlsa_trace::{RequestTrace, TraceEvent};

use crate::batcher::{BatchPolicy, Batcher};
use crate::clock::ModeledClock;
use crate::error::ProtocolError;
use crate::events::{EventLog, WideEvent};
use crate::protocol::{
    AddBatch, Busy, Frame, OpResult, ServerTiming, SumBatch, FLAG_EXACT, FLAG_STALLED,
};
use crate::queue::{Bounded, PushError};
use crate::slo::ServerSlo;

/// Watchdog policy for the pool's supervisor thread.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Whether a supervisor thread runs at all. Off, a dead shard stays
    /// dead (the pre-supervision behavior).
    pub enabled: bool,
    /// How often the supervisor inspects shard health.
    pub poll: Duration,
    /// A worker that is alive but has made no batch progress for this
    /// long *while work is pending* is declared wedged and deposed.
    pub wedge_timeout: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            enabled: true,
            poll: Duration::from_millis(20),
            wedge_timeout: Duration::from_secs(1),
        }
    }
}

/// Per-shard configuration, shared by every shard in a pool.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Adder width in bits (`1..=64`).
    pub nbits: usize,
    /// Speculation window in bits.
    pub window: usize,
    /// Resilience policy for each shard's pipeline.
    pub resilience: ResilienceConfig,
    /// Bounded queue capacity, in requests; pushes beyond it shed.
    pub queue_capacity: usize,
    /// Adaptive batch flush policy.
    pub batch: BatchPolicy,
    /// Modeled device cycle time in nanoseconds; `0` disables pacing
    /// (the worker runs as fast as the host allows).
    pub cycle_ns: u64,
    /// Which arithmetic backend each shard worker runs its batches on:
    /// the scalar per-op loop or the bit-sliced (transposed) engine.
    /// Outcomes are bit-identical either way; only throughput differs.
    pub backend: Backend,
    /// Ops per conformance-monitor window; `None` runs without a
    /// monitor.
    pub monitor_window_ops: Option<u64>,
    /// Supervisor watchdog policy.
    pub supervisor: SupervisorConfig,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            nbits: 64,
            window: 24,
            resilience: ResilienceConfig::default(),
            queue_capacity: 64,
            batch: BatchPolicy::default(),
            cycle_ns: 0,
            backend: Backend::Scalar,
            monitor_window_ops: None,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// The sampling decision attached to a job at submit time.
#[derive(Clone, Copy, Debug)]
pub struct JobTrace {
    /// The request's trace id (client-chosen or server-generated).
    pub trace_id: u64,
    /// Whether to echo a [`ServerTiming`] extension on the `SumBatch`
    /// (true only for client-requested traces — untraced clients never
    /// receive extension bytes).
    pub echo: bool,
    /// Microseconds since the server's trace epoch at submit time; the
    /// recorded span tree's root timestamp.
    pub start_us: u64,
}

/// What a worker sends back per job: the response frame plus — for
/// sampled requests — the trace with every server-side phase filled in
/// except `write_us`, which the connection thread measures around the
/// actual socket write before recording the trace.
#[derive(Debug)]
pub struct Reply {
    /// The response frame to write to the client.
    pub frame: Frame,
    /// The request's trace, when it was sampled.
    pub trace: Option<RequestTrace>,
}

/// A queued unit of work: one client request plus its reply channel.
#[derive(Debug)]
pub struct Job {
    /// The decoded request.
    pub request: AddBatch,
    /// Where the worker sends the response.
    pub reply: Sender<Reply>,
    /// When the request entered the queue (latency measurement base).
    pub enqueued: Instant,
    /// The sampling decision, made at submit time.
    pub trace: Option<JobTrace>,
}

/// Lock-free per-shard counters, shared between the worker and
/// observers (tests, `loadgen`, the bench suite) without requiring
/// telemetry to be enabled.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Requests executed (shed requests are not counted).
    pub requests: AtomicU64,
    /// Ops served.
    pub ops: AtomicU64,
    /// Served ops whose `ER` detector fired.
    pub stalls: AtomicU64,
    /// Served ops delivered by the exact path.
    pub exact_ops: AtomicU64,
    /// Batches flushed.
    pub batches: AtomicU64,
    /// Requests shed with a `Busy` frame.
    pub shed: AtomicU64,
    /// Requests answered with a typed `Retryable` frame (worker died or
    /// was deposed before executing them).
    pub retryable: AtomicU64,
    /// Requests shed with a typed `DeadlineExceeded` frame.
    pub deadline_exceeded: AtomicU64,
    /// Times the supervisor restarted this shard's worker.
    pub restarts: AtomicU64,
    /// Whether this shard has latched into degraded mode.
    pub degraded: AtomicBool,
}

/// A plain-value copy of [`ShardStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Requests executed.
    pub requests: u64,
    /// Ops served.
    pub ops: u64,
    /// Ops that stalled.
    pub stalls: u64,
    /// Ops served by the exact path.
    pub exact_ops: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Requests shed.
    pub shed: u64,
    /// Requests answered `Retryable`.
    pub retryable: u64,
    /// Requests shed past their deadline.
    pub deadline_exceeded: u64,
    /// Supervisor restarts.
    pub restarts: u64,
    /// Degraded-mode latch.
    pub degraded: bool,
}

impl ShardStats {
    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            exact_ops: self.exact_ops.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retryable: self.retryable.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// The liveness/progress contract between one shard's worker and the
/// supervisor. Plain atomics: the worker touches them on its hot path,
/// the supervisor polls.
#[derive(Debug, Default)]
pub struct ShardHealth {
    /// Milliseconds since the pool epoch at the worker's last sign of
    /// progress.
    last_progress_ms: AtomicU64,
    /// Jobs the worker currently holds outside the queue.
    in_flight: AtomicU64,
    /// Cleared (on unwind or exit) by the owning generation's guard;
    /// false means the worker thread is gone.
    alive: AtomicBool,
    /// The generation currently entitled to the shard. A worker that
    /// observes a newer generation is deposed: it refuses held jobs
    /// with `Retryable` and exits.
    generation: AtomicU64,
}

impl ShardHealth {
    fn touch(&self, epoch: Instant) {
        self.last_progress_ms
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }
}

/// Clears the liveness latch when the owning worker unwinds or
/// returns — but only if it still owns the shard (a deposed worker
/// must not mark its successor dead).
struct AliveGuard {
    health: Arc<ShardHealth>,
    generation: u64,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        if self.health.generation.load(Ordering::SeqCst) == self.generation {
            self.health.alive.store(false, Ordering::SeqCst);
        }
    }
}

struct ShardRuntime {
    queue: Arc<Bounded<Job>>,
    stats: Arc<ShardStats>,
    degrade: Arc<AtomicBool>,
    health: Arc<ShardHealth>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// Optional observability/fault couplings threaded through the pool:
/// the SLO accountant (fed sheds on the submit path and per-batch
/// evidence by workers), the canonical wide-event log (one record per
/// flushed batch, plus restart records), and a chaos injector whose
/// planned worker faults land inside the batch loop.
#[derive(Clone, Debug, Default)]
pub struct PoolHooks {
    /// SLO accountant shared with the scrape endpoint.
    pub slo: Option<Arc<ServerSlo>>,
    /// Wide-event log shared with the `/events` endpoint.
    pub events: Option<Arc<EventLog>>,
    /// Fault injector; `None` (production) costs nothing.
    pub chaos: Option<Arc<ChaosInjector>>,
    /// Process-wide modeled clock, folded forward by every flushed
    /// batch (always present; a fresh clock costs one atomic).
    pub clock: Arc<ModeledClock>,
}

/// Everything the shards and the supervisor share.
struct PoolInner {
    config: ShardConfig,
    shards: Vec<ShardRuntime>,
    degraded_total: Arc<AtomicU64>,
    hooks: PoolHooks,
    /// Time base for heartbeat arithmetic.
    epoch: Instant,
    /// Raised at the start of shutdown; the supervisor stops deposing.
    closing: AtomicBool,
    /// Deposed-but-unjoinable workers (wedged ones we could not wait
    /// for at restart time); joined at shutdown.
    graveyard: Mutex<Vec<JoinHandle<()>>>,
}

/// The pool of shard workers. Submitting routes by
/// `request_id % shards`; shutdown closes every queue, drains what was
/// already accepted, and joins the workers.
pub struct ShardPool {
    inner: Arc<PoolInner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl ShardPool {
    /// Starts `shards` workers, each with its own pipeline (and
    /// monitor, if configured).
    ///
    /// # Errors
    ///
    /// Returns the adder construction error for an invalid
    /// width/window combination.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn start(config: &ShardConfig, shards: usize) -> Result<ShardPool, SpecError> {
        ShardPool::start_with_hooks(config, shards, PoolHooks::default())
    }

    /// [`ShardPool::start`] with observability hooks: an SLO accountant
    /// and/or a wide-event log shared with the serving layer, and/or a
    /// chaos injector.
    ///
    /// # Errors
    ///
    /// Returns the adder construction error for an invalid
    /// width/window combination.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn start_with_hooks(
        config: &ShardConfig,
        shards: usize,
        hooks: PoolHooks,
    ) -> Result<ShardPool, SpecError> {
        assert!(shards > 0, "a pool needs at least one shard");
        // Validate once up front so workers can't die on a bad config.
        SpeculativeAdder::new(config.nbits, config.window)?;
        let mut built = Vec::with_capacity(shards);
        for _ in 0..shards {
            built.push(ShardRuntime {
                queue: Arc::new(Bounded::new(config.queue_capacity)),
                stats: Arc::new(ShardStats::default()),
                degrade: Arc::new(AtomicBool::new(false)),
                health: Arc::new(ShardHealth::default()),
                worker: Mutex::new(None),
            });
        }
        let inner = Arc::new(PoolInner {
            config: config.clone(),
            shards: built,
            degraded_total: Arc::new(AtomicU64::new(0)),
            hooks,
            epoch: Instant::now(),
            closing: AtomicBool::new(false),
            graveyard: Mutex::new(Vec::new()),
        });
        for shard_id in 0..shards {
            let shard = &inner.shards[shard_id];
            shard.health.alive.store(true, Ordering::SeqCst);
            shard.health.touch(inner.epoch);
            let handle = spawn_worker(&inner, shard_id, 0);
            *shard.worker.lock().expect("worker lock") = Some(handle);
        }
        let supervisor = config.supervisor.enabled.then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("vlsa-supervisor".to_string())
                .spawn(move || supervisor_loop(&inner))
                .expect("spawn supervisor")
        });
        Ok(ShardPool {
            inner,
            supervisor: Mutex::new(supervisor),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard a request id routes to.
    pub fn route(&self, request_id: u64) -> usize {
        (request_id % self.inner.shards.len() as u64) as usize
    }

    /// Routes and enqueues a request. On backpressure the request is
    /// shed — the error carries the exact frame (`Busy`, or a typed
    /// shutdown `Error`) the connection should send instead; nothing is
    /// silently dropped.
    ///
    /// # Errors
    ///
    /// The response frame to send when the request was not accepted.
    pub fn submit(&self, request: AddBatch, reply: Sender<Reply>) -> Result<(), Box<Frame>> {
        self.submit_traced(request, reply, None)
    }

    /// [`ShardPool::submit`] with an explicit sampling decision; `Some`
    /// makes the worker fill in a [`RequestTrace`] on the reply.
    ///
    /// # Errors
    ///
    /// The response frame to send when the request was not accepted.
    pub fn submit_traced(
        &self,
        request: AddBatch,
        reply: Sender<Reply>,
        trace: Option<JobTrace>,
    ) -> Result<(), Box<Frame>> {
        let shard_id = self.route(request.request_id);
        let shard = &self.inner.shards[shard_id];
        let request_id = request.request_id;
        let job = Job {
            request,
            reply,
            enqueued: Instant::now(),
            trace,
        };
        match shard.queue.try_push(job) {
            Ok(_) => Ok(()),
            Err(PushError::Full(_)) => {
                shard.stats.shed.fetch_add(1, Ordering::Relaxed);
                if vlsa_telemetry::is_enabled() {
                    vlsa_telemetry::recorder().counter(metric::SHED).incr();
                }
                // A shed is a request the service declined to answer:
                // it burns availability budget.
                if let Some(slo) = &self.inner.hooks.slo {
                    slo.record_shed(1);
                }
                Err(Box::new(Frame::Busy(Busy {
                    request_id,
                    shard: shard_id as u16,
                    queue_depth: shard.queue.len() as u32,
                })))
            }
            Err(PushError::Closed(_)) => {
                Err(Box::new(Frame::Error(ProtocolError::Shutdown.to_frame())))
            }
        }
    }

    /// A shard's counters.
    pub fn stats(&self, shard: usize) -> ShardSnapshot {
        self.inner.shards[shard].stats.snapshot()
    }

    /// Counters summed across all shards.
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.inner.shards {
            let s = shard.stats.snapshot();
            total.requests += s.requests;
            total.ops += s.ops;
            total.stalls += s.stalls;
            total.exact_ops += s.exact_ops;
            total.batches += s.batches;
            total.shed += s.shed;
            total.retryable += s.retryable;
            total.deadline_exceeded += s.deadline_exceeded;
            total.restarts += s.restarts;
            total.degraded |= s.degraded;
        }
        total
    }

    /// Current depth of a shard's queue.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.inner.shards[shard].queue.len()
    }

    /// A shard's degrade flag — the coupling point for an external
    /// monitor or an operator switch; raising it flips that shard to
    /// the exact path before its next op.
    pub fn degrade_flag(&self, shard: usize) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.shards[shard].degrade)
    }

    /// Shards currently latched into degraded mode.
    pub fn degraded_shards(&self) -> u64 {
        self.inner.degraded_total.load(Ordering::Relaxed)
    }

    /// Supervisor restarts across all shards.
    pub fn restarts(&self) -> u64 {
        self.totals().restarts
    }

    /// Whether [`ShardPool::shutdown`] has begun. The serving layer
    /// uses this to tell a worker loss (answer `Retryable`) from a
    /// drain (answer `Shutdown`).
    pub fn is_closing(&self) -> bool {
        self.inner.closing.load(Ordering::Relaxed)
    }

    /// Counts and builds the typed `Retryable` answer for a request
    /// whose reply channel died with its worker (the job was in flight
    /// when the worker was killed). The supervisor handles *queued*
    /// jobs itself; this is the connection thread's path for in-flight
    /// ones.
    pub fn retryable_frame(&self, request_id: u64) -> Frame {
        let shard_id = self.route(request_id);
        let shard = &self.inner.shards[shard_id];
        shard.stats.retryable.fetch_add(1, Ordering::Relaxed);
        if vlsa_telemetry::is_enabled() {
            vlsa_telemetry::recorder().counter(metric::RETRYABLE).incr();
        }
        if let Some(slo) = &self.inner.hooks.slo {
            slo.record_retryable(1);
        }
        Frame::Error(
            ProtocolError::Retryable(format!("shard {shard_id} worker lost mid-request"))
                .to_frame(),
        )
    }

    /// Closes every queue, lets the workers drain what was accepted,
    /// and joins them (plus the supervisor). Idempotent; also runs on
    /// drop.
    pub fn shutdown(&self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        for shard in &self.inner.shards {
            if let Some(handle) = shard.worker.lock().expect("worker lock").take() {
                let _ = handle.join();
            }
        }
        if let Some(handle) = self.supervisor.lock().expect("supervisor lock").take() {
            let _ = handle.join();
        }
        let deposed: Vec<JoinHandle<()>> = self
            .inner
            .graveyard
            .lock()
            .expect("graveyard lock")
            .drain(..)
            .collect();
        for handle in deposed {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.inner.shards.len())
            .field("degraded", &self.degraded_shards())
            .field("restarts", &self.restarts())
            .finish()
    }
}

/// Spawns the `generation`th worker for `shard_id` over the shard's
/// existing queue. Used at pool start (generation 0) and by the
/// supervisor for replacements.
fn spawn_worker(inner: &Arc<PoolInner>, shard_id: usize, generation: u64) -> JoinHandle<()> {
    let shard = &inner.shards[shard_id];
    let batcher = Batcher::new(Arc::clone(&shard.queue), inner.config.batch, |job: &Job| {
        job.request.ops.len().max(1)
    });
    let ctx = WorkerCtx {
        shard_id: shard_id as u16,
        generation,
        config: inner.config.clone(),
        stats: Arc::clone(&shard.stats),
        degrade: Arc::clone(&shard.degrade),
        degraded_total: Arc::clone(&inner.degraded_total),
        health: Arc::clone(&shard.health),
        epoch: inner.epoch,
        hooks: inner.hooks.clone(),
    };
    std::thread::Builder::new()
        .name(format!("vlsa-shard-{shard_id}"))
        .spawn(move || worker_loop(&ctx, &batcher))
        .expect("spawn shard worker")
}

/// The supervisor: polls shard health, deposes dead/wedged workers,
/// evacuates their queues into `Retryable` answers, and spawns
/// replacements.
fn supervisor_loop(inner: &Arc<PoolInner>) {
    let poll = inner.config.supervisor.poll;
    let wedge_ms = inner.config.supervisor.wedge_timeout.as_millis() as u64;
    while !inner.closing.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        for shard_id in 0..inner.shards.len() {
            if inner.closing.load(Ordering::Relaxed) {
                return;
            }
            let shard = &inner.shards[shard_id];
            let dead = !shard.health.alive.load(Ordering::SeqCst);
            let pending =
                shard.health.in_flight.load(Ordering::Relaxed) > 0 || !shard.queue.is_empty();
            let now_ms = inner.epoch.elapsed().as_millis() as u64;
            let stalled_ms =
                now_ms.saturating_sub(shard.health.last_progress_ms.load(Ordering::Relaxed));
            let wedged = !dead && pending && stalled_ms > wedge_ms;
            if dead || wedged {
                restart_shard(inner, shard_id, dead);
            }
        }
    }
}

/// Deposes `shard_id`'s current worker and brings up its successor.
fn restart_shard(inner: &Arc<PoolInner>, shard_id: usize, dead: bool) {
    let shard = &inner.shards[shard_id];
    let mut slot = shard.worker.lock().expect("worker lock");
    // Bump the generation first: from here the old worker (if it ever
    // wakes) knows it has been deposed and refuses its held jobs.
    let new_generation = shard.health.generation.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(handle) = slot.take() {
        if dead {
            // The thread is gone (panicked); reap it. `join` returns
            // the panic payload, which is exactly what we expect.
            let _ = handle.join();
        } else {
            // Wedged: the thread may sleep for a long time yet. Park
            // the handle; shutdown joins it.
            inner.graveyard.lock().expect("graveyard lock").push(handle);
        }
    }
    // Evacuate queued (not-yet-started) jobs into typed Retryable
    // answers so accepted work is never silently lost.
    let drained = shard.queue.drain_now();
    let drained_n = drained.len() as u64;
    for job in drained {
        let frame = Frame::Error(
            ProtocolError::Retryable(format!("shard {shard_id} worker restarted")).to_frame(),
        );
        let _ = job.reply.send(Reply { frame, trace: None });
    }
    shard.stats.restarts.fetch_add(1, Ordering::Relaxed);
    shard
        .stats
        .retryable
        .fetch_add(drained_n, Ordering::Relaxed);
    if vlsa_telemetry::is_enabled() {
        let rec = vlsa_telemetry::recorder();
        rec.counter(metric::RESTARTS).incr();
        rec.counter(metric::RETRYABLE).add(drained_n);
    }
    if let Some(slo) = &inner.hooks.slo {
        slo.record_restart(drained_n);
    }
    let degraded = shard.stats.degraded.load(Ordering::Relaxed);
    if let Some(events) = &inner.hooks.events {
        let verdict = inner
            .hooks
            .slo
            .as_ref()
            .map(|slo| slo.verdict())
            .unwrap_or_default();
        events.emit(&WideEvent {
            kind: "restart",
            shard: shard_id as u16,
            requests: 0,
            ops: 0,
            cycles: 0,
            wait_us: 0,
            service_us: 0,
            pace_us: 0,
            adder: if degraded { "exact" } else { "speculative" },
            stalls: 0,
            exact_ops: 0,
            residue_mismatches: 0,
            degraded,
            trace_id: None,
            slo_pages_firing: verdict.pages_firing,
            slo_warns_firing: verdict.warns_firing,
            generation: new_generation,
            deadline_exceeded: 0,
            retryable_drained: drained_n,
        });
    }
    // Fresh heartbeat so the replacement is not instantly "wedged".
    shard.health.in_flight.store(0, Ordering::Relaxed);
    shard.health.touch(inner.epoch);
    shard.health.alive.store(true, Ordering::SeqCst);
    *slot = Some(spawn_worker(inner, shard_id, new_generation));
}

/// Telemetry handles a worker resolves once and updates lock-free.
struct ShardMetrics {
    requests: Arc<vlsa_telemetry::Counter>,
    ops: Arc<vlsa_telemetry::Counter>,
    stalls: Arc<vlsa_telemetry::Counter>,
    exact_ops: Arc<vlsa_telemetry::Counter>,
    batches: Arc<vlsa_telemetry::Counter>,
    deadline_exceeded: Arc<vlsa_telemetry::Counter>,
    batch_ops: Arc<vlsa_telemetry::Histogram>,
    batch_fill: Arc<vlsa_telemetry::Histogram>,
    latency: Arc<vlsa_telemetry::Histogram>,
    queue_depth: Arc<vlsa_telemetry::Gauge>,
    p50: Arc<vlsa_telemetry::Gauge>,
    p99: Arc<vlsa_telemetry::Gauge>,
    p999: Arc<vlsa_telemetry::Gauge>,
    degraded_shards: Arc<vlsa_telemetry::Gauge>,
}

impl ShardMetrics {
    fn resolve(shard: u16) -> ShardMetrics {
        let rec = vlsa_telemetry::recorder();
        ShardMetrics {
            requests: rec.counter(metric::REQUESTS),
            ops: rec.counter(metric::OPS),
            stalls: rec.counter(metric::STALLS),
            exact_ops: rec.counter(metric::EXACT_OPS),
            batches: rec.counter(metric::BATCHES),
            deadline_exceeded: rec.counter(metric::DEADLINE_EXCEEDED),
            batch_ops: rec.histogram(metric::BATCH_OPS, DEFAULT_BUCKETS),
            batch_fill: rec.histogram(metric::BATCH_FILL, DEFAULT_BUCKETS),
            latency: rec.histogram(
                &labeled(metric::REQUEST_LATENCY_US, "shard", shard),
                DEFAULT_BUCKETS,
            ),
            queue_depth: rec.gauge(&labeled(metric::QUEUE_DEPTH, "shard", shard)),
            p50: rec.gauge(&labeled(metric::LATENCY_P50_US, "shard", shard)),
            p99: rec.gauge(&labeled(metric::LATENCY_P99_US, "shard", shard)),
            p999: rec.gauge(&labeled(metric::LATENCY_P999_US, "shard", shard)),
            degraded_shards: rec.gauge(metric::DEGRADED_SHARDS),
        }
    }
}

/// Pre-creates every per-shard instrument (plus the lazily-resolved
/// shed counter) at zero. Workers resolve their own handles at spawn,
/// which races the embedded history's first ingest tick — warming the
/// registry first guarantees the t=0 snapshot carries zero baselines,
/// so `increase()` over the whole run counts from the true start.
pub(crate) fn warm_metrics(shards: usize) {
    if !vlsa_telemetry::is_enabled() {
        return;
    }
    for shard in 0..shards {
        drop(ShardMetrics::resolve(shard as u16));
    }
    vlsa_telemetry::recorder().counter(metric::SHED);
}

/// Everything one worker generation needs, bundled for `spawn_worker`.
struct WorkerCtx {
    shard_id: u16,
    generation: u64,
    config: ShardConfig,
    stats: Arc<ShardStats>,
    degrade: Arc<AtomicBool>,
    degraded_total: Arc<AtomicU64>,
    health: Arc<ShardHealth>,
    epoch: Instant,
    hooks: PoolHooks,
}

impl WorkerCtx {
    /// Whether a newer generation owns the shard now.
    fn deposed(&self) -> bool {
        self.health.generation.load(Ordering::SeqCst) != self.generation
    }

    /// Answers jobs this (deposed) worker holds with typed `Retryable`
    /// frames — it no longer owns the shard, and the jobs were not
    /// executed.
    fn refuse_jobs(&self, jobs: Vec<Job>) {
        let n = jobs.len() as u64;
        for job in jobs {
            let frame = Frame::Error(
                ProtocolError::Retryable(format!(
                    "shard {} worker deposed before executing",
                    self.shard_id
                ))
                .to_frame(),
            );
            let _ = job.reply.send(Reply { frame, trace: None });
        }
        self.stats.retryable.fetch_add(n, Ordering::Relaxed);
        if vlsa_telemetry::is_enabled() {
            vlsa_telemetry::recorder().counter(metric::RETRYABLE).add(n);
        }
        if let Some(slo) = &self.hooks.slo {
            slo.record_retryable(n);
        }
        self.health.in_flight.store(0, Ordering::Relaxed);
    }

    /// Sheds one job that outwaited its deadline budget with a typed
    /// `DeadlineExceeded` frame.
    fn shed_expired(
        &self,
        job: Job,
        budget_us: u32,
        waited_us: u32,
        metrics: Option<&ShardMetrics>,
    ) {
        let frame = Frame::Error(
            ProtocolError::DeadlineExceeded {
                budget_us,
                waited_us,
            }
            .to_frame(),
        );
        let _ = job.reply.send(Reply { frame, trace: None });
        self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = metrics {
            m.deadline_exceeded.incr();
        }
        if let Some(slo) = &self.hooks.slo {
            slo.record_deadline_exceeded(1);
        }
    }
}

fn worker_loop(ctx: &WorkerCtx, batcher: &Batcher<Job>) {
    let shard_id = ctx.shard_id;
    let config = &ctx.config;
    let stats = &ctx.stats;
    let adder = SpeculativeAdder::new(config.nbits, config.window).expect("validated in start");
    let mut pipeline = ResilientPipeline::new(adder, config.resilience);
    pipeline.set_degrade_signal(Arc::clone(&ctx.degrade));
    // The sliced backend's executor, with a small shard-local
    // work-stealing set so a multi-block request splits across threads;
    // single-block requests run inline on this worker.
    let executor = match config.backend {
        Backend::Scalar => None,
        Backend::Sliced => Some(
            SlicedExecutor::new(config.nbits, config.window)
                .with_pool(Arc::new(WorkerPool::new(2))),
        ),
    };
    let mut monitor = config.monitor_window_ops.map(|window_ops| {
        let mc = MonitorConfig::new(config.nbits, config.window).with_window_ops(window_ops);
        let mut m = ConformanceMonitor::new(mc);
        m.set_degrade_signal(Arc::clone(&ctx.degrade));
        m
    });
    let metrics = vlsa_telemetry::is_enabled().then(|| ShardMetrics::resolve(shard_id));
    let spans = vlsa_trace::recorder();
    // The worker's marker stack for the on-demand sampling profiler:
    // `/profile` snapshots tell you which phase each shard is in.
    let stack = vlsa_profile::register_thread(&format!("vlsa-shard-{shard_id}"));
    let f_wait = vlsa_profile::frame("batch_wait");
    let f_service = vlsa_profile::frame("pipeline_service");
    let f_monitor = vlsa_profile::frame("conformance_monitor");
    let f_pace = vlsa_profile::frame("device_pace");
    let f_reply = vlsa_profile::frame("reply_dispatch");
    let mask = if config.nbits == 64 {
        u64::MAX
    } else {
        (1u64 << config.nbits) - 1
    };
    // Clears the liveness latch when this worker unwinds (panic) or
    // returns, unless a successor already took over.
    let _alive = AliveGuard {
        health: Arc::clone(&ctx.health),
        generation: ctx.generation,
    };
    // The modeled device clock: the instant the device finished its
    // last batch.
    let mut device_free = Instant::now();
    let mut total_cycles = 0u64;
    // The degrade latch survives restarts: a successor of a degraded
    // worker must not re-count the shard into `degraded_total`.
    let mut was_degraded = stats.degraded.load(Ordering::Relaxed);
    // Conformance alerts are cumulative on the monitor; the SLO
    // correctness feed wants per-batch deltas.
    let mut seen_alerts = 0usize;

    loop {
        let (jobs, formation_start) = {
            let _in_wait = stack.push(f_wait);
            batcher.next_batch_timed()
        };
        if jobs.is_empty() {
            break; // closed and drained
        }
        ctx.health.touch(ctx.epoch);
        ctx.health
            .in_flight
            .store(jobs.len() as u64, Ordering::Relaxed);
        if ctx.deposed() {
            ctx.refuse_jobs(jobs);
            break;
        }
        // Planned chaos lands here: after the batch is held (so a kill
        // is a genuine mid-batch loss) and before compute.
        if let Some(chaos) = &ctx.hooks.chaos {
            match chaos.worker_fault(shard_id, total_cycles) {
                Some(WorkerFault::Panic) => {
                    panic!("chaos: injected kill of shard {shard_id} worker (mid-batch)")
                }
                Some(WorkerFault::Stall(wedge)) => {
                    // Deliberately no heartbeat: this is the wedge the
                    // watchdog exists to catch.
                    std::thread::sleep(wedge);
                    if ctx.deposed() {
                        ctx.refuse_jobs(jobs);
                        break;
                    }
                    ctx.health.touch(ctx.epoch);
                }
                None => {}
            }
        }
        // Deadline check at batch formation: a job that already
        // outwaited its client-stamped budget is answered with a typed
        // DeadlineExceeded instead of occupying compute.
        let mut batch_deadline_shed = 0u64;
        let mut kept = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job.request.deadline_us {
                Some(budget_us) => {
                    let waited_us = us32(job.enqueued.elapsed());
                    if u64::from(waited_us) > u64::from(budget_us) {
                        ctx.shed_expired(job, budget_us, waited_us, metrics.as_ref());
                        batch_deadline_shed += 1;
                    } else {
                        kept.push(job);
                    }
                }
                None => kept.push(job),
            }
        }
        let jobs = kept;
        if jobs.is_empty() {
            // The whole batch expired; an all-shed batch is progress,
            // not an exit condition.
            ctx.health.in_flight.store(0, Ordering::Relaxed);
            continue;
        }
        let batch_ready = Instant::now();
        let batch_start_cycle = total_cycles;
        let batch_requests = jobs.len() as u64;
        let mut batch_cycles = 0u64;
        let mut batch_ops = 0u64;
        let mut batch_stalls = 0u64;
        let mut batch_exact = 0u64;
        let mut batch_residue = 0u64;
        let mut first_trace_id = None;
        let mut last_compute_end = batch_ready;
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            let _in_service = stack.push(f_service);
            // The pool routes every width through the same shard
            // pipeline; requests narrower than the shard adder still
            // add correctly because operands are masked to the
            // *request* width first and sums are masked on the way out.
            let ops: Vec<(u64, u64)> = job
                .request
                .ops
                .iter()
                .map(|&(a, b)| {
                    (
                        a & request_mask(job.request.nbits),
                        b & request_mask(job.request.nbits),
                    )
                })
                .collect();
            let batch = match &executor {
                Some(executor) => pipeline.run_batch_on(executor, &ops),
                None => pipeline.run_batch(&ops),
            };
            if let Some(m) = monitor.as_mut() {
                let _in_monitor = stack.push(f_monitor);
                for (&(a, b), outcome) in ops.iter().zip(&batch.outcomes) {
                    m.observe(a & mask, b & mask, outcome.stalled, outcome.cycles);
                }
                if let Some(jt) = &job.trace {
                    // Drift alerts closing over this window cite the
                    // sampled requests that fed it.
                    m.note_exemplar(jt.trace_id);
                }
            }
            let compute_end = Instant::now();
            ctx.health.touch(ctx.epoch);
            last_compute_end = compute_end;
            batch_cycles += batch.stats.cycles;
            batch_ops += batch.stats.ops;
            batch_stalls += batch.stats.er_recoveries;
            batch_residue += batch.stats.residue_mismatches;
            if first_trace_id.is_none() {
                first_trace_id = job.trace.as_ref().map(|jt| jt.trace_id);
            }
            stats.requests.fetch_add(1, Ordering::Relaxed);
            stats.ops.fetch_add(batch.stats.ops, Ordering::Relaxed);
            stats
                .stalls
                .fetch_add(batch.stats.er_recoveries, Ordering::Relaxed);
            let exact = batch.outcomes.iter().filter(|o| o.exact_path).count() as u64;
            batch_exact += exact;
            stats.exact_ops.fetch_add(exact, Ordering::Relaxed);
            if let Some(m) = &metrics {
                m.requests.incr();
                m.ops.add(batch.stats.ops);
                m.stalls.add(batch.stats.er_recoveries);
                m.exact_ops.add(exact);
                // Lane occupancy: how this job's ops decompose into
                // 64-lane words. Recorded for both backends so flipping
                // `--backend` never changes which series exist.
                let mut remaining = batch.stats.ops;
                while remaining > 0 {
                    let fill = remaining.min(LANES as u64);
                    m.batch_fill.record(fill);
                    remaining -= fill;
                }
            }
            let results: Vec<OpResult> = batch
                .outcomes
                .iter()
                .map(|o| OpResult {
                    sum: o.sum & request_mask(job.request.nbits),
                    flags: u8::from(o.stalled) * FLAG_STALLED + u8::from(o.exact_path) * FLAG_EXACT,
                })
                .collect();
            // Phase decomposition: queue (enqueue → formation start),
            // linger (formation start → batch dispatch), service (batch
            // dispatch → this job computed — head-of-batch wait counts
            // as service of the batch). Phases are contiguous so they
            // sum to the request's server-side residency.
            let trace = job.trace.map(|jt| {
                let linger_from = formation_start.max(job.enqueued);
                RequestTrace {
                    trace_id: jt.trace_id,
                    request_id: job.request.request_id,
                    shard: shard_id,
                    nbits: job.request.nbits,
                    ops: batch.stats.ops as u32,
                    stalls: batch.stats.er_recoveries as u32,
                    exact_ops: exact as u32,
                    cycles: batch.stats.cycles,
                    start_us: jt.start_us,
                    queue_us: us32(formation_start.saturating_duration_since(job.enqueued)),
                    linger_us: us32(batch_ready.saturating_duration_since(linger_from)),
                    service_us: us32(compute_end.saturating_duration_since(batch_ready)),
                    pace_us: 0,  // filled after the pacing sleep
                    write_us: 0, // filled by the connection thread
                }
            });
            replies.push(PendingReply {
                request_id: job.request.request_id,
                results,
                reply: job.reply,
                enqueued: job.enqueued,
                echo: job.trace.is_some_and(|jt| jt.echo),
                trace,
                compute_end,
            });
        }
        total_cycles += batch_cycles;
        stats.batches.fetch_add(1, Ordering::Relaxed);

        // Pace to the modeled device: this batch completes
        // batch_cycles × cycle_ns after the device last went free (or
        // after compute began, if the device sat idle). Sleep in
        // bounded slices so the heartbeat keeps beating — a long
        // modeled pace is progress, not a wedge.
        if config.cycle_ns > 0 {
            let _in_pace = stack.push(f_pace);
            let now = Instant::now();
            if device_free < now {
                device_free = now;
            }
            device_free += Duration::from_nanos(batch_cycles.saturating_mul(config.cycle_ns));
            let mut now = Instant::now();
            while device_free > now {
                std::thread::sleep((device_free - now).min(Duration::from_millis(100)));
                ctx.health.touch(ctx.epoch);
                now = Instant::now();
            }
        }

        // Replies go out only once the modeled device is done, so the
        // measured latency includes the modeled service time. A reply
        // whose request expired during compute/pacing still gets its
        // sums — it was executed; deadline shedding only covers work
        // not yet started.
        let dispatch = Instant::now();
        let _in_reply = stack.push(f_reply);
        let latency_threshold_us = ctx.hooks.slo.as_ref().map(|slo| slo.latency_threshold_us());
        let (mut lat_good, mut lat_bad) = (0u64, 0u64);
        for pending in replies {
            let latency_us = pending.enqueued.elapsed().as_micros() as u64;
            if let Some(m) = &metrics {
                m.latency.record(latency_us);
            }
            if let Some(threshold) = latency_threshold_us {
                if latency_us <= threshold {
                    lat_good += 1;
                } else {
                    lat_bad += 1;
                }
            }
            let trace = pending.trace.map(|mut rt| {
                // Device pacing plus any tail of the batch computed
                // after this job — everything between this job's
                // compute end and reply dispatch.
                rt.pace_us = us32(dispatch.saturating_duration_since(pending.compute_end));
                rt
            });
            let timing = trace.filter(|_| pending.echo).map(|rt| ServerTiming {
                trace_id: rt.trace_id,
                queue_us: rt.queue_us,
                linger_us: rt.linger_us,
                service_us: rt.service_us,
                pace_us: rt.pace_us,
            });
            let frame = Frame::SumBatch(SumBatch {
                request_id: pending.request_id,
                shard: shard_id,
                results: pending.results,
                timing,
                unknown: Vec::new(),
            });
            // A send error means the client vanished; its result dies
            // with the channel, which is fine — the op was still
            // executed and accounted.
            let _ = pending.reply.send(Reply { frame, trace });
        }
        ctx.health.in_flight.store(0, Ordering::Relaxed);
        ctx.health.touch(ctx.epoch);

        let degraded_now = ctx.degrade.load(Ordering::Relaxed) || pipeline.is_degraded();
        if degraded_now && !was_degraded {
            was_degraded = true;
            stats.degraded.store(true, Ordering::Relaxed);
            ctx.degraded_total.fetch_add(1, Ordering::Relaxed);
        }

        // Feed the SLO accountant: availability good = every request
        // answered (sheds arrive via the submit path); latency verdicts
        // from the dispatch loop; correctness bad = residue mismatches
        // plus any conformance alerts this batch closed over.
        let alert_delta = monitor.as_ref().map_or(0, |m| {
            let total = m.alerts().len();
            let delta = total.saturating_sub(seen_alerts);
            seen_alerts = total;
            delta as u64
        });
        // Modeled time on this shard: cycles so far at the configured
        // cycle period (1 ns/cycle when unpaced, keeping the clock
        // monotone and deterministic in tests).
        let now_ns = total_cycles.saturating_mul(config.cycle_ns.max(1));
        ctx.hooks.clock.advance_to(now_ns);
        let verdict = ctx
            .hooks
            .slo
            .as_ref()
            .map(|slo| {
                let corr_bad = batch_residue + alert_delta;
                let corr_good = batch_ops.saturating_sub(corr_bad);
                slo.observe_batch(
                    now_ns,
                    batch_requests,
                    lat_good,
                    lat_bad,
                    corr_good,
                    corr_bad,
                )
            })
            .unwrap_or_default();
        if let Some(events) = &ctx.hooks.events {
            events.emit(&WideEvent {
                kind: "batch",
                shard: shard_id,
                requests: batch_requests.min(u64::from(u32::MAX)) as u32,
                ops: batch_ops,
                cycles: batch_cycles,
                wait_us: us32(batch_ready.saturating_duration_since(formation_start)),
                service_us: us32(last_compute_end.saturating_duration_since(batch_ready)),
                pace_us: us32(dispatch.saturating_duration_since(last_compute_end)),
                adder: if degraded_now { "exact" } else { "speculative" },
                stalls: batch_stalls,
                exact_ops: batch_exact,
                residue_mismatches: batch_residue,
                degraded: degraded_now,
                trace_id: first_trace_id,
                slo_pages_firing: verdict.pages_firing,
                slo_warns_firing: verdict.warns_firing,
                generation: ctx.generation,
                deadline_exceeded: batch_deadline_shed,
                retryable_drained: 0,
            });
        }

        if let Some(m) = &metrics {
            m.batches.incr();
            m.batch_ops.record(batch_ops);
            m.queue_depth.set(batcher.queue().len() as f64);
            for (gauge, q) in [(&m.p50, 0.5), (&m.p99, 0.99), (&m.p999, 0.999)] {
                if let Some(v) = m.latency.quantile(q) {
                    gauge.set(v);
                }
            }
            m.degraded_shards
                .set(ctx.degraded_total.load(Ordering::Relaxed) as f64);
        }
        if let Some(rec) = &spans {
            rec.record(
                TraceEvent::complete("batch", "server", batch_start_cycle, batch_cycles.max(1))
                    .on_track(u32::from(shard_id))
                    .arg("shard", u64::from(shard_id))
                    .arg("ops", batch_ops),
            );
        }
    }
    if let Some(m) = monitor.as_mut() {
        m.finish();
    }
}

/// A computed job parked between the compute loop and reply dispatch.
struct PendingReply {
    request_id: u64,
    results: Vec<OpResult>,
    reply: Sender<Reply>,
    enqueued: Instant,
    echo: bool,
    trace: Option<RequestTrace>,
    compute_end: Instant,
}

/// A duration as whole microseconds, saturating at `u32::MAX` (~71
/// minutes — far beyond any real phase).
fn us32(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

fn request_mask(nbits: u8) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use vlsa_chaos::FaultPlan;

    fn submit_and_wait(pool: &ShardPool, request_id: u64, ops: Vec<(u64, u64)>) -> SumBatch {
        let (tx, rx) = channel();
        pool.submit(AddBatch::new(request_id, 32, ops), tx)
            .expect("accepted");
        match rx.recv().expect("reply").frame {
            Frame::SumBatch(s) => s,
            other => panic!("expected sums, got {other:?}"),
        }
    }

    fn fast_supervisor() -> SupervisorConfig {
        SupervisorConfig {
            enabled: true,
            poll: Duration::from_millis(5),
            wedge_timeout: Duration::from_millis(60),
        }
    }

    #[test]
    fn pool_delivers_correct_sums_with_shard_ids() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            3,
        )
        .expect("valid config");
        for id in 0..6u64 {
            let sums = submit_and_wait(&pool, id, vec![(id, 100), (7, 8)]);
            assert_eq!(sums.request_id, id);
            assert_eq!(sums.shard, (id % 3) as u16);
            assert_eq!(sums.results.len(), 2);
            assert_eq!(sums.results[0].sum, id + 100);
            assert_eq!(sums.results[1].sum, 15);
        }
        let totals = pool.totals();
        assert_eq!(totals.requests, 6);
        assert_eq!(totals.ops, 12);
        assert_eq!(totals.shed, 0);
        assert_eq!(totals.restarts, 0);
        assert_eq!(totals.retryable, 0);
        assert_eq!(totals.deadline_exceeded, 0);
        pool.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_a_busy_frame() {
        // One shard with a tiny queue and slow modeled pacing: a fat
        // first batch parks the worker in its pacing sleep (max_ops 1
        // keeps the batcher from lingering and draining the queue for
        // us), and the fill loop below then overfills the 2-deep queue
        // while the worker is provably not consuming.
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                queue_capacity: 2,
                cycle_ns: 1_000_000,
                batch: BatchPolicy {
                    max_ops: 1,
                    linger: Duration::ZERO,
                },
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let mut receivers = Vec::new();
        let (tx, rx) = channel();
        pool.submit(
            AddBatch::new(0, 32, vec![(1, 2); 200]), // ≥ 200 modeled ms of pacing
            tx,
        )
        .expect("empty queue accepts");
        receivers.push(rx);
        std::thread::sleep(Duration::from_millis(50));
        let mut busy = 0;
        for id in 1..=20u64 {
            let (tx, rx) = channel();
            match pool.submit(AddBatch::new(id, 32, vec![(1, 2)]), tx) {
                Ok(()) => receivers.push(rx),
                Err(frame) => match *frame {
                    Frame::Busy(b) => {
                        busy += 1;
                        assert_eq!(b.shard, 0);
                        assert!(b.queue_depth >= 1);
                    }
                    other => panic!("expected busy, got {other:?}"),
                },
            }
        }
        // The queue holds at most 2 of the 20, however the scheduler
        // interleaved the fill with the worker's wake-up.
        assert!(busy >= 18, "overfilled queue must shed, got {busy}");
        assert_eq!(pool.totals().shed, busy);
        // Every accepted request still gets its answer — shed ≠ drop.
        for rx in receivers {
            assert!(matches!(
                rx.recv().expect("reply").frame,
                Frame::SumBatch(_)
            ));
        }
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_shutdown_error() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        pool.shutdown();
        assert!(pool.is_closing());
        let (tx, _rx) = channel();
        let err = pool
            .submit(AddBatch::new(1, 32, vec![(1, 2)]), tx)
            .expect_err("closed");
        match *err {
            Frame::Error(e) => assert_eq!(e.code, ProtocolError::Shutdown.code()),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    #[test]
    fn degrade_flag_flips_one_shard_to_the_exact_path() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            2,
        )
        .expect("valid config");
        pool.degrade_flag(0).store(true, Ordering::Relaxed);
        // request_id 0 routes to shard 0 (degraded), 1 to shard 1.
        let degraded = submit_and_wait(&pool, 0, vec![(1, 2), (3, 4)]);
        assert!(degraded.results.iter().all(OpResult::exact_path));
        let healthy = submit_and_wait(&pool, 1, vec![(1, 2), (3, 4)]);
        assert!(healthy.results.iter().all(|r| !r.exact_path()));
        assert_eq!(degraded.results[0].sum, 3);
        assert_eq!(healthy.results[1].sum, 7);
        assert_eq!(pool.degraded_shards(), 1);
        assert!(pool.stats(0).degraded);
        assert!(!pool.stats(1).degraded);
        pool.shutdown();
    }

    #[test]
    fn a_killed_worker_is_restarted_and_the_shard_answers_again() {
        let chaos = Arc::new(ChaosInjector::new(
            "kill:shard=0@batch=2".parse::<FaultPlan>().expect("plan"),
        ));
        let pool = ShardPool::start_with_hooks(
            &ShardConfig {
                nbits: 32,
                window: 16,
                supervisor: fast_supervisor(),
                ..ShardConfig::default()
            },
            2,
            PoolHooks {
                chaos: Some(Arc::clone(&chaos)),
                ..PoolHooks::default()
            },
        )
        .expect("valid config");
        // Batch 1 on shard 0 is fine.
        assert_eq!(submit_and_wait(&pool, 0, vec![(1, 2)]).results[0].sum, 3);
        // Batch 2 trips the kill: the worker panics holding the job, so
        // the reply channel dies — the serving layer maps that to a
        // typed Retryable for the in-flight request.
        let (tx, rx) = channel();
        pool.submit(AddBatch::new(2, 32, vec![(5, 6)]), tx)
            .expect("accepted");
        assert!(rx.recv().is_err(), "sender died with the worker");
        let retry = pool.retryable_frame(2);
        match retry {
            Frame::Error(e) => assert_eq!(e.code, ProtocolError::CODE_RETRYABLE),
            other => panic!("expected retryable, got {other:?}"),
        }
        // The supervisor notices and restarts; the shard answers again
        // without a process (or pool) restart.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.stats(0).restarts == 0 {
            assert!(Instant::now() < deadline, "supervisor never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(submit_and_wait(&pool, 4, vec![(10, 20)]).results[0].sum, 30);
        assert_eq!(chaos.counts().kills, 1);
        assert_eq!(pool.restarts(), 1);
        assert!(pool.totals().retryable >= 1, "the lost job was accounted");
        // Shard 1 never noticed.
        assert_eq!(submit_and_wait(&pool, 1, vec![(2, 3)]).results[0].sum, 5);
        pool.shutdown();
    }

    #[test]
    fn a_wedged_worker_trips_the_watchdog_and_queued_work_is_refused_typed() {
        let chaos = Arc::new(ChaosInjector::new(
            "stall:shard=0@batch=1,ms=400"
                .parse::<FaultPlan>()
                .expect("plan"),
        ));
        let pool = ShardPool::start_with_hooks(
            &ShardConfig {
                nbits: 32,
                window: 16,
                supervisor: fast_supervisor(),
                ..ShardConfig::default()
            },
            1,
            PoolHooks {
                chaos: Some(Arc::clone(&chaos)),
                ..PoolHooks::default()
            },
        )
        .expect("valid config");
        // Job 1 is held by the stalled worker; job 2 (submitted while
        // it sleeps) sits in the queue.
        let (tx1, rx1) = channel();
        pool.submit(AddBatch::new(0, 32, vec![(1, 2)]), tx1)
            .expect("accepted");
        std::thread::sleep(Duration::from_millis(30)); // let batch 1 form alone
        let (tx2, rx2) = channel();
        pool.submit(AddBatch::new(1, 32, vec![(3, 4)]), tx2)
            .expect("accepted");
        // The watchdog deposes the wedged worker and evacuates job 2.
        let frame2 = rx2
            .recv_timeout(Duration::from_secs(5))
            .expect("queued job answered by the supervisor")
            .frame;
        match frame2 {
            Frame::Error(e) => assert_eq!(e.code, ProtocolError::CODE_RETRYABLE),
            other => panic!("expected retryable, got {other:?}"),
        }
        // The deposed worker wakes, sees the new generation, and
        // refuses the job it still holds — typed, never silent.
        let frame1 = rx1
            .recv_timeout(Duration::from_secs(5))
            .expect("held job answered by the deposed worker")
            .frame;
        match frame1 {
            Frame::Error(e) => assert_eq!(e.code, ProtocolError::CODE_RETRYABLE),
            other => panic!("expected retryable, got {other:?}"),
        }
        // The replacement answers new traffic.
        assert_eq!(submit_and_wait(&pool, 2, vec![(7, 8)]).results[0].sum, 15);
        let totals = pool.totals();
        assert_eq!(totals.restarts, 1);
        assert!(totals.retryable >= 2, "{totals:?}");
        assert_eq!(chaos.counts().stalls, 1);
        pool.shutdown();
    }

    #[test]
    fn the_degrade_latch_survives_a_worker_restart() {
        let chaos = Arc::new(ChaosInjector::new(
            "kill:shard=0@batch=2".parse::<FaultPlan>().expect("plan"),
        ));
        let pool = ShardPool::start_with_hooks(
            &ShardConfig {
                nbits: 32,
                window: 16,
                supervisor: fast_supervisor(),
                ..ShardConfig::default()
            },
            1,
            PoolHooks {
                chaos: Some(chaos),
                ..PoolHooks::default()
            },
        )
        .expect("valid config");
        pool.degrade_flag(0).store(true, Ordering::Relaxed);
        // Batch 1 latches the degrade state.
        assert!(submit_and_wait(&pool, 0, vec![(1, 2)]).results[0].exact_path());
        assert_eq!(pool.degraded_shards(), 1);
        // Batch 2 kills the worker; wait for the restart.
        let (tx, rx) = channel();
        pool.submit(AddBatch::new(1, 32, vec![(5, 6)]), tx)
            .expect("accepted");
        let _ = rx.recv(); // dies with the worker
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.stats(0).restarts == 0 {
            assert!(Instant::now() < deadline, "supervisor never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The successor is still degraded (shared latch), and the shard
        // is not double-counted.
        let sums = submit_and_wait(&pool, 2, vec![(10, 20)]);
        assert!(sums.results[0].exact_path(), "degrade latch survived");
        assert_eq!(pool.degraded_shards(), 1, "no double count across restart");
        assert!(pool.stats(0).degraded);
        pool.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_with_a_typed_frame() {
        // Park the worker in modeled pacing with a fat first request,
        // then enqueue a request with a 1 ms budget — by the time the
        // worker forms its next batch, the budget is long gone.
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                cycle_ns: 1_000_000, // 1 ms per cycle
                batch: BatchPolicy {
                    max_ops: 1,
                    linger: Duration::ZERO,
                },
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let (tx, rx_fat) = channel();
        pool.submit(AddBatch::new(0, 32, vec![(1, 2); 100]), tx)
            .expect("accepted");
        std::thread::sleep(Duration::from_millis(10)); // worker is pacing now
        let (tx, rx) = channel();
        pool.submit(
            AddBatch::new(1, 32, vec![(3, 4)]).with_deadline_us(1_000),
            tx,
        )
        .expect("accepted");
        let frame = rx.recv().expect("answered").frame;
        match frame {
            Frame::Error(e) => {
                assert_eq!(e.code, ProtocolError::CODE_DEADLINE_EXCEEDED);
                assert!(e.detail.contains("budget 1000"), "{}", e.detail);
            }
            other => panic!("expected deadline exceeded, got {other:?}"),
        }
        // The fat request (no deadline) still gets real sums.
        assert!(matches!(
            rx_fat.recv().expect("answered").frame,
            Frame::SumBatch(_)
        ));
        let totals = pool.totals();
        assert_eq!(totals.deadline_exceeded, 1);
        // And a request with a generous budget is served normally.
        let (tx, rx) = channel();
        pool.submit(
            AddBatch::new(2, 32, vec![(5, 6)]).with_deadline_us(30_000_000),
            tx,
        )
        .expect("accepted");
        assert!(matches!(
            rx.recv().expect("reply").frame,
            Frame::SumBatch(_)
        ));
        pool.shutdown();
    }

    #[test]
    fn traced_jobs_come_back_with_a_contiguous_phase_decomposition() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                cycle_ns: 1_000, // make device_pace nonzero and visible
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let (tx, rx) = channel();
        let submitted = Instant::now();
        pool.submit_traced(
            AddBatch::new(5, 32, vec![(1, 2); 256]),
            tx,
            Some(JobTrace {
                trace_id: 0xFACE,
                echo: true,
                start_us: 12,
            }),
        )
        .expect("accepted");
        let reply = rx.recv().expect("reply");
        let observed_us = submitted.elapsed().as_micros() as u64;
        let rt = reply.trace.expect("sampled job carries a trace");
        assert_eq!(rt.trace_id, 0xFACE);
        assert_eq!(rt.request_id, 5);
        assert_eq!(rt.shard, 0);
        assert_eq!(rt.start_us, 12);
        assert_eq!(rt.ops, 256);
        // Phases sum to the server-side residency, which cannot exceed
        // what the submitter observed (write_us is still 0 here).
        assert_eq!(rt.write_us, 0);
        assert!(rt.total_us() <= observed_us + 1);
        // 256 single-cycle-ish ops at 1 µs/cycle: pacing must show up.
        assert!(rt.pace_us > 0, "{rt:?}");
        // The echoed wire timing mirrors the trace phases exactly.
        let Frame::SumBatch(sums) = reply.frame else {
            panic!("expected sums");
        };
        let timing = sums.timing.expect("echo requested");
        assert_eq!(timing.trace_id, 0xFACE);
        assert_eq!(
            timing.total_us(),
            u64::from(rt.queue_us)
                + u64::from(rt.linger_us)
                + u64::from(rt.service_us)
                + u64::from(rt.pace_us)
        );

        // echo: false keeps the wire clean but still returns the trace.
        let (tx, rx) = channel();
        pool.submit_traced(
            AddBatch::new(6, 32, vec![(3, 4)]),
            tx,
            Some(JobTrace {
                trace_id: 0xBEEF,
                echo: false,
                start_us: 0,
            }),
        )
        .expect("accepted");
        let reply = rx.recv().expect("reply");
        assert_eq!(reply.trace.expect("traced").trace_id, 0xBEEF);
        let Frame::SumBatch(sums) = reply.frame else {
            panic!("expected sums");
        };
        assert!(sums.timing.is_none(), "server-sampled replies stay bare");
        pool.shutdown();
    }

    #[test]
    fn hooked_pool_emits_wide_events_and_feeds_the_slo_accountant() {
        use crate::events::EventLogConfig;
        use vlsa_telemetry::Json;

        let slo = Arc::new(ServerSlo::new(vlsa_slo::Objectives::demo()));
        let events = Arc::new(EventLog::new(EventLogConfig::default()));
        let pool = ShardPool::start_with_hooks(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            1,
            PoolHooks {
                slo: Some(Arc::clone(&slo)),
                events: Some(Arc::clone(&events)),
                ..PoolHooks::default()
            },
        )
        .expect("valid config");
        for id in 0..4u64 {
            let sums = submit_and_wait(&pool, id, vec![(id, 10)]);
            assert_eq!(sums.results[0].sum, id + 10);
        }
        pool.shutdown();

        // One wide event per batch, each a parseable JSON line carrying
        // the canonical fields.
        assert!(events.emitted() >= 1, "batches must emit events");
        let jsonl = events.last_jsonl(16);
        let last = jsonl.lines().last().expect("at least one event");
        let doc = Json::parse(last).expect("valid JSON line");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("batch"));
        assert_eq!(doc.get("shard").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("adder").and_then(Json::as_str), Some("speculative"));
        assert!(doc.get("ops").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert_eq!(doc.get("slo_pages_firing").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("generation").and_then(Json::as_u64), Some(0));

        // The SLO accountant saw the answered requests: its modeled
        // clock advanced and nothing is burning on a healthy stream.
        let status = slo.status_json();
        assert!(
            status
                .get("modeled_now_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
        assert_eq!(slo.verdict(), crate::slo::SloVerdict::default());
    }

    #[test]
    fn modeled_pacing_slows_the_worker_down() {
        // 1 µs per cycle, ~1000 single-cycle ops → ≥ 1 ms of modeled
        // device time for the whole request.
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 64,
                window: 32,
                cycle_ns: 1_000,
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let ops: Vec<(u64, u64)> = (0..1000).map(|i| (i, i + 1)).collect();
        let start = Instant::now();
        let sums = submit_and_wait(&pool, 0, ops);
        let elapsed = start.elapsed();
        assert_eq!(sums.results.len(), 1000);
        assert!(
            elapsed >= Duration::from_millis(1),
            "pacing should cost ≥ 1ms, took {elapsed:?}"
        );
        pool.shutdown();
    }
}
