//! The shard pool: one `ResilientPipeline` worker thread per shard,
//! operands routed by request id.
//!
//! Each shard owns a bounded job queue ([`crate::queue::Bounded`]), an
//! adaptive [`crate::batcher::Batcher`], a `ResilientPipeline`, and —
//! optionally — a live `ConformanceMonitor` wired to the shard's
//! degrade flag, so traffic drift on one shard flips *that shard* to
//! the exact path while the others keep speculating.
//!
//! ## Modeled device time
//!
//! Each shard models one adder device. With
//! [`ShardConfig::cycle_ns`] set, a worker paces itself to the modeled
//! clock: after computing a batch it sleeps until the device would have
//! finished it (`batch_cycles × cycle_ns` after the previous batch).
//! Aggregate wall-clock throughput then reflects modeled device
//! parallelism — more shards, more devices — independent of how many
//! host cores the simulation happens to get.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vlsa_core::{SpecError, SpeculativeAdder};
use vlsa_monitor::{ConformanceMonitor, MonitorConfig};
use vlsa_pipeline::{ResilienceConfig, ResilientPipeline};
use vlsa_telemetry::names::{labeled, server as metric};
use vlsa_telemetry::DEFAULT_BUCKETS;
use vlsa_trace::{RequestTrace, TraceEvent};

use crate::batcher::{BatchPolicy, Batcher};
use crate::error::ProtocolError;
use crate::events::{EventLog, WideEvent};
use crate::protocol::{
    AddBatch, Busy, Frame, OpResult, ServerTiming, SumBatch, FLAG_EXACT, FLAG_STALLED,
};
use crate::queue::{Bounded, PushError};
use crate::slo::ServerSlo;

/// Per-shard configuration, shared by every shard in a pool.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Adder width in bits (`1..=64`).
    pub nbits: usize,
    /// Speculation window in bits.
    pub window: usize,
    /// Resilience policy for each shard's pipeline.
    pub resilience: ResilienceConfig,
    /// Bounded queue capacity, in requests; pushes beyond it shed.
    pub queue_capacity: usize,
    /// Adaptive batch flush policy.
    pub batch: BatchPolicy,
    /// Modeled device cycle time in nanoseconds; `0` disables pacing
    /// (the worker runs as fast as the host allows).
    pub cycle_ns: u64,
    /// Ops per conformance-monitor window; `None` runs without a
    /// monitor.
    pub monitor_window_ops: Option<u64>,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            nbits: 64,
            window: 24,
            resilience: ResilienceConfig::default(),
            queue_capacity: 64,
            batch: BatchPolicy::default(),
            cycle_ns: 0,
            monitor_window_ops: None,
        }
    }
}

/// The sampling decision attached to a job at submit time.
#[derive(Clone, Copy, Debug)]
pub struct JobTrace {
    /// The request's trace id (client-chosen or server-generated).
    pub trace_id: u64,
    /// Whether to echo a [`ServerTiming`] extension on the `SumBatch`
    /// (true only for client-requested traces — untraced clients never
    /// receive extension bytes).
    pub echo: bool,
    /// Microseconds since the server's trace epoch at submit time; the
    /// recorded span tree's root timestamp.
    pub start_us: u64,
}

/// What a worker sends back per job: the response frame plus — for
/// sampled requests — the trace with every server-side phase filled in
/// except `write_us`, which the connection thread measures around the
/// actual socket write before recording the trace.
#[derive(Debug)]
pub struct Reply {
    /// The response frame to write to the client.
    pub frame: Frame,
    /// The request's trace, when it was sampled.
    pub trace: Option<RequestTrace>,
}

/// A queued unit of work: one client request plus its reply channel.
#[derive(Debug)]
pub struct Job {
    /// The decoded request.
    pub request: AddBatch,
    /// Where the worker sends the response.
    pub reply: Sender<Reply>,
    /// When the request entered the queue (latency measurement base).
    pub enqueued: Instant,
    /// The sampling decision, made at submit time.
    pub trace: Option<JobTrace>,
}

/// Lock-free per-shard counters, shared between the worker and
/// observers (tests, `loadgen`, the bench suite) without requiring
/// telemetry to be enabled.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Requests executed (shed requests are not counted).
    pub requests: AtomicU64,
    /// Ops served.
    pub ops: AtomicU64,
    /// Served ops whose `ER` detector fired.
    pub stalls: AtomicU64,
    /// Served ops delivered by the exact path.
    pub exact_ops: AtomicU64,
    /// Batches flushed.
    pub batches: AtomicU64,
    /// Requests shed with a `Busy` frame.
    pub shed: AtomicU64,
    /// Whether this shard has latched into degraded mode.
    pub degraded: AtomicBool,
}

/// A plain-value copy of [`ShardStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Requests executed.
    pub requests: u64,
    /// Ops served.
    pub ops: u64,
    /// Ops that stalled.
    pub stalls: u64,
    /// Ops served by the exact path.
    pub exact_ops: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Requests shed.
    pub shed: u64,
    /// Degraded-mode latch.
    pub degraded: bool,
}

impl ShardStats {
    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            exact_ops: self.exact_ops.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

struct Shard {
    queue: Arc<Bounded<Job>>,
    stats: Arc<ShardStats>,
    degrade: Arc<AtomicBool>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// Optional observability couplings threaded through the pool: the SLO
/// accountant (fed sheds on the submit path and per-batch evidence by
/// workers) and the canonical wide-event log (one record per flushed
/// batch).
#[derive(Clone, Debug, Default)]
pub struct PoolHooks {
    /// SLO accountant shared with the scrape endpoint.
    pub slo: Option<Arc<ServerSlo>>,
    /// Wide-event log shared with the `/events` endpoint.
    pub events: Option<Arc<EventLog>>,
}

/// The pool of shard workers. Submitting routes by
/// `request_id % shards`; shutdown closes every queue, drains what was
/// already accepted, and joins the workers.
pub struct ShardPool {
    shards: Vec<Shard>,
    degraded_total: Arc<AtomicU64>,
    hooks: PoolHooks,
}

impl ShardPool {
    /// Starts `shards` workers, each with its own pipeline (and
    /// monitor, if configured).
    ///
    /// # Errors
    ///
    /// Returns the adder construction error for an invalid
    /// width/window combination.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn start(config: &ShardConfig, shards: usize) -> Result<ShardPool, SpecError> {
        ShardPool::start_with_hooks(config, shards, PoolHooks::default())
    }

    /// [`ShardPool::start`] with observability hooks: an SLO accountant
    /// and/or a wide-event log shared with the serving layer.
    ///
    /// # Errors
    ///
    /// Returns the adder construction error for an invalid
    /// width/window combination.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn start_with_hooks(
        config: &ShardConfig,
        shards: usize,
        hooks: PoolHooks,
    ) -> Result<ShardPool, SpecError> {
        assert!(shards > 0, "a pool needs at least one shard");
        // Validate once up front so workers can't die on a bad config.
        SpeculativeAdder::new(config.nbits, config.window)?;
        let degraded_total = Arc::new(AtomicU64::new(0));
        let mut built = Vec::with_capacity(shards);
        for shard_id in 0..shards {
            let queue = Arc::new(Bounded::new(config.queue_capacity));
            let stats = Arc::new(ShardStats::default());
            let degrade = Arc::new(AtomicBool::new(false));
            let batcher = Batcher::new(Arc::clone(&queue), config.batch, |job: &Job| {
                job.request.ops.len().max(1)
            });
            let worker = std::thread::Builder::new()
                .name(format!("vlsa-shard-{shard_id}"))
                .spawn({
                    let config = config.clone();
                    let stats = Arc::clone(&stats);
                    let degrade = Arc::clone(&degrade);
                    let degraded_total = Arc::clone(&degraded_total);
                    let hooks = hooks.clone();
                    move || {
                        worker_loop(
                            shard_id as u16,
                            config,
                            batcher,
                            stats,
                            degrade,
                            degraded_total,
                            hooks,
                        )
                    }
                })
                .expect("spawn shard worker");
            built.push(Shard {
                queue,
                stats,
                degrade,
                worker: Mutex::new(Some(worker)),
            });
        }
        Ok(ShardPool {
            shards: built,
            degraded_total,
            hooks,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a request id routes to.
    pub fn route(&self, request_id: u64) -> usize {
        (request_id % self.shards.len() as u64) as usize
    }

    /// Routes and enqueues a request. On backpressure the request is
    /// shed — the error carries the exact frame (`Busy`, or a typed
    /// shutdown `Error`) the connection should send instead; nothing is
    /// silently dropped.
    ///
    /// # Errors
    ///
    /// The response frame to send when the request was not accepted.
    pub fn submit(&self, request: AddBatch, reply: Sender<Reply>) -> Result<(), Box<Frame>> {
        self.submit_traced(request, reply, None)
    }

    /// [`ShardPool::submit`] with an explicit sampling decision; `Some`
    /// makes the worker fill in a [`RequestTrace`] on the reply.
    ///
    /// # Errors
    ///
    /// The response frame to send when the request was not accepted.
    pub fn submit_traced(
        &self,
        request: AddBatch,
        reply: Sender<Reply>,
        trace: Option<JobTrace>,
    ) -> Result<(), Box<Frame>> {
        let shard_id = self.route(request.request_id);
        let shard = &self.shards[shard_id];
        let request_id = request.request_id;
        let job = Job {
            request,
            reply,
            enqueued: Instant::now(),
            trace,
        };
        match shard.queue.try_push(job) {
            Ok(_) => Ok(()),
            Err(PushError::Full(_)) => {
                shard.stats.shed.fetch_add(1, Ordering::Relaxed);
                if vlsa_telemetry::is_enabled() {
                    vlsa_telemetry::recorder().counter(metric::SHED).incr();
                }
                // A shed is a request the service declined to answer:
                // it burns availability budget.
                if let Some(slo) = &self.hooks.slo {
                    slo.record_shed(1);
                }
                Err(Box::new(Frame::Busy(Busy {
                    request_id,
                    shard: shard_id as u16,
                    queue_depth: shard.queue.len() as u32,
                })))
            }
            Err(PushError::Closed(_)) => {
                Err(Box::new(Frame::Error(ProtocolError::Shutdown.to_frame())))
            }
        }
    }

    /// A shard's counters.
    pub fn stats(&self, shard: usize) -> ShardSnapshot {
        self.shards[shard].stats.snapshot()
    }

    /// Counters summed across all shards.
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.shards {
            let s = shard.stats.snapshot();
            total.requests += s.requests;
            total.ops += s.ops;
            total.stalls += s.stalls;
            total.exact_ops += s.exact_ops;
            total.batches += s.batches;
            total.shed += s.shed;
            total.degraded |= s.degraded;
        }
        total
    }

    /// Current depth of a shard's queue.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.shards[shard].queue.len()
    }

    /// A shard's degrade flag — the coupling point for an external
    /// monitor or an operator switch; raising it flips that shard to
    /// the exact path before its next op.
    pub fn degrade_flag(&self, shard: usize) -> Arc<AtomicBool> {
        Arc::clone(&self.shards[shard].degrade)
    }

    /// Shards currently latched into degraded mode.
    pub fn degraded_shards(&self) -> u64 {
        self.degraded_total.load(Ordering::Relaxed)
    }

    /// Closes every queue, lets the workers drain what was accepted,
    /// and joins them. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &self.shards {
            if let Some(handle) = shard.worker.lock().expect("worker lock").take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.shards.len())
            .field("degraded", &self.degraded_shards())
            .finish()
    }
}

/// Telemetry handles a worker resolves once and updates lock-free.
struct ShardMetrics {
    requests: Arc<vlsa_telemetry::Counter>,
    ops: Arc<vlsa_telemetry::Counter>,
    stalls: Arc<vlsa_telemetry::Counter>,
    exact_ops: Arc<vlsa_telemetry::Counter>,
    batches: Arc<vlsa_telemetry::Counter>,
    batch_ops: Arc<vlsa_telemetry::Histogram>,
    latency: Arc<vlsa_telemetry::Histogram>,
    queue_depth: Arc<vlsa_telemetry::Gauge>,
    p50: Arc<vlsa_telemetry::Gauge>,
    p99: Arc<vlsa_telemetry::Gauge>,
    p999: Arc<vlsa_telemetry::Gauge>,
    degraded_shards: Arc<vlsa_telemetry::Gauge>,
}

impl ShardMetrics {
    fn resolve(shard: u16) -> ShardMetrics {
        let rec = vlsa_telemetry::recorder();
        ShardMetrics {
            requests: rec.counter(metric::REQUESTS),
            ops: rec.counter(metric::OPS),
            stalls: rec.counter(metric::STALLS),
            exact_ops: rec.counter(metric::EXACT_OPS),
            batches: rec.counter(metric::BATCHES),
            batch_ops: rec.histogram(metric::BATCH_OPS, DEFAULT_BUCKETS),
            latency: rec.histogram(
                &labeled(metric::REQUEST_LATENCY_US, "shard", shard),
                DEFAULT_BUCKETS,
            ),
            queue_depth: rec.gauge(&labeled(metric::QUEUE_DEPTH, "shard", shard)),
            p50: rec.gauge(&labeled(metric::LATENCY_P50_US, "shard", shard)),
            p99: rec.gauge(&labeled(metric::LATENCY_P99_US, "shard", shard)),
            p999: rec.gauge(&labeled(metric::LATENCY_P999_US, "shard", shard)),
            degraded_shards: rec.gauge(metric::DEGRADED_SHARDS),
        }
    }
}

fn worker_loop(
    shard_id: u16,
    config: ShardConfig,
    batcher: Batcher<Job>,
    stats: Arc<ShardStats>,
    degrade: Arc<AtomicBool>,
    degraded_total: Arc<AtomicU64>,
    hooks: PoolHooks,
) {
    let adder = SpeculativeAdder::new(config.nbits, config.window).expect("validated in start");
    let mut pipeline = ResilientPipeline::new(adder, config.resilience);
    pipeline.set_degrade_signal(Arc::clone(&degrade));
    let mut monitor = config.monitor_window_ops.map(|window_ops| {
        let mc = MonitorConfig::new(config.nbits, config.window).with_window_ops(window_ops);
        let mut m = ConformanceMonitor::new(mc);
        m.set_degrade_signal(Arc::clone(&degrade));
        m
    });
    let metrics = vlsa_telemetry::is_enabled().then(|| ShardMetrics::resolve(shard_id));
    let spans = vlsa_trace::recorder();
    // The worker's marker stack for the on-demand sampling profiler:
    // `/profile` snapshots tell you which phase each shard is in.
    let stack = vlsa_profile::register_thread(&format!("vlsa-shard-{shard_id}"));
    let f_wait = vlsa_profile::frame("batch_wait");
    let f_service = vlsa_profile::frame("pipeline_service");
    let f_monitor = vlsa_profile::frame("conformance_monitor");
    let f_pace = vlsa_profile::frame("device_pace");
    let f_reply = vlsa_profile::frame("reply_dispatch");
    let mask = if config.nbits == 64 {
        u64::MAX
    } else {
        (1u64 << config.nbits) - 1
    };
    // The modeled device clock: the instant the device finished its
    // last batch.
    let mut device_free = Instant::now();
    let mut total_cycles = 0u64;
    let mut was_degraded = false;
    // Conformance alerts are cumulative on the monitor; the SLO
    // correctness feed wants per-batch deltas.
    let mut seen_alerts = 0usize;

    loop {
        let (jobs, formation_start) = {
            let _in_wait = stack.push(f_wait);
            batcher.next_batch_timed()
        };
        if jobs.is_empty() {
            break; // closed and drained
        }
        let batch_ready = Instant::now();
        let batch_start_cycle = total_cycles;
        let batch_requests = jobs.len() as u64;
        let mut batch_cycles = 0u64;
        let mut batch_ops = 0u64;
        let mut batch_stalls = 0u64;
        let mut batch_exact = 0u64;
        let mut batch_residue = 0u64;
        let mut first_trace_id = None;
        let mut last_compute_end = batch_ready;
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            let _in_service = stack.push(f_service);
            // The pool routes every width through the same shard
            // pipeline; requests narrower than the shard adder still
            // add correctly because operands are masked to the
            // *request* width first and sums are masked on the way out.
            let ops: Vec<(u64, u64)> = job
                .request
                .ops
                .iter()
                .map(|&(a, b)| {
                    (
                        a & request_mask(job.request.nbits),
                        b & request_mask(job.request.nbits),
                    )
                })
                .collect();
            let batch = pipeline.run_batch(&ops);
            if let Some(m) = monitor.as_mut() {
                let _in_monitor = stack.push(f_monitor);
                for (&(a, b), outcome) in ops.iter().zip(&batch.outcomes) {
                    m.observe(a & mask, b & mask, outcome.stalled, outcome.cycles);
                }
                if let Some(jt) = &job.trace {
                    // Drift alerts closing over this window cite the
                    // sampled requests that fed it.
                    m.note_exemplar(jt.trace_id);
                }
            }
            let compute_end = Instant::now();
            last_compute_end = compute_end;
            batch_cycles += batch.stats.cycles;
            batch_ops += batch.stats.ops;
            batch_stalls += batch.stats.er_recoveries;
            batch_residue += batch.stats.residue_mismatches;
            if first_trace_id.is_none() {
                first_trace_id = job.trace.as_ref().map(|jt| jt.trace_id);
            }
            stats.requests.fetch_add(1, Ordering::Relaxed);
            stats.ops.fetch_add(batch.stats.ops, Ordering::Relaxed);
            stats
                .stalls
                .fetch_add(batch.stats.er_recoveries, Ordering::Relaxed);
            let exact = batch.outcomes.iter().filter(|o| o.exact_path).count() as u64;
            batch_exact += exact;
            stats.exact_ops.fetch_add(exact, Ordering::Relaxed);
            if let Some(m) = &metrics {
                m.requests.incr();
                m.ops.add(batch.stats.ops);
                m.stalls.add(batch.stats.er_recoveries);
                m.exact_ops.add(exact);
            }
            let results: Vec<OpResult> = batch
                .outcomes
                .iter()
                .map(|o| OpResult {
                    sum: o.sum & request_mask(job.request.nbits),
                    flags: u8::from(o.stalled) * FLAG_STALLED + u8::from(o.exact_path) * FLAG_EXACT,
                })
                .collect();
            // Phase decomposition: queue (enqueue → formation start),
            // linger (formation start → batch dispatch), service (batch
            // dispatch → this job computed — head-of-batch wait counts
            // as service of the batch). Phases are contiguous so they
            // sum to the request's server-side residency.
            let trace = job.trace.map(|jt| {
                let linger_from = formation_start.max(job.enqueued);
                RequestTrace {
                    trace_id: jt.trace_id,
                    request_id: job.request.request_id,
                    shard: shard_id,
                    nbits: job.request.nbits,
                    ops: batch.stats.ops as u32,
                    stalls: batch.stats.er_recoveries as u32,
                    exact_ops: exact as u32,
                    cycles: batch.stats.cycles,
                    start_us: jt.start_us,
                    queue_us: us32(formation_start.saturating_duration_since(job.enqueued)),
                    linger_us: us32(batch_ready.saturating_duration_since(linger_from)),
                    service_us: us32(compute_end.saturating_duration_since(batch_ready)),
                    pace_us: 0,  // filled after the pacing sleep
                    write_us: 0, // filled by the connection thread
                }
            });
            replies.push(PendingReply {
                request_id: job.request.request_id,
                results,
                reply: job.reply,
                enqueued: job.enqueued,
                echo: job.trace.is_some_and(|jt| jt.echo),
                trace,
                compute_end,
            });
        }
        total_cycles += batch_cycles;
        stats.batches.fetch_add(1, Ordering::Relaxed);

        // Pace to the modeled device: this batch completes
        // batch_cycles × cycle_ns after the device last went free (or
        // after compute began, if the device sat idle).
        if config.cycle_ns > 0 {
            let _in_pace = stack.push(f_pace);
            let now = Instant::now();
            if device_free < now {
                device_free = now;
            }
            device_free += Duration::from_nanos(batch_cycles.saturating_mul(config.cycle_ns));
            let now = Instant::now();
            if device_free > now {
                std::thread::sleep(device_free - now);
            }
        }

        // Replies go out only once the modeled device is done, so the
        // measured latency includes the modeled service time.
        let dispatch = Instant::now();
        let _in_reply = stack.push(f_reply);
        let latency_threshold_us = hooks.slo.as_ref().map(|slo| slo.latency_threshold_us());
        let (mut lat_good, mut lat_bad) = (0u64, 0u64);
        for pending in replies {
            let latency_us = pending.enqueued.elapsed().as_micros() as u64;
            if let Some(m) = &metrics {
                m.latency.record(latency_us);
            }
            if let Some(threshold) = latency_threshold_us {
                if latency_us <= threshold {
                    lat_good += 1;
                } else {
                    lat_bad += 1;
                }
            }
            let trace = pending.trace.map(|mut rt| {
                // Device pacing plus any tail of the batch computed
                // after this job — everything between this job's
                // compute end and reply dispatch.
                rt.pace_us = us32(dispatch.saturating_duration_since(pending.compute_end));
                rt
            });
            let timing = trace.filter(|_| pending.echo).map(|rt| ServerTiming {
                trace_id: rt.trace_id,
                queue_us: rt.queue_us,
                linger_us: rt.linger_us,
                service_us: rt.service_us,
                pace_us: rt.pace_us,
            });
            let frame = Frame::SumBatch(SumBatch {
                request_id: pending.request_id,
                shard: shard_id,
                results: pending.results,
                timing,
            });
            // A send error means the client vanished; its result dies
            // with the channel, which is fine — the op was still
            // executed and accounted.
            let _ = pending.reply.send(Reply { frame, trace });
        }

        let degraded_now = degrade.load(Ordering::Relaxed) || pipeline.is_degraded();
        if degraded_now && !was_degraded {
            was_degraded = true;
            stats.degraded.store(true, Ordering::Relaxed);
            degraded_total.fetch_add(1, Ordering::Relaxed);
        }

        // Feed the SLO accountant: availability good = every request
        // answered (sheds arrive via the submit path); latency verdicts
        // from the dispatch loop; correctness bad = residue mismatches
        // plus any conformance alerts this batch closed over.
        let alert_delta = monitor.as_ref().map_or(0, |m| {
            let total = m.alerts().len();
            let delta = total.saturating_sub(seen_alerts);
            seen_alerts = total;
            delta as u64
        });
        // Modeled time on this shard: cycles so far at the configured
        // cycle period (1 ns/cycle when unpaced, keeping the clock
        // monotone and deterministic in tests).
        let now_ns = total_cycles.saturating_mul(config.cycle_ns.max(1));
        let verdict = hooks
            .slo
            .as_ref()
            .map(|slo| {
                let corr_bad = batch_residue + alert_delta;
                let corr_good = batch_ops.saturating_sub(corr_bad);
                slo.observe_batch(
                    now_ns,
                    batch_requests,
                    lat_good,
                    lat_bad,
                    corr_good,
                    corr_bad,
                )
            })
            .unwrap_or_default();
        if let Some(events) = &hooks.events {
            events.emit(&WideEvent {
                shard: shard_id,
                requests: batch_requests.min(u64::from(u32::MAX)) as u32,
                ops: batch_ops,
                cycles: batch_cycles,
                wait_us: us32(batch_ready.saturating_duration_since(formation_start)),
                service_us: us32(last_compute_end.saturating_duration_since(batch_ready)),
                pace_us: us32(dispatch.saturating_duration_since(last_compute_end)),
                adder: if degraded_now { "exact" } else { "speculative" },
                stalls: batch_stalls,
                exact_ops: batch_exact,
                residue_mismatches: batch_residue,
                degraded: degraded_now,
                trace_id: first_trace_id,
                slo_pages_firing: verdict.pages_firing,
                slo_warns_firing: verdict.warns_firing,
            });
        }

        if let Some(m) = &metrics {
            m.batches.incr();
            m.batch_ops.record(batch_ops);
            m.queue_depth.set(batcher.queue().len() as f64);
            for (gauge, q) in [(&m.p50, 0.5), (&m.p99, 0.99), (&m.p999, 0.999)] {
                if let Some(v) = m.latency.quantile(q) {
                    gauge.set(v);
                }
            }
            m.degraded_shards
                .set(degraded_total.load(Ordering::Relaxed) as f64);
        }
        if let Some(rec) = &spans {
            rec.record(
                TraceEvent::complete("batch", "server", batch_start_cycle, batch_cycles.max(1))
                    .on_track(u32::from(shard_id))
                    .arg("shard", u64::from(shard_id))
                    .arg("ops", batch_ops),
            );
        }
    }
    if let Some(m) = monitor.as_mut() {
        m.finish();
    }
}

/// A computed job parked between the compute loop and reply dispatch.
struct PendingReply {
    request_id: u64,
    results: Vec<OpResult>,
    reply: Sender<Reply>,
    enqueued: Instant,
    echo: bool,
    trace: Option<RequestTrace>,
    compute_end: Instant,
}

/// A duration as whole microseconds, saturating at `u32::MAX` (~71
/// minutes — far beyond any real phase).
fn us32(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

fn request_mask(nbits: u8) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn submit_and_wait(pool: &ShardPool, request_id: u64, ops: Vec<(u64, u64)>) -> SumBatch {
        let (tx, rx) = channel();
        pool.submit(
            AddBatch {
                request_id,
                nbits: 32,
                ops,
                trace: None,
            },
            tx,
        )
        .expect("accepted");
        match rx.recv().expect("reply").frame {
            Frame::SumBatch(s) => s,
            other => panic!("expected sums, got {other:?}"),
        }
    }

    #[test]
    fn pool_delivers_correct_sums_with_shard_ids() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            3,
        )
        .expect("valid config");
        for id in 0..6u64 {
            let sums = submit_and_wait(&pool, id, vec![(id, 100), (7, 8)]);
            assert_eq!(sums.request_id, id);
            assert_eq!(sums.shard, (id % 3) as u16);
            assert_eq!(sums.results.len(), 2);
            assert_eq!(sums.results[0].sum, id + 100);
            assert_eq!(sums.results[1].sum, 15);
        }
        let totals = pool.totals();
        assert_eq!(totals.requests, 6);
        assert_eq!(totals.ops, 12);
        assert_eq!(totals.shed, 0);
        pool.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_a_busy_frame() {
        // One shard with a tiny queue and slow modeled pacing: a fat
        // first batch parks the worker in its pacing sleep (max_ops 1
        // keeps the batcher from lingering and draining the queue for
        // us), and the fill loop below then overfills the 2-deep queue
        // while the worker is provably not consuming.
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                queue_capacity: 2,
                cycle_ns: 1_000_000,
                batch: BatchPolicy {
                    max_ops: 1,
                    linger: Duration::ZERO,
                },
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let mut receivers = Vec::new();
        let (tx, rx) = channel();
        pool.submit(
            AddBatch {
                request_id: 0,
                nbits: 32,
                ops: vec![(1, 2); 200], // ≥ 200 modeled ms of pacing
                trace: None,
            },
            tx,
        )
        .expect("empty queue accepts");
        receivers.push(rx);
        std::thread::sleep(Duration::from_millis(50));
        let mut busy = 0;
        for id in 1..=20u64 {
            let (tx, rx) = channel();
            match pool.submit(
                AddBatch {
                    request_id: id,
                    nbits: 32,
                    ops: vec![(1, 2)],
                    trace: None,
                },
                tx,
            ) {
                Ok(()) => receivers.push(rx),
                Err(frame) => match *frame {
                    Frame::Busy(b) => {
                        busy += 1;
                        assert_eq!(b.shard, 0);
                        assert!(b.queue_depth >= 1);
                    }
                    other => panic!("expected busy, got {other:?}"),
                },
            }
        }
        // The queue holds at most 2 of the 20, however the scheduler
        // interleaved the fill with the worker's wake-up.
        assert!(busy >= 18, "overfilled queue must shed, got {busy}");
        assert_eq!(pool.totals().shed, busy);
        // Every accepted request still gets its answer — shed ≠ drop.
        for rx in receivers {
            assert!(matches!(
                rx.recv().expect("reply").frame,
                Frame::SumBatch(_)
            ));
        }
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_shutdown_error() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        pool.shutdown();
        let (tx, _rx) = channel();
        let err = pool
            .submit(
                AddBatch {
                    request_id: 1,
                    nbits: 32,
                    ops: vec![(1, 2)],
                    trace: None,
                },
                tx,
            )
            .expect_err("closed");
        match *err {
            Frame::Error(e) => assert_eq!(e.code, ProtocolError::Shutdown.code()),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    #[test]
    fn degrade_flag_flips_one_shard_to_the_exact_path() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            2,
        )
        .expect("valid config");
        pool.degrade_flag(0).store(true, Ordering::Relaxed);
        // request_id 0 routes to shard 0 (degraded), 1 to shard 1.
        let degraded = submit_and_wait(&pool, 0, vec![(1, 2), (3, 4)]);
        assert!(degraded.results.iter().all(OpResult::exact_path));
        let healthy = submit_and_wait(&pool, 1, vec![(1, 2), (3, 4)]);
        assert!(healthy.results.iter().all(|r| !r.exact_path()));
        assert_eq!(degraded.results[0].sum, 3);
        assert_eq!(healthy.results[1].sum, 7);
        assert_eq!(pool.degraded_shards(), 1);
        assert!(pool.stats(0).degraded);
        assert!(!pool.stats(1).degraded);
        pool.shutdown();
    }

    #[test]
    fn traced_jobs_come_back_with_a_contiguous_phase_decomposition() {
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 32,
                window: 16,
                cycle_ns: 1_000, // make device_pace nonzero and visible
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let (tx, rx) = channel();
        let submitted = Instant::now();
        pool.submit_traced(
            AddBatch {
                request_id: 5,
                nbits: 32,
                ops: vec![(1, 2); 256],
                trace: None,
            },
            tx,
            Some(JobTrace {
                trace_id: 0xFACE,
                echo: true,
                start_us: 12,
            }),
        )
        .expect("accepted");
        let reply = rx.recv().expect("reply");
        let observed_us = submitted.elapsed().as_micros() as u64;
        let rt = reply.trace.expect("sampled job carries a trace");
        assert_eq!(rt.trace_id, 0xFACE);
        assert_eq!(rt.request_id, 5);
        assert_eq!(rt.shard, 0);
        assert_eq!(rt.start_us, 12);
        assert_eq!(rt.ops, 256);
        // Phases sum to the server-side residency, which cannot exceed
        // what the submitter observed (write_us is still 0 here).
        assert_eq!(rt.write_us, 0);
        assert!(rt.total_us() <= observed_us + 1);
        // 256 single-cycle-ish ops at 1 µs/cycle: pacing must show up.
        assert!(rt.pace_us > 0, "{rt:?}");
        // The echoed wire timing mirrors the trace phases exactly.
        let Frame::SumBatch(sums) = reply.frame else {
            panic!("expected sums");
        };
        let timing = sums.timing.expect("echo requested");
        assert_eq!(timing.trace_id, 0xFACE);
        assert_eq!(
            timing.total_us(),
            u64::from(rt.queue_us)
                + u64::from(rt.linger_us)
                + u64::from(rt.service_us)
                + u64::from(rt.pace_us)
        );

        // echo: false keeps the wire clean but still returns the trace.
        let (tx, rx) = channel();
        pool.submit_traced(
            AddBatch {
                request_id: 6,
                nbits: 32,
                ops: vec![(3, 4)],
                trace: None,
            },
            tx,
            Some(JobTrace {
                trace_id: 0xBEEF,
                echo: false,
                start_us: 0,
            }),
        )
        .expect("accepted");
        let reply = rx.recv().expect("reply");
        assert_eq!(reply.trace.expect("traced").trace_id, 0xBEEF);
        let Frame::SumBatch(sums) = reply.frame else {
            panic!("expected sums");
        };
        assert!(sums.timing.is_none(), "server-sampled replies stay bare");
        pool.shutdown();
    }

    #[test]
    fn hooked_pool_emits_wide_events_and_feeds_the_slo_accountant() {
        use crate::events::EventLogConfig;
        use vlsa_telemetry::Json;

        let slo = Arc::new(ServerSlo::new(vlsa_slo::Objectives::demo()));
        let events = Arc::new(EventLog::new(EventLogConfig::default()));
        let pool = ShardPool::start_with_hooks(
            &ShardConfig {
                nbits: 32,
                window: 16,
                ..ShardConfig::default()
            },
            1,
            PoolHooks {
                slo: Some(Arc::clone(&slo)),
                events: Some(Arc::clone(&events)),
            },
        )
        .expect("valid config");
        for id in 0..4u64 {
            let sums = submit_and_wait(&pool, id, vec![(id, 10)]);
            assert_eq!(sums.results[0].sum, id + 10);
        }
        pool.shutdown();

        // One wide event per batch, each a parseable JSON line carrying
        // the canonical fields.
        assert!(events.emitted() >= 1, "batches must emit events");
        let jsonl = events.last_jsonl(16);
        let last = jsonl.lines().last().expect("at least one event");
        let doc = Json::parse(last).expect("valid JSON line");
        assert_eq!(doc.get("shard").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("adder").and_then(Json::as_str), Some("speculative"));
        assert!(doc.get("ops").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert_eq!(doc.get("slo_pages_firing").and_then(Json::as_u64), Some(0));

        // The SLO accountant saw the answered requests: its modeled
        // clock advanced and nothing is burning on a healthy stream.
        let status = slo.status_json();
        assert!(
            status
                .get("modeled_now_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
        assert_eq!(slo.verdict(), crate::slo::SloVerdict::default());
    }

    #[test]
    fn modeled_pacing_slows_the_worker_down() {
        // 1 µs per cycle, ~1000 single-cycle ops → ≥ 1 ms of modeled
        // device time for the whole request.
        let pool = ShardPool::start(
            &ShardConfig {
                nbits: 64,
                window: 32,
                cycle_ns: 1_000,
                ..ShardConfig::default()
            },
            1,
        )
        .expect("valid config");
        let ops: Vec<(u64, u64)> = (0..1000).map(|i| (i, i + 1)).collect();
        let start = Instant::now();
        let sums = submit_and_wait(&pool, 0, ops);
        let elapsed = start.elapsed();
        assert_eq!(sums.results.len(), 1000);
        assert!(
            elapsed >= Duration::from_millis(1),
            "pacing should cost ≥ 1ms, took {elapsed:?}"
        );
        pool.shutdown();
    }
}
