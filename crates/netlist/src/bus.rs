//! Multi-bit signal bundles.

use crate::NetId;
use std::ops::Index;

/// An ordered bundle of nets representing a multi-bit word,
/// least-significant bit first.
///
/// # Examples
///
/// ```
/// use vlsa_netlist::{Bus, Netlist};
///
/// let mut nl = Netlist::new("t");
/// let a: Bus = nl.input_bus("a", 8);
/// assert_eq!(a.width(), 8);
/// let low_nibble = a.slice(0, 4);
/// assert_eq!(low_nibble.width(), 4);
/// assert_eq!(low_nibble[0], a[0]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bus {
    nets: Vec<NetId>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Wraps an explicit list of nets (LSB first).
    pub fn from_nets(nets: Vec<NetId>) -> Self {
        Bus { nets }
    }

    /// Number of bits.
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// Whether the bus has no bits.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// The nets, LSB first.
    pub fn as_slice(&self) -> &[NetId] {
        &self.nets
    }

    /// Iterates the nets, LSB first.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = NetId> + '_ {
        self.nets.iter().copied()
    }

    /// Appends a net as the new most-significant bit.
    pub fn push(&mut self, net: NetId) {
        self.nets.push(net);
    }

    /// A sub-bus of `len` bits starting at bit `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds the width.
    pub fn slice(&self, start: usize, len: usize) -> Bus {
        Bus {
            nets: self.nets[start..start + len].to_vec(),
        }
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if the bus is empty.
    pub fn msb(&self) -> NetId {
        *self.nets.last().expect("empty bus has no msb")
    }
}

impl Index<usize> for Bus {
    type Output = NetId;
    fn index(&self, i: usize) -> &NetId {
        &self.nets[i]
    }
}

impl FromIterator<NetId> for Bus {
    fn from_iter<T: IntoIterator<Item = NetId>>(iter: T) -> Self {
        Bus {
            nets: iter.into_iter().collect(),
        }
    }
}

impl Extend<NetId> for Bus {
    fn extend<T: IntoIterator<Item = NetId>>(&mut self, iter: T) {
        self.nets.extend(iter);
    }
}

impl IntoIterator for Bus {
    type Item = NetId;
    type IntoIter = std::vec::IntoIter<NetId>;
    fn into_iter(self) -> Self::IntoIter {
        self.nets.into_iter()
    }
}

impl<'a> IntoIterator for &'a Bus {
    type Item = &'a NetId;
    type IntoIter = std::slice::Iter<'a, NetId>;
    fn into_iter(self) -> Self::IntoIter {
        self.nets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    #[test]
    fn construction_and_access() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let mut bus = Bus::new();
        assert!(bus.is_empty());
        bus.push(a);
        bus.push(b);
        assert_eq!(bus.width(), 2);
        assert_eq!(bus[0], a);
        assert_eq!(bus.msb(), b);
        assert_eq!(bus.as_slice(), &[a, b]);
    }

    #[test]
    fn slicing() {
        let mut nl = Netlist::new("t");
        let bus = nl.input_bus("a", 8);
        let mid = bus.slice(2, 4);
        assert_eq!(mid.width(), 4);
        assert_eq!(mid[0], bus[2]);
        assert_eq!(mid[3], bus[5]);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        let mut nl = Netlist::new("t");
        let bus = nl.input_bus("a", 4);
        bus.slice(2, 4);
    }

    #[test]
    fn collect_and_iterate() {
        let mut nl = Netlist::new("t");
        let bus: Bus = (0..5).map(|i| nl.input(format!("i{i}"))).collect();
        assert_eq!(bus.width(), 5);
        let round: Vec<_> = bus.iter().collect();
        assert_eq!(round.len(), 5);
        let mut extended = bus.clone();
        extended.extend(bus.clone());
        assert_eq!(extended.width(), 10);
        let consumed: Vec<_> = bus.into_iter().collect();
        assert_eq!(consumed.len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty bus")]
    fn msb_of_empty_panics() {
        Bus::new().msb();
    }
}
