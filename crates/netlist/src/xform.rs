//! Netlist transformations: fanout buffering.
//!
//! A synthesis flow never leaves a net driving hundreds of pins; it
//! inserts a buffer tree. Since our timing model charges the full pin
//! load to the driver, circuits with structurally high fanout (Sklansky
//! prefix nodes, primary inputs of wide adders) must be buffered before
//! timing to be compared fairly — exactly what
//! [`Netlist::with_fanout_limit`] does.

use crate::{CellKind, NetId, Netlist};

/// Builds `count` load taps for `src`, inserting a balanced buffer tree
/// so no net (including `src` itself and intermediate buffers) drives
/// more than `max_fanout` pins.
fn taps_for(nl: &mut Netlist, src: NetId, count: usize, max_fanout: usize) -> Vec<NetId> {
    if count <= max_fanout {
        return vec![src; count];
    }
    // One leaf buffer per max_fanout consumers; the leaves' own inputs
    // are taps of a recursively buffered `src`.
    let leaves = count.div_ceil(max_fanout);
    let parents = taps_for(nl, src, leaves, max_fanout);
    let mut out = Vec::with_capacity(count);
    let mut remaining = count;
    for parent in parents {
        let leaf = nl.buf(parent);
        let serve = remaining.min(max_fanout);
        out.extend(std::iter::repeat_n(leaf, serve));
        remaining -= serve;
    }
    out
}

impl Netlist {
    /// Returns a functionally identical netlist in which no net drives
    /// more than `max_fanout` pins, inserting balanced buffer trees
    /// where needed.
    ///
    /// # Panics
    ///
    /// Panics if `max_fanout < 2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_netlist::Netlist;
    ///
    /// let mut nl = Netlist::new("fan");
    /// let a = nl.input("a");
    /// for i in 0..100 {
    ///     let y = nl.not(a);
    ///     nl.output(format!("y[{i}]"), y);
    /// }
    /// let buffered = nl.with_fanout_limit(8);
    /// assert!(buffered.max_fanout() <= 8);
    /// assert!(buffered.gate_count() > nl.gate_count()); // buffers added
    /// ```
    pub fn with_fanout_limit(&self, max_fanout: usize) -> Netlist {
        assert!(max_fanout >= 2, "max_fanout must be at least 2");
        let fanout = self.fanout_counts();
        let mut out = Netlist::new(self.name());
        // taps[old net] = remaining buffered copies for its consumers,
        // handed out in construction order.
        let mut taps: Vec<Vec<NetId>> = Vec::with_capacity(self.len());
        for (id, node) in self.nodes() {
            let new_id = match node.kind() {
                CellKind::Input => {
                    let name = self
                        .primary_inputs()
                        .iter()
                        .find(|(_, n)| *n == id)
                        .map(|(name, _)| name.clone())
                        .unwrap_or_else(|| format!("in{}", id.index()));
                    out.input(name)
                }
                CellKind::Const0 => out.constant(false),
                CellKind::Const1 => out.constant(true),
                kind => {
                    let inputs: Vec<NetId> = node
                        .inputs()
                        .iter()
                        .map(|i| taps[i.index()].pop().expect("fanout accounting is exact"))
                        .collect();
                    out.cell(kind, &inputs)
                }
            };
            let mut t = taps_for(&mut out, new_id, fanout[id.index()], max_fanout);
            t.reverse(); // pop() hands taps out in forward order
            taps.push(t);
        }
        for (name, net) in self.primary_outputs() {
            let tap = taps[net.index()].pop().expect("output tap reserved");
            out.output(name.clone(), tap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_fan(n: usize) -> Netlist {
        let mut nl = Netlist::new("fan");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor2(a, b);
        for i in 0..n {
            let y = nl.not(x);
            nl.output(format!("y[{i}]"), y);
        }
        nl
    }

    #[test]
    fn caps_fanout() {
        for max in [2usize, 4, 8] {
            let buffered = wide_fan(100).with_fanout_limit(max);
            assert!(
                buffered.max_fanout() <= max,
                "max={max}: got {}",
                buffered.max_fanout()
            );
            assert!(buffered.validate(false).is_ok());
        }
    }

    #[test]
    fn low_fanout_netlist_unchanged_in_size() {
        let mut nl = Netlist::new("small");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.and2(a, b);
        nl.output("y", y);
        let buffered = nl.with_fanout_limit(4);
        assert_eq!(buffered.gate_count(), nl.gate_count());
        assert_eq!(buffered.depth(), nl.depth());
    }

    #[test]
    fn buffer_tree_depth_is_logarithmic() {
        let buffered = wide_fan(1000).with_fanout_limit(4);
        // Tree over 1000 loads with branching 4: about 5 buffer levels.
        assert!(buffered.depth() <= wide_fan(1000).depth() + 6);
        assert!(buffered.max_fanout() <= 4);
    }

    #[test]
    fn inputs_with_high_fanout_are_buffered() {
        let mut nl = Netlist::new("infan");
        let a = nl.input("a");
        for i in 0..50 {
            let y = nl.buf(a);
            nl.output(format!("y[{i}]"), y);
        }
        let buffered = nl.with_fanout_limit(6);
        assert!(buffered.max_fanout() <= 6);
    }

    #[test]
    #[should_panic(expected = "max_fanout")]
    fn rejects_tiny_limit() {
        wide_fan(4).with_fanout_limit(1);
    }
}
