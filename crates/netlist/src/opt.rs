//! Logic optimization passes: constant folding, buffer elision,
//! structural deduplication (common-subexpression elimination), and
//! dead-logic sweeping.
//!
//! Generators in this workspace favour clarity over minimality — the
//! ACA's clamped strip duplicates low-position spans, block recovery
//! re-derives prefixes, constants pad partial blocks. A synthesis tool
//! would clean all of that up before timing; [`Netlist::simplified`] is
//! that cleanup.

use crate::{CellKind, NetId, Netlist};
use std::collections::HashMap;

/// A partially-known signal during folding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Value {
    Known(bool),
    Net(NetId),
}

/// Rewrites one gate given (possibly known) inputs, emitting into `nl`.
/// Returns the folded value. Native complex kinds are preserved unless a
/// constant or duplicate input genuinely simplifies them, so the pass
/// never increases gate count.
fn fold_gate(nl: &mut Netlist, memo: &mut Memo, kind: CellKind, ins: &[Value]) -> Value {
    use CellKind::*;
    // Fully-known gates evaluate outright.
    if ins.iter().all(|v| matches!(v, Value::Known(_))) {
        let bits: Vec<bool> = ins
            .iter()
            .map(|v| match v {
                Value::Known(b) => *b,
                Value::Net(_) => unreachable!(),
            })
            .collect();
        return Value::Known(kind.eval(&bits));
    }
    match kind {
        Buf => ins[0],
        Not => match ins[0] {
            Value::Known(b) => Value::Known(!b),
            Value::Net(n) => memo.emit(nl, Not, &[n]),
        },
        And2 | And3 | And4 => fold_and_or(nl, memo, ins, true),
        Or2 | Or3 | Or4 => fold_and_or(nl, memo, ins, false),
        Nand2 | Nand3 | Nor2 | Nor3 => {
            // Fold the inner AND/OR; if it survives at full arity, emit
            // the native inverting gate instead of AND+NOT.
            let is_and = matches!(kind, Nand2 | Nand3);
            let nets = surviving_nets(ins, is_and);
            match nets {
                None => Value::Known(!is_and ^ true), // dominant const: NAND->1, NOR->... see below
                Some(nets) => match nets.len() {
                    0 => Value::Known(!is_and), // all neutral: AND of {} = 1 -> NAND = 0
                    1 => memo.emit(nl, Not, &[nets[0]]),
                    2 => memo.emit(nl, if is_and { Nand2 } else { Nor2 }, &nets),
                    3 => memo.emit(nl, if is_and { Nand3 } else { Nor3 }, &nets),
                    _ => unreachable!("arity at most 3"),
                },
            }
        }
        Xor2 => match (ins[0], ins[1]) {
            (Value::Known(false), v) | (v, Value::Known(false)) => v,
            (Value::Known(true), v) | (v, Value::Known(true)) => fold_gate(nl, memo, Not, &[v]),
            (Value::Net(a), Value::Net(b)) if a == b => Value::Known(false),
            (Value::Net(a), Value::Net(b)) => memo.emit(nl, Xor2, &[a, b]),
        },
        Xnor2 => match (ins[0], ins[1]) {
            (Value::Known(true), v) | (v, Value::Known(true)) => v,
            (Value::Known(false), v) | (v, Value::Known(false)) => fold_gate(nl, memo, Not, &[v]),
            (Value::Net(a), Value::Net(b)) if a == b => Value::Known(true),
            (Value::Net(a), Value::Net(b)) => memo.emit(nl, Xnor2, &[a, b]),
        },
        Mux2 => match ins[2] {
            // y = s ? b : a, inputs [a, b, s]
            Value::Known(false) => ins[0],
            Value::Known(true) => ins[1],
            Value::Net(_) if ins[0] == ins[1] => ins[0],
            Value::Net(s) => match (ins[0], ins[1]) {
                // One-gate reductions.
                (Value::Known(false), v) => fold_gate(nl, memo, And2, &[Value::Net(s), v]),
                (v, Value::Known(true)) => fold_gate(nl, memo, Or2, &[Value::Net(s), v]),
                // The remaining const cases would need NOT+gate; keep the
                // native mux with a materialized constant instead.
                (a, b) => {
                    let an = memo.materialize(nl, a);
                    let bn = memo.materialize(nl, b);
                    memo.emit(nl, Mux2, &[an, bn, s])
                }
            },
        },
        Maj3 => {
            let known_true = ins.iter().filter(|v| **v == Value::Known(true)).count();
            let known_false = ins.iter().filter(|v| **v == Value::Known(false)).count();
            let nets: Vec<Value> = ins
                .iter()
                .copied()
                .filter(|v| matches!(v, Value::Net(_)))
                .collect();
            match (known_true, known_false) {
                (0, 0) => {
                    let (a, b, c) = (net(ins[0]), net(ins[1]), net(ins[2]));
                    // Majority with a repeated input is that input.
                    if a == b || a == c {
                        Value::Net(a)
                    } else if b == c {
                        Value::Net(b)
                    } else {
                        memo.emit(nl, Maj3, &[a, b, c])
                    }
                }
                (1, 0) => fold_gate(nl, memo, Or2, &nets),
                (0, 1) => fold_gate(nl, memo, And2, &nets),
                (2, _) => Value::Known(true),
                (_, 2) => Value::Known(false),
                _ => unreachable!("covered by fully-known fast path"),
            }
        }
        Ao21 | Oa21 | Aoi21 | Oai21 => {
            let inner_and = matches!(kind, Ao21 | Aoi21);
            let inverted = matches!(kind, Aoi21 | Oai21);
            // All-net, non-degenerate compounds stay native.
            if let (Value::Net(a), Value::Net(b), Value::Net(c)) = (ins[0], ins[1], ins[2]) {
                if a != b {
                    return memo.emit(nl, kind, &[a, b, c]);
                }
            }
            // Known c collapses the compound to (a possibly inverted)
            // two-input gate on (a, b).
            if let Value::Known(c) = ins[2] {
                // outer op is OR when the inner is AND, and vice versa.
                let outer_is_or = inner_and;
                if c == outer_is_or {
                    // Dominant: outer = c. Result = c (^ inversion).
                    return Value::Known(c ^ inverted);
                }
                // Neutral c: result = f(inner(a, b)).
                let reduced = match (inner_and, inverted) {
                    (true, false) => And2,
                    (false, false) => Or2,
                    (true, true) => Nand2,
                    (false, true) => Nor2,
                };
                return fold_gate(nl, memo, reduced, &ins[..2]);
            }
            // Here c is a net and the inner pair is degenerate (a == b,
            // or one of them known), so folding it emits no gate.
            let inner = fold_and_or(nl, memo, &ins[..2], inner_and);
            let outer_is_or = inner_and;
            match surviving_nets(&[inner, ins[2]], !inner_and) {
                None => Value::Known(outer_is_or ^ inverted),
                Some(nets) => match nets.len() {
                    0 => Value::Known(!outer_is_or ^ inverted),
                    1 => {
                        if inverted {
                            memo.emit(nl, Not, &[nets[0]])
                        } else {
                            Value::Net(nets[0])
                        }
                    }
                    2 => {
                        let g = match (outer_is_or, inverted) {
                            (true, false) => Or2,
                            (false, false) => And2,
                            (true, true) => Nor2,
                            (false, true) => Nand2,
                        };
                        memo.emit(nl, g, &nets)
                    }
                    _ => unreachable!("two values at most"),
                },
            }
        }
        Input | Const0 | Const1 => unreachable!("handled by caller"),
    }
}

fn net(v: Value) -> NetId {
    match v {
        Value::Net(n) => n,
        Value::Known(_) => unreachable!("caller checked"),
    }
}

/// Surviving net inputs of an AND/OR after constant elimination:
/// `None` when a dominant constant fixes the result.
fn surviving_nets(ins: &[Value], is_and: bool) -> Option<Vec<NetId>> {
    let mut nets = Vec::with_capacity(ins.len());
    for v in ins {
        match v {
            Value::Known(b) if *b != is_and => return None,
            Value::Known(_) => {}
            Value::Net(n) => {
                if !nets.contains(n) {
                    nets.push(*n);
                }
            }
        }
    }
    Some(nets)
}

/// Folds an N-ary AND (or OR when `is_and` is false) with identities:
/// dominant constants, neutral constants, duplicate inputs.
fn fold_and_or(nl: &mut Netlist, memo: &mut Memo, ins: &[Value], is_and: bool) -> Value {
    let Some(nets) = surviving_nets(ins, is_and) else {
        return Value::Known(!is_and);
    };
    match nets.len() {
        0 => Value::Known(is_and),
        1 => Value::Net(nets[0]),
        2 => memo.emit(
            nl,
            if is_and {
                CellKind::And2
            } else {
                CellKind::Or2
            },
            &nets,
        ),
        3 => memo.emit(
            nl,
            if is_and {
                CellKind::And3
            } else {
                CellKind::Or3
            },
            &nets,
        ),
        4 => memo.emit(
            nl,
            if is_and {
                CellKind::And4
            } else {
                CellKind::Or4
            },
            &nets,
        ),
        _ => unreachable!("arity is at most 4"),
    }
}

/// Structural-hashing memo: `(kind, normalized inputs)` → existing net,
/// plus memoized constant nets.
#[derive(Default)]
struct Memo {
    table: HashMap<(CellKind, Vec<NetId>), NetId>,
    consts: [Option<NetId>; 2],
}

impl Memo {
    fn emit(&mut self, nl: &mut Netlist, kind: CellKind, inputs: &[NetId]) -> Value {
        let mut key_inputs = inputs.to_vec();
        if is_commutative(kind) {
            key_inputs.sort_unstable();
        }
        let key = (kind, key_inputs);
        if let Some(&net) = self.table.get(&key) {
            return Value::Net(net);
        }
        let net = nl.cell(kind, inputs);
        self.table.insert(key, net);
        Value::Net(net)
    }

    fn materialize(&mut self, nl: &mut Netlist, v: Value) -> NetId {
        match v {
            Value::Net(n) => n,
            Value::Known(b) => *self.consts[b as usize].get_or_insert_with(|| nl.constant(b)),
        }
    }
}

fn is_commutative(kind: CellKind) -> bool {
    use CellKind::*;
    matches!(
        kind,
        And2 | And3 | And4 | Or2 | Or3 | Or4 | Nand2 | Nand3 | Nor2 | Nor3 | Xor2 | Xnor2 | Maj3
    )
}

impl Netlist {
    /// Returns a functionally identical netlist after constant folding,
    /// buffer elision, structural deduplication, and a dead-logic
    /// sweep. Primary input and output names are preserved.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_netlist::Netlist;
    ///
    /// let mut nl = Netlist::new("redundant");
    /// let a = nl.input("a");
    /// let b = nl.input("b");
    /// let zero = nl.constant(false);
    /// let x = nl.or2(a, zero);      // = a
    /// let y1 = nl.and2(x, b);
    /// let y2 = nl.and2(b, a);       // duplicate of y1 (commutative)
    /// let out = nl.xor2(y1, y2);    // = 0
    /// nl.output("y", out);
    /// let opt = nl.simplified();
    /// assert_eq!(opt.gate_count(), 0); // folded to a constant
    /// ```
    pub fn simplified(&self) -> Netlist {
        let mut out = Netlist::new(self.name());
        let mut memo = Memo::default();
        let mut map: Vec<Value> = Vec::with_capacity(self.len());
        for (id, node) in self.nodes() {
            let value = match node.kind() {
                CellKind::Input => {
                    let name = self
                        .primary_inputs()
                        .iter()
                        .find(|(_, n)| *n == id)
                        .map(|(name, _)| name.clone())
                        .unwrap_or_else(|| format!("in{}", id.index()));
                    Value::Net(out.input(name))
                }
                CellKind::Const0 => Value::Known(false),
                CellKind::Const1 => Value::Known(true),
                kind => {
                    let ins: Vec<Value> = node.inputs().iter().map(|i| map[i.index()]).collect();
                    fold_gate(&mut out, &mut memo, kind, &ins)
                }
            };
            map.push(value);
        }
        for (name, net) in self.primary_outputs() {
            let target = memo.materialize(&mut out, map[net.index()]);
            out.output(name.clone(), target);
        }
        out.swept()
    }

    /// Returns a copy containing only logic reachable from the primary
    /// outputs (dead-logic elimination). Unused primary inputs are
    /// kept so the interface is stable.
    pub fn swept(&self) -> Netlist {
        let mut live = vec![false; self.len()];
        let mut stack: Vec<NetId> = self.primary_outputs().iter().map(|(_, n)| *n).collect();
        for &net in &stack {
            live[net.index()] = true;
        }
        while let Some(net) = stack.pop() {
            for &input in self.node(net).inputs() {
                if !live[input.index()] {
                    live[input.index()] = true;
                    stack.push(input);
                }
            }
        }
        let mut out = Netlist::new(self.name());
        let mut map: Vec<Option<NetId>> = vec![None; self.len()];
        for (id, node) in self.nodes() {
            if node.kind() == CellKind::Input {
                // Keep the interface intact even if unused.
                let name = self
                    .primary_inputs()
                    .iter()
                    .find(|(_, n)| *n == id)
                    .map(|(name, _)| name.clone())
                    .unwrap_or_else(|| format!("in{}", id.index()));
                map[id.index()] = Some(out.input(name));
                continue;
            }
            if !live[id.index()] {
                continue;
            }
            let inputs: Vec<NetId> = node
                .inputs()
                .iter()
                .map(|i| map[i.index()].expect("inputs precede consumers"))
                .collect();
            map[id.index()] = Some(match node.kind() {
                CellKind::Const0 => out.constant(false),
                CellKind::Const1 => out.constant(true),
                kind => out.cell(kind, &inputs),
            });
        }
        for (name, net) in self.primary_outputs() {
            out.output(name.clone(), map[net.index()].expect("outputs are live"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_constants_through_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let one = nl.constant(true);
        let zero = nl.constant(false);
        let x = nl.and2(a, one); // = a
        let y = nl.or2(x, zero); // = a
        let z = nl.xor2(y, zero); // = a
        nl.output("y", z);
        let opt = nl.simplified();
        assert_eq!(opt.gate_count(), 0);
        assert_eq!(opt.primary_outputs()[0].1, opt.primary_inputs()[0].1);
    }

    #[test]
    fn dominant_constants_kill_cones() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let zero = nl.constant(false);
        let x = nl.xor2(a, b);
        let y = nl.and3(x, a, zero); // = 0 regardless of the cone
        nl.output("y", y);
        let opt = nl.simplified();
        assert_eq!(opt.gate_count(), 0);
        assert_eq!(
            opt.node(opt.primary_outputs()[0].1).kind(),
            CellKind::Const0
        );
    }

    #[test]
    fn cse_merges_commutative_duplicates() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and2(a, b);
        let y = nl.and2(b, a);
        let z = nl.or2(x, y); // = x
        nl.output("z", z);
        let opt = nl.simplified();
        // Single AND remains; the OR of identical nets folds away.
        assert_eq!(opt.gate_count(), 1);
    }

    #[test]
    fn mux_with_known_select_folds() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let one = nl.constant(true);
        let y = nl.mux2(a, b, one); // = b
        nl.output("y", y);
        let opt = nl.simplified();
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn maj_with_known_input_reduces() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let one = nl.constant(true);
        let zero = nl.constant(false);
        let or_form = nl.maj3(a, b, one); // = a | b
        let and_form = nl.maj3(a, zero, b); // = a & b
        nl.output("o", or_form);
        nl.output("a", and_form);
        let opt = nl.simplified();
        let kinds: Vec<CellKind> = opt
            .primary_outputs()
            .iter()
            .map(|(_, n)| opt.node(*n).kind())
            .collect();
        assert_eq!(kinds, vec![CellKind::Or2, CellKind::And2]);
    }

    #[test]
    fn xor_of_identical_nets_is_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and2(a, b);
        let y = nl.and2(a, b);
        let z = nl.xor2(x, y);
        nl.output("z", z);
        let opt = nl.simplified();
        assert_eq!(opt.gate_count(), 0);
        assert_eq!(
            opt.node(opt.primary_outputs()[0].1).kind(),
            CellKind::Const0
        );
    }

    #[test]
    fn buffers_are_elided() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b1 = nl.buf(a);
        let b2 = nl.buf(b1);
        let y = nl.not(b2);
        nl.output("y", y);
        let opt = nl.simplified();
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(opt.node(opt.primary_outputs()[0].1).kind(), CellKind::Not);
    }

    #[test]
    fn sweep_drops_dead_logic_keeps_interface() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let _dead = nl.xor2(a, b);
        let live = nl.and2(a, b);
        nl.output("y", live);
        let swept = nl.swept();
        assert_eq!(swept.gate_count(), 1);
        assert_eq!(swept.primary_inputs().len(), 2);
        assert!(swept.validate(true).is_ok());
    }

    #[test]
    fn simplified_is_idempotent() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let x = nl.maj3(a, b, c);
        let y = nl.ao21(a, b, x);
        let z = nl.xnor2(y, c);
        nl.output("z", z);
        let once = nl.simplified();
        let twice = once.simplified();
        assert_eq!(once.gate_count(), twice.gate_count());
        assert_eq!(once.depth(), twice.depth());
    }

    #[test]
    fn preserves_output_names_and_order() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let zero = nl.constant(false);
        nl.output("first", a);
        nl.output("second", zero);
        let opt = nl.simplified();
        let names: Vec<&str> = opt
            .primary_outputs()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
