//! The netlist graph and its builder API.
//!
//! A [`Netlist`] is a DAG of single-output cells. Construction order is
//! topological by design: a gate can only reference nets that already
//! exist, so node index order is always a valid evaluation order and no
//! combinational loops can be expressed.

use crate::{Bus, CellKind};
use std::fmt;

/// Handle to a net — the single output of one cell in a [`Netlist`].
///
/// Net indices are dense and identical to node indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The dense index of this net within its netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One cell instance: a kind plus its input nets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    kind: CellKind,
    inputs: Vec<NetId>,
}

impl Node {
    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }
}

/// A combinational gate-level netlist.
///
/// # Examples
///
/// Build a full adder and inspect it:
///
/// ```
/// use vlsa_netlist::Netlist;
///
/// let mut nl = Netlist::new("full_adder");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let cin = nl.input("cin");
/// let sum = {
///     let axb = nl.xor2(a, b);
///     nl.xor2(axb, cin)
/// };
/// let cout = nl.maj3(a, b, cin);
/// nl.output("sum", sum);
/// nl.output("cout", cout);
/// assert_eq!(nl.gate_count(), 3);
/// assert_eq!(nl.primary_inputs().len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    input_names: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + constants + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of logic gates (excludes inputs and constants).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// The node driving `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn node(&self, net: NetId) -> &Node {
        &self.nodes[net.index()]
    }

    /// All nodes in topological (construction) order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NetId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Primary inputs in declaration order, with their names.
    pub fn primary_inputs(&self) -> &[(String, NetId)] {
        &self.input_names
    }

    /// Primary outputs in declaration order, with their names.
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    fn push(&mut self, kind: CellKind, inputs: Vec<NetId>) -> NetId {
        debug_assert_eq!(inputs.len(), kind.arity());
        for &i in &inputs {
            assert!(
                i.index() < self.nodes.len(),
                "input net {i} does not exist in netlist `{}`",
                self.name
            );
        }
        let id = NetId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.nodes.push(Node { kind, inputs });
        id
    }

    /// Declares a named primary input and returns its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(CellKind::Input, Vec::new());
        self.input_names.push((name.into(), id));
        id
    }

    /// Declares a `width`-bit input bus named `name[0..width]`,
    /// least-significant bit first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Bus {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// A constant net (0 or 1).
    pub fn constant(&mut self, value: bool) -> NetId {
        let kind = if value {
            CellKind::Const1
        } else {
            CellKind::Const0
        };
        self.push(kind, Vec::new())
    }

    /// Marks `net` as a primary output named `name`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        assert!(
            net.index() < self.nodes.len(),
            "output net {net} does not exist"
        );
        self.outputs.push((name.into(), net));
    }

    /// Marks every bit of `bus` as an output `name[i]`.
    pub fn output_bus(&mut self, name: &str, bus: &Bus) {
        for (i, net) in bus.iter().enumerate() {
            self.output(format!("{name}[{i}]"), net);
        }
    }

    /// Instantiates an arbitrary cell.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell's arity, or
    /// if any input net is out of range.
    pub fn cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "cell {kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        assert!(kind.is_gate(), "use input()/constant() for {kind}");
        self.push(kind, inputs.to_vec())
    }

    /// Buffer: `y = a`.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(CellKind::Buf, vec![a])
    }

    /// Inverter: `y = !a`.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(CellKind::Not, vec![a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::And2, vec![a, b])
    }

    /// 3-input AND.
    pub fn and3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::And3, vec![a, b, c])
    }

    /// 4-input AND.
    pub fn and4(&mut self, a: NetId, b: NetId, c: NetId, d: NetId) -> NetId {
        self.push(CellKind::And4, vec![a, b, c, d])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Or2, vec![a, b])
    }

    /// 3-input OR.
    pub fn or3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Or3, vec![a, b, c])
    }

    /// 4-input OR.
    pub fn or4(&mut self, a: NetId, b: NetId, c: NetId, d: NetId) -> NetId {
        self.push(CellKind::Or4, vec![a, b, c, d])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Nand2, vec![a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Nor2, vec![a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Xor2, vec![a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Xnor2, vec![a, b])
    }

    /// 2:1 mux: `y = s ? b : a`.
    pub fn mux2(&mut self, a: NetId, b: NetId, s: NetId) -> NetId {
        self.push(CellKind::Mux2, vec![a, b, s])
    }

    /// 3-input majority: `y = ab + bc + ca`.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Maj3, vec![a, b, c])
    }

    /// AND-OR: `y = a·b + c` (the lookahead carry operator `g + p·c`).
    pub fn ao21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Ao21, vec![a, b, c])
    }

    /// OR-AND: `y = (a + b)·c`.
    pub fn oa21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Oa21, vec![a, b, c])
    }

    /// AND-OR-INVERT: `y = !(a·b + c)`.
    pub fn aoi21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Aoi21, vec![a, b, c])
    }

    /// OR-AND-INVERT: `y = !((a + b)·c)`.
    pub fn oai21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(CellKind::Oai21, vec![a, b, c])
    }

    /// Balanced AND tree over any number of nets, using 4/3/2-input ANDs.
    ///
    /// Returns constant 1 for an empty slice (the identity of AND).
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, true)
    }

    /// Balanced OR tree over any number of nets, using 4/3/2-input ORs.
    ///
    /// Returns constant 0 for an empty slice (the identity of OR).
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, false)
    }

    fn reduce_tree(&mut self, nets: &[NetId], is_and: bool) -> NetId {
        match nets.len() {
            0 => self.constant(is_and),
            1 => nets[0],
            _ => {
                let mut level: Vec<NetId> = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(4));
                    let mut chunks = level.chunks(4);
                    for chunk in &mut chunks {
                        let id = match (chunk, is_and) {
                            ([a, b, c, d], true) => self.and4(*a, *b, *c, *d),
                            ([a, b, c], true) => self.and3(*a, *b, *c),
                            ([a, b], true) => self.and2(*a, *b),
                            ([a], _) => *a,
                            ([a, b, c, d], false) => self.or4(*a, *b, *c, *d),
                            ([a, b, c], false) => self.or3(*a, *b, *c),
                            ([a, b], false) => self.or2(*a, *b),
                            _ => unreachable!("chunks(4) yields 1..=4 items"),
                        };
                        next.push(id);
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Balanced XOR tree (parity) over any number of nets.
    ///
    /// Returns constant 0 for an empty slice.
    pub fn xor_tree(&mut self, nets: &[NetId]) -> NetId {
        match nets.len() {
            0 => self.constant(false),
            1 => nets[0],
            _ => {
                let mut level: Vec<NetId> = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    let mut iter = level.chunks(2);
                    for chunk in &mut iter {
                        next.push(match chunk {
                            [a, b] => self.xor2(*a, *b),
                            [a] => *a,
                            _ => unreachable!(),
                        });
                    }
                    level = next;
                }
                level[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.and2(a, b);
        nl.output("y", y);
        assert_eq!(nl.len(), 3);
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.name(), "t");
        assert_eq!(nl.node(y).kind(), CellKind::And2);
        assert_eq!(nl.node(y).inputs(), &[a, b]);
        assert_eq!(nl.primary_outputs(), &[("y".to_string(), y)]);
        assert!(!nl.is_empty());
    }

    #[test]
    fn input_bus_names_lsb_first() {
        let mut nl = Netlist::new("t");
        let bus = nl.input_bus("a", 3);
        assert_eq!(bus.width(), 3);
        assert_eq!(nl.primary_inputs()[0].0, "a[0]");
        assert_eq!(nl.primary_inputs()[2].0, "a[2]");
    }

    #[test]
    fn output_bus_registers_all_bits() {
        let mut nl = Netlist::new("t");
        let bus = nl.input_bus("a", 2);
        nl.output_bus("y", &bus);
        assert_eq!(nl.primary_outputs().len(), 2);
        assert_eq!(nl.primary_outputs()[1].0, "y[1]");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn foreign_net_rejected() {
        let mut other = Netlist::new("other");
        let foreign = other.input("x");
        let _ = other.input("pad"); // make `other` longer than `nl`
        let mut nl = Netlist::new("t");
        // `foreign` has index 0, which exists in nl only after an input.
        // Use an index beyond nl's length to trigger the check.
        let deep = other.and2(foreign, foreign);
        nl.buf(deep);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn generic_cell_checks_arity() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        nl.cell(CellKind::And2, &[a]);
    }

    #[test]
    #[should_panic(expected = "use input()")]
    fn generic_cell_rejects_pseudo_cells() {
        let mut nl = Netlist::new("t");
        nl.cell(CellKind::Input, &[]);
    }

    #[test]
    fn and_tree_shapes() {
        let mut nl = Netlist::new("t");
        let nets: Vec<NetId> = (0..13).map(|i| nl.input(format!("i{i}"))).collect();
        let before = nl.len();
        let _y = nl.and_tree(&nets);
        // 13 -> 4 (4,4,4,1) -> 1: 3 AND4 + 1 AND4 = 4 gates.
        assert_eq!(nl.len() - before, 4);
    }

    #[test]
    fn trees_handle_degenerate_sizes() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        assert_eq!(nl.and_tree(&[a]), a);
        assert_eq!(nl.or_tree(&[a]), a);
        assert_eq!(nl.xor_tree(&[a]), a);
        let c1 = nl.and_tree(&[]);
        assert_eq!(nl.node(c1).kind(), CellKind::Const1);
        let c0 = nl.or_tree(&[]);
        assert_eq!(nl.node(c0).kind(), CellKind::Const0);
    }

    #[test]
    fn xor_tree_depth_is_logarithmic() {
        let mut nl = Netlist::new("t");
        let nets: Vec<NetId> = (0..16).map(|i| nl.input(format!("i{i}"))).collect();
        let before = nl.len();
        nl.xor_tree(&nets);
        assert_eq!(nl.len() - before, 15); // n-1 XOR2 gates
    }

    #[test]
    fn display_of_net_id() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        assert_eq!(a.to_string(), "n0");
        assert_eq!(a.index(), 0);
    }
}
