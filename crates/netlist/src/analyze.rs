//! Structural analysis: levelization, fanout, logic cones, statistics,
//! and validation.

use crate::{CellKind, NetId, Netlist};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A structural defect found by [`Netlist::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateNetlistError {
    /// A node references a net at or after its own position (would imply
    /// a cycle; unreachable through the builder, but checked for
    /// netlists deserialized or constructed by hand).
    ForwardReference {
        /// The offending node.
        node: NetId,
        /// The referenced (not yet defined) input.
        input: NetId,
    },
    /// A node's input count disagrees with its cell arity.
    ArityMismatch {
        /// The offending node.
        node: NetId,
        /// The node's cell kind.
        kind: CellKind,
        /// The number of inputs actually present.
        found: usize,
    },
    /// A primary output references a net that does not exist.
    DanglingOutput {
        /// The output port name.
        name: String,
    },
    /// A gate's output drives nothing and is not a primary output.
    DeadGate {
        /// The unused node.
        node: NetId,
    },
}

impl fmt::Display for ValidateNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateNetlistError::ForwardReference { node, input } => {
                write!(f, "node {node} references later net {input}")
            }
            ValidateNetlistError::ArityMismatch { node, kind, found } => write!(
                f,
                "node {node} of kind {kind} has {found} inputs, expected {}",
                kind.arity()
            ),
            ValidateNetlistError::DanglingOutput { name } => {
                write!(f, "output `{name}` references a missing net")
            }
            ValidateNetlistError::DeadGate { node } => {
                write!(f, "gate {node} drives no load and no output")
            }
        }
    }
}

impl Error for ValidateNetlistError {}

/// Summary statistics for a netlist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Gate count per cell kind (inputs/constants included).
    pub cells: BTreeMap<CellKind, usize>,
    /// Unit-delay depth (number of gate levels on the longest path).
    pub depth: usize,
    /// Largest fanout of any net (including primary inputs).
    pub max_fanout: usize,
    /// Total logic gates (excludes inputs and constants).
    pub gates: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gates: {}, depth: {}, max fanout: {}",
            self.gates, self.depth, self.max_fanout
        )?;
        for (kind, count) in &self.cells {
            if kind.is_gate() {
                writeln!(f, "  {kind:>6}: {count}")?;
            }
        }
        Ok(())
    }
}

impl Netlist {
    /// Unit-delay logic level of every net: inputs and constants are
    /// level 0; a gate is one more than its deepest input.
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.len()];
        for (id, node) in self.nodes() {
            if node.kind().is_gate() {
                let deepest = node
                    .inputs()
                    .iter()
                    .map(|i| levels[i.index()])
                    .max()
                    .unwrap_or(0);
                levels[id.index()] = deepest + 1;
            }
        }
        levels
    }

    /// Unit-delay depth of the whole netlist (maximum over output cones).
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.primary_outputs()
            .iter()
            .map(|(_, net)| levels[net.index()])
            .max()
            .unwrap_or(0)
    }

    /// Number of loads on each net (gate inputs plus primary outputs).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.len()];
        for (_, node) in self.nodes() {
            for input in node.inputs() {
                counts[input.index()] += 1;
            }
        }
        for (_, net) in self.primary_outputs() {
            counts[net.index()] += 1;
        }
        counts
    }

    /// Largest fanout of any net.
    pub fn max_fanout(&self) -> usize {
        self.fanout_counts().into_iter().max().unwrap_or(0)
    }

    /// The transitive fan-in cone of `net`, as a sorted list of nets
    /// (including `net` itself).
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn cone(&self, net: NetId) -> Vec<NetId> {
        assert!(net.index() < self.len(), "net {net} out of range");
        let mut in_cone = vec![false; self.len()];
        let mut stack = vec![net];
        in_cone[net.index()] = true;
        while let Some(n) = stack.pop() {
            for &input in self.node(n).inputs() {
                if !in_cone[input.index()] {
                    in_cone[input.index()] = true;
                    stack.push(input);
                }
            }
        }
        (0..self.len())
            .filter(|&i| in_cone[i])
            .map(|i| NetId(i as u32))
            .collect()
    }

    /// Collects summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut cells = BTreeMap::new();
        for (_, node) in self.nodes() {
            *cells.entry(node.kind()).or_insert(0) += 1;
        }
        NetlistStats {
            gates: self.gate_count(),
            depth: self.depth(),
            max_fanout: self.max_fanout(),
            cells,
        }
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first defect found: forward references, arity
    /// mismatches, dangling outputs, or (when `check_dead` is set) gates
    /// whose output is unused.
    pub fn validate(&self, check_dead: bool) -> Result<(), ValidateNetlistError> {
        for (id, node) in self.nodes() {
            if node.inputs().len() != node.kind().arity() {
                return Err(ValidateNetlistError::ArityMismatch {
                    node: id,
                    kind: node.kind(),
                    found: node.inputs().len(),
                });
            }
            for &input in node.inputs() {
                if input.index() >= id.index() {
                    return Err(ValidateNetlistError::ForwardReference { node: id, input });
                }
            }
        }
        for (name, net) in self.primary_outputs() {
            if net.index() >= self.len() {
                return Err(ValidateNetlistError::DanglingOutput { name: name.clone() });
            }
        }
        if check_dead {
            let fanout = self.fanout_counts();
            for (id, node) in self.nodes() {
                if node.kind().is_gate() && fanout[id.index()] == 0 {
                    return Err(ValidateNetlistError::DeadGate { node: id });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn adder_ish() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let x = nl.xor2(a, b);
        let s = nl.xor2(x, c);
        let m = nl.maj3(a, b, c);
        nl.output("s", s);
        nl.output("co", m);
        (nl, s, m)
    }

    #[test]
    fn levels_and_depth() {
        let (nl, s, m) = adder_ish();
        let levels = nl.levels();
        assert_eq!(levels[s.index()], 2);
        assert_eq!(levels[m.index()], 1);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn depth_of_empty_is_zero() {
        let nl = Netlist::new("e");
        assert_eq!(nl.depth(), 0);
        assert_eq!(nl.max_fanout(), 0);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let (nl, s, _) = adder_ish();
        let fo = nl.fanout_counts();
        // a feeds xor2 and maj3.
        assert_eq!(fo[0], 2);
        // s is only a primary output.
        assert_eq!(fo[s.index()], 1);
        assert_eq!(nl.max_fanout(), 2);
    }

    #[test]
    fn cone_collects_transitive_fanin() {
        let (nl, s, m) = adder_ish();
        let cone = nl.cone(s);
        // s's cone: a, b, c, x, s — not maj3.
        assert_eq!(cone.len(), 5);
        assert!(!cone.contains(&m));
        let cone_m = nl.cone(m);
        assert_eq!(cone_m.len(), 4);
    }

    #[test]
    fn stats_counts_kinds() {
        let (nl, _, _) = adder_ish();
        let stats = nl.stats();
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.cells[&CellKind::Xor2], 2);
        assert_eq!(stats.cells[&CellKind::Maj3], 1);
        assert_eq!(stats.cells[&CellKind::Input], 3);
        assert_eq!(stats.depth, 2);
        let display = stats.to_string();
        assert!(display.contains("gates: 3"));
        assert!(display.contains("xor2"));
    }

    #[test]
    fn validate_accepts_builder_output() {
        let (nl, _, _) = adder_ish();
        assert_eq!(nl.validate(true), Ok(()));
    }

    #[test]
    fn validate_flags_dead_gate() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let _dead = nl.and2(a, b);
        let live = nl.or2(a, b);
        nl.output("y", live);
        assert!(matches!(
            nl.validate(true),
            Err(ValidateNetlistError::DeadGate { .. })
        ));
        // Without dead checking it passes.
        assert_eq!(nl.validate(false), Ok(()));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = ValidateNetlistError::DeadGate { node: NetId(7) };
        assert!(err.to_string().contains("n7"));
        let err = ValidateNetlistError::ArityMismatch {
            node: NetId(3),
            kind: CellKind::And2,
            found: 1,
        };
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cone_rejects_foreign_net() {
        let (nl, _, _) = adder_ish();
        nl.cone(NetId(1000));
    }
}
