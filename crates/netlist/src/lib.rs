//! Gate-level netlist intermediate representation for the VLSA project.
//!
//! All circuits in this workspace — the baseline adders of
//! `vlsa-adders`, the Almost Correct Adder and its error
//! detection/recovery networks in `vlsa-core` — are built as [`Netlist`]
//! DAGs of single-output [`CellKind`] gates. Downstream crates simulate
//! them (`vlsa-sim`), time them (`vlsa-timing`), and emit them as HDL
//! (`vlsa-hdl`).
//!
//! The representation is deliberately simple:
//!
//! - every node drives exactly one net, so [`NetId`] doubles as a node
//!   handle;
//! - nodes are created in topological order (a gate can only reference
//!   existing nets), so index order is always a valid evaluation order
//!   and cycles are unrepresentable;
//! - multi-bit values are [`Bus`]es of nets, LSB first.
//!
//! # Examples
//!
//! ```
//! use vlsa_netlist::Netlist;
//!
//! // y = a & b | c, with structural stats.
//! let mut nl = Netlist::new("ao");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let c = nl.input("c");
//! let y = nl.ao21(a, b, c);
//! nl.output("y", y);
//! assert_eq!(nl.depth(), 1);
//! assert_eq!(nl.validate(true), Ok(()));
//! ```

mod analyze;
mod bus;
mod cell;
mod dot;
mod graph;
mod opt;
mod textfmt;
mod xform;

pub use analyze::{NetlistStats, ValidateNetlistError};
pub use bus::Bus;
pub use cell::CellKind;
pub use graph::{NetId, Netlist, Node};
pub use textfmt::ParseNetlistError;
