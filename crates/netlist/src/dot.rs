//! Graphviz DOT export for visual inspection of generated circuits.

use crate::{CellKind, Netlist};
use std::fmt::Write as _;

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph`.
    ///
    /// Inputs are drawn as boxes, constants as diamonds, gates as
    /// ellipses labelled with their cell kind, and primary outputs as
    /// double octagons.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_netlist::Netlist;
    ///
    /// let mut nl = Netlist::new("tiny");
    /// let a = nl.input("a");
    /// let y = nl.not(a);
    /// nl.output("y", y);
    /// let dot = nl.to_dot();
    /// assert!(dot.starts_with("digraph tiny {"));
    /// assert!(dot.contains("inv"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", sanitize(self.name()));
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, node) in self.nodes() {
            let (shape, label) = match node.kind() {
                CellKind::Input => {
                    let name = self
                        .primary_inputs()
                        .iter()
                        .find(|(_, n)| *n == id)
                        .map(|(name, _)| name.as_str())
                        .unwrap_or("?");
                    ("box", name.to_string())
                }
                CellKind::Const0 => ("diamond", "0".to_string()),
                CellKind::Const1 => ("diamond", "1".to_string()),
                kind => ("ellipse", kind.name().to_string()),
            };
            let _ = writeln!(out, "  {id} [shape={shape} label=\"{label}\"];");
            for input in node.inputs() {
                let _ = writeln!(out, "  {input} -> {id};");
            }
        }
        for (name, net) in self.primary_outputs() {
            let port = format!("out_{}", sanitize(name));
            let _ = writeln!(out, "  {port} [shape=doubleoctagon label=\"{name}\"];");
            let _ = writeln!(out, "  {net} -> {port};");
        }
        out.push_str("}\n");
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let mut nl = Netlist::new("fa");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor2(a, b);
        nl.output("y", y);
        let dot = nl.to_dot();
        assert!(dot.contains("n0 [shape=box label=\"a\"]"));
        assert!(dot.contains("n1 [shape=box label=\"b\"]"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_sanitizes_names() {
        let mut nl = Netlist::new("my adder[8]");
        let a = nl.input("a[0]");
        nl.output("s[0]", a);
        let dot = nl.to_dot();
        assert!(dot.starts_with("digraph my_adder_8_ {"));
        assert!(dot.contains("out_s_0_"));
    }

    #[test]
    fn dot_renders_constants() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(true);
        nl.output("y", one);
        assert!(nl.to_dot().contains("diamond"));
    }
}
