//! The cell library: every combinational gate kind a netlist may contain.
//!
//! The set mirrors a typical standard-cell library's combinational slice:
//! inverters/buffers, 2-4 input simple gates, XORs, a 2:1 mux, a majority
//! gate (full-adder carry), and the complex AND-OR gates used for the
//! carry operator `g + p·c` of lookahead adders.

use std::fmt;

/// A combinational cell kind. Every cell drives exactly one output net.
///
/// `Input` and `Const*` are pseudo-cells with no logic inputs; `Output`
/// markers do not exist — primary outputs are recorded separately on the
/// netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Primary input (no fan-in).
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: `y = s ? b : a`, inputs ordered `[a, b, s]`.
    Mux2,
    /// 3-input majority (full-adder carry): `y = ab + bc + ca`.
    Maj3,
    /// AND-OR: `y = a·b + c` — the carry operator `g_out = g + p·c`.
    Ao21,
    /// OR-AND: `y = (a + b)·c`.
    Oa21,
    /// AND-OR-INVERT: `y = !(a·b + c)`.
    Aoi21,
    /// OR-AND-INVERT: `y = !((a + b)·c)`.
    Oai21,
}

impl CellKind {
    /// All kinds, in a stable order (useful for iterating a library).
    pub const ALL: [CellKind; 23] = [
        CellKind::Input,
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::Not,
        CellKind::And2,
        CellKind::And3,
        CellKind::And4,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Or4,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Maj3,
        CellKind::Ao21,
        CellKind::Oa21,
        CellKind::Aoi21,
        CellKind::Oai21,
    ];

    /// Number of logic inputs the cell consumes.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_netlist::CellKind;
    /// assert_eq!(CellKind::Maj3.arity(), 3);
    /// assert_eq!(CellKind::Input.arity(), 0);
    /// ```
    pub fn arity(self) -> usize {
        use CellKind::*;
        match self {
            Input | Const0 | Const1 => 0,
            Buf | Not => 1,
            And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 => 2,
            And3 | Or3 | Nand3 | Nor3 | Maj3 | Mux2 | Ao21 | Oa21 | Aoi21 | Oai21 => 3,
            And4 | Or4 => 4,
        }
    }

    /// Whether the cell is a logic gate (as opposed to an input or
    /// constant pseudo-cell).
    pub fn is_gate(self) -> bool {
        !matches!(self, CellKind::Input | CellKind::Const0 | CellKind::Const1)
    }

    /// Evaluates the cell on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_words(&words) & 1 == 1
    }

    /// Evaluates the cell on 64 input vectors at once (bit-parallel).
    ///
    /// Bit `i` of the result is the output for the assignment formed by
    /// bit `i` of each input word.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_netlist::CellKind;
    /// // XOR of two vectors, 64 evaluations in one call.
    /// let y = CellKind::Xor2.eval_words(&[0b1100, 0b1010]);
    /// assert_eq!(y & 0b1111, 0b0110);
    /// ```
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        use CellKind::*;
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            Input => panic!("primary inputs have no evaluation"),
            Const0 => 0,
            Const1 => u64::MAX,
            Buf => inputs[0],
            Not => !inputs[0],
            And2 => inputs[0] & inputs[1],
            And3 => inputs[0] & inputs[1] & inputs[2],
            And4 => inputs[0] & inputs[1] & inputs[2] & inputs[3],
            Or2 => inputs[0] | inputs[1],
            Or3 => inputs[0] | inputs[1] | inputs[2],
            Or4 => inputs[0] | inputs[1] | inputs[2] | inputs[3],
            Nand2 => !(inputs[0] & inputs[1]),
            Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            Nor2 => !(inputs[0] | inputs[1]),
            Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            Xor2 => inputs[0] ^ inputs[1],
            Xnor2 => !(inputs[0] ^ inputs[1]),
            Mux2 => (inputs[0] & !inputs[2]) | (inputs[1] & inputs[2]),
            Maj3 => (inputs[0] & inputs[1]) | (inputs[1] & inputs[2]) | (inputs[0] & inputs[2]),
            Ao21 => (inputs[0] & inputs[1]) | inputs[2],
            Oa21 => (inputs[0] | inputs[1]) & inputs[2],
            Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
        }
    }

    /// Canonical library cell name (lowercase), as used by the HDL
    /// emitters and the technology library.
    pub fn name(self) -> &'static str {
        use CellKind::*;
        match self {
            Input => "input",
            Const0 => "const0",
            Const1 => "const1",
            Buf => "buf",
            Not => "inv",
            And2 => "and2",
            And3 => "and3",
            And4 => "and4",
            Or2 => "or2",
            Or3 => "or3",
            Or4 => "or4",
            Nand2 => "nand2",
            Nand3 => "nand3",
            Nor2 => "nor2",
            Nor3 => "nor3",
            Xor2 => "xor2",
            Xnor2 => "xnor2",
            Mux2 => "mux2",
            Maj3 => "maj3",
            Ao21 => "ao21",
            Oa21 => "oa21",
            Aoi21 => "aoi21",
            Oai21 => "oai21",
        }
    }

    /// Looks a cell kind up by its canonical [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<CellKind> {
        CellKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_consistent_with_eval() {
        for kind in CellKind::ALL {
            if kind == CellKind::Input {
                continue;
            }
            let inputs = vec![0u64; kind.arity()];
            let _ = kind.eval_words(&inputs); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn eval_rejects_wrong_arity() {
        CellKind::And2.eval_words(&[0]);
    }

    #[test]
    #[should_panic(expected = "no evaluation")]
    fn eval_rejects_input_cell() {
        CellKind::Input.eval_words(&[]);
    }

    #[test]
    fn truth_tables_two_input() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(CellKind::And2.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(CellKind::Or2.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(CellKind::Nand2.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(CellKind::Nor2.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(CellKind::Xor2.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(CellKind::Xnor2.eval_words(&[a, b]) & 0xF, 0b1001);
    }

    #[test]
    fn truth_tables_three_input() {
        // Enumerate all 8 assignments via the low bits of three words.
        let a = 0b1111_0000u64;
        let b = 0b1100_1100u64;
        let c = 0b1010_1010u64;
        assert_eq!(CellKind::Maj3.eval_words(&[a, b, c]) & 0xFF, 0b1110_1000);
        assert_eq!(CellKind::Mux2.eval_words(&[a, b, c]) & 0xFF, 0b1101_1000);
        assert_eq!(CellKind::Ao21.eval_words(&[a, b, c]) & 0xFF, 0b1110_1010);
        assert_eq!(CellKind::Oa21.eval_words(&[a, b, c]) & 0xFF, 0b1010_1000);
        assert_eq!(
            CellKind::Aoi21.eval_words(&[a, b, c]) & 0xFF,
            !0b1110_1010u64 & 0xFF
        );
        assert_eq!(
            CellKind::Oai21.eval_words(&[a, b, c]) & 0xFF,
            !0b1010_1000u64 & 0xFF
        );
    }

    #[test]
    fn bool_eval_matches_word_eval() {
        for kind in CellKind::ALL {
            if kind == CellKind::Input {
                continue;
            }
            let n = kind.arity();
            for assignment in 0..(1u32 << n) {
                let bools: Vec<bool> = (0..n).map(|i| (assignment >> i) & 1 == 1).collect();
                let words: Vec<u64> = bools
                    .iter()
                    .map(|&b| if b { u64::MAX } else { 0 })
                    .collect();
                assert_eq!(
                    kind.eval(&bools),
                    kind.eval_words(&words) & 1 == 1,
                    "{kind} {assignment:b}"
                );
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_name(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(CellKind::from_name("bogus"), None);
    }

    #[test]
    fn constants_saturate_words() {
        assert_eq!(CellKind::Const0.eval_words(&[]), 0);
        assert_eq!(CellKind::Const1.eval_words(&[]), u64::MAX);
    }
}
