//! A plain-text netlist interchange format (`.vnet`).
//!
//! One declaration per line, in topological order — the role BLIF/EDIF
//! play in larger flows, sized to this workspace:
//!
//! ```text
//! netlist aca8w3
//! input n0 a[0]
//! const n2 0
//! gate n5 and2 n0 n1
//! output s[0] n5
//! ```
//!
//! Net names are the canonical `n<index>` handles, so a round-trip
//! reproduces the exact graph (asserted by tests and usable as a golden
//! file format).

use crate::{CellKind, NetId, Netlist};
use std::error::Error;
use std::fmt;

/// Failure to parse a `.vnet` netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A line did not match any declaration form.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A referenced net was not (yet) declared.
    UnknownNet {
        /// 1-based line number.
        line: usize,
        /// The unknown handle.
        name: String,
    },
    /// The gate kind is not in the cell library.
    UnknownCell {
        /// 1-based line number.
        line: usize,
        /// The unknown kind name.
        kind: String,
    },
    /// A net handle was declared twice or out of order.
    BadHandle {
        /// 1-based line number.
        line: usize,
        /// The offending handle.
        name: String,
    },
    /// The `netlist <name>` header is missing.
    MissingHeader,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::BadLine { line, text } => {
                write!(f, "line {line}: unrecognized declaration `{text}`")
            }
            ParseNetlistError::UnknownNet { line, name } => {
                write!(f, "line {line}: unknown net `{name}`")
            }
            ParseNetlistError::UnknownCell { line, kind } => {
                write!(f, "line {line}: unknown cell `{kind}`")
            }
            ParseNetlistError::BadHandle { line, name } => {
                write!(f, "line {line}: handle `{name}` out of sequence")
            }
            ParseNetlistError::MissingHeader => write!(f, "missing `netlist <name>` header"),
        }
    }
}

impl Error for ParseNetlistError {}

impl Netlist {
    /// Serializes the netlist in the `.vnet` text format.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlsa_netlist::Netlist;
    ///
    /// let mut nl = Netlist::new("t");
    /// let a = nl.input("a");
    /// let y = nl.not(a);
    /// nl.output("y", y);
    /// let text = nl.to_vnet();
    /// let back = Netlist::from_vnet(&text)?;
    /// assert_eq!(back, nl);
    /// # Ok::<(), vlsa_netlist::ParseNetlistError>(())
    /// ```
    pub fn to_vnet(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "netlist {}", self.name());
        for (id, node) in self.nodes() {
            match node.kind() {
                CellKind::Input => {
                    let name = self
                        .primary_inputs()
                        .iter()
                        .find(|(_, n)| *n == id)
                        .map(|(name, _)| name.as_str())
                        .unwrap_or("?");
                    let _ = writeln!(out, "input {id} {name}");
                }
                CellKind::Const0 => {
                    let _ = writeln!(out, "const {id} 0");
                }
                CellKind::Const1 => {
                    let _ = writeln!(out, "const {id} 1");
                }
                kind => {
                    let ins: Vec<String> = node.inputs().iter().map(|n| n.to_string()).collect();
                    let _ = writeln!(out, "gate {id} {} {}", kind.name(), ins.join(" "));
                }
            }
        }
        for (name, net) in self.primary_outputs() {
            let _ = writeln!(out, "output {name} {net}");
        }
        out
    }

    /// Parses a `.vnet` netlist.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetlistError`] describing the first malformed
    /// line.
    pub fn from_vnet(text: &str) -> Result<Netlist, ParseNetlistError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or(ParseNetlistError::MissingHeader)?;
        let name = header
            .trim()
            .strip_prefix("netlist ")
            .ok_or(ParseNetlistError::MissingHeader)?;
        let mut nl = Netlist::new(name.trim());

        let parse_net =
            |tok: &str, nl: &Netlist, line: usize| -> Result<NetId, ParseNetlistError> {
                let idx: usize = tok
                    .strip_prefix('n')
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| ParseNetlistError::UnknownNet {
                        line,
                        name: tok.to_string(),
                    })?;
                if idx >= nl.len() {
                    return Err(ParseNetlistError::UnknownNet {
                        line,
                        name: tok.to_string(),
                    });
                }
                Ok(NetId(idx as u32))
            };

        let expect_handle =
            |tok: &str, nl: &Netlist, line: usize| -> Result<(), ParseNetlistError> {
                let expected = format!("n{}", nl.len());
                if tok == expected {
                    Ok(())
                } else {
                    Err(ParseNetlistError::BadHandle {
                        line,
                        name: tok.to_string(),
                    })
                }
            };

        for (i, raw) in lines {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("nonempty line");
            match head {
                "input" => {
                    let handle = parts.next().ok_or_else(|| bad(line_no, line))?;
                    expect_handle(handle, &nl, line_no)?;
                    let name = parts.next().ok_or_else(|| bad(line_no, line))?;
                    nl.input(name);
                }
                "const" => {
                    let handle = parts.next().ok_or_else(|| bad(line_no, line))?;
                    expect_handle(handle, &nl, line_no)?;
                    match parts.next() {
                        Some("0") => nl.constant(false),
                        Some("1") => nl.constant(true),
                        _ => return Err(bad(line_no, line)),
                    };
                }
                "gate" => {
                    let handle = parts.next().ok_or_else(|| bad(line_no, line))?;
                    expect_handle(handle, &nl, line_no)?;
                    let kind_name = parts.next().ok_or_else(|| bad(line_no, line))?;
                    let kind = CellKind::from_name(kind_name).ok_or_else(|| {
                        ParseNetlistError::UnknownCell {
                            line: line_no,
                            kind: kind_name.to_string(),
                        }
                    })?;
                    let inputs: Vec<NetId> = parts
                        .map(|tok| parse_net(tok, &nl, line_no))
                        .collect::<Result<_, _>>()?;
                    if inputs.len() != kind.arity() || !kind.is_gate() {
                        return Err(bad(line_no, line));
                    }
                    nl.cell(kind, &inputs);
                }
                "output" => {
                    let name = parts.next().ok_or_else(|| bad(line_no, line))?;
                    let net = parts.next().ok_or_else(|| bad(line_no, line))?;
                    let net = parse_net(net, &nl, line_no)?;
                    nl.output(name, net);
                }
                _ => return Err(bad(line_no, line)),
            }
        }
        Ok(nl)
    }
}

fn bad(line: usize, text: &str) -> ParseNetlistError {
    ParseNetlistError::BadLine {
        line,
        text: text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.input("a[0]");
        let b = nl.input("b");
        let one = nl.constant(true);
        let x = nl.xor2(a, b);
        let y = nl.maj3(a, b, one);
        nl.output("s", x);
        nl.output("co", y);
        nl
    }

    #[test]
    fn round_trip_is_identity() {
        let nl = sample();
        let text = nl.to_vnet();
        let back = Netlist::from_vnet(&text).expect("parse");
        assert_eq!(back, nl);
        // And a second round trip is byte-identical.
        assert_eq!(back.to_vnet(), text);
    }

    #[test]
    fn format_shape() {
        let text = sample().to_vnet();
        assert!(text.starts_with("netlist fa\n"));
        assert!(text.contains("input n0 a[0]"));
        assert!(text.contains("const n2 1"));
        assert!(text.contains("gate n3 xor2 n0 n1"));
        assert!(text.contains("output co n4"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "netlist t\n\n# a comment\ninput n0 a\noutput y n0\n";
        let nl = Netlist::from_vnet(text).expect("parse");
        assert_eq!(nl.len(), 1);
        assert_eq!(nl.primary_outputs()[0].0, "y");
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(
            Netlist::from_vnet("input n0 a\n"),
            Err(ParseNetlistError::MissingHeader)
        );
        assert_eq!(
            Netlist::from_vnet(""),
            Err(ParseNetlistError::MissingHeader)
        );
    }

    #[test]
    fn rejects_forward_references() {
        let text = "netlist t\ninput n0 a\ngate n1 and2 n0 n5\noutput y n1\n";
        assert!(matches!(
            Netlist::from_vnet(text),
            Err(ParseNetlistError::UnknownNet { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_unknown_cells_and_bad_arity() {
        let text = "netlist t\ninput n0 a\ngate n1 frobnicate n0\n";
        assert!(matches!(
            Netlist::from_vnet(text),
            Err(ParseNetlistError::UnknownCell { .. })
        ));
        let text = "netlist t\ninput n0 a\ngate n1 and2 n0\n";
        assert!(matches!(
            Netlist::from_vnet(text),
            Err(ParseNetlistError::BadLine { .. })
        ));
    }

    #[test]
    fn rejects_out_of_sequence_handles() {
        let text = "netlist t\ninput n7 a\n";
        assert!(matches!(
            Netlist::from_vnet(text),
            Err(ParseNetlistError::BadHandle { .. })
        ));
    }

    #[test]
    fn big_circuit_round_trips() {
        // A realistic netlist exercises every cell kind path.
        let mut nl = Netlist::new("big");
        let ins: Vec<_> = (0..8).map(|i| nl.input(format!("i[{i}]"))).collect();
        let mut acc = ins[0];
        for kind in CellKind::ALL {
            if !kind.is_gate() {
                continue;
            }
            let mut args = vec![acc];
            for k in 0..kind.arity().saturating_sub(1) {
                args.push(ins[k % ins.len()]);
            }
            acc = nl.cell(kind, &args[..kind.arity()]);
        }
        nl.output("out", acc);
        let back = Netlist::from_vnet(&nl.to_vnet()).expect("parse");
        assert_eq!(back, nl);
    }

    #[test]
    fn error_messages_carry_context() {
        let e = ParseNetlistError::UnknownCell {
            line: 9,
            kind: "zap".into(),
        };
        assert!(e.to_string().contains("line 9"));
        assert!(e.to_string().contains("zap"));
    }
}
