//! Deterministic burn-rate correctness: the acceptance tests for the
//! SLO engine.
//!
//! Everything runs in modeled time against the *standard* (production)
//! windows, so these tests pin down the real alerting behaviour —
//! detection latency to the ring bucket, zero false positives on clean
//! and sub-budget streams, clear-after-recovery — without a wall clock
//! anywhere.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use vlsa_slo::{AlertState, Objectives, Severity, SloAlert, SloEngine, SloTracker};

const SECOND_NS: u64 = 1_000_000_000;

/// Serializes tests that install the global telemetry recorder.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The standard availability tracker (99.9% target: fast page ×14.4
/// over 1h/5m, slow warn ×6 over 6h/30m).
fn availability_tracker() -> SloTracker {
    SloTracker::new(Objectives::standard().specs().remove(0))
}

/// Drives `tracker` with `rate` events/s at `bad_fraction` for
/// `seconds`, ticking every `tick_s`, starting at `start_s`. Returns
/// every alert transition with the tick (in seconds) it fired at.
fn drive(
    tracker: &mut SloTracker,
    start_s: u64,
    seconds: u64,
    tick_s: u64,
    rate: u64,
    bad_per_tick: u64,
) -> Vec<(u64, SloAlert)> {
    let mut out = Vec::new();
    let mut t = start_s;
    while t < start_s + seconds {
        let now_ns = t * SECOND_NS;
        let total = rate * tick_s;
        let bad = bad_per_tick.min(total);
        tracker.record(now_ns, total - bad, bad);
        for alert in tracker.evaluate(now_ns) {
            out.push((t, alert));
        }
        t += tick_s;
    }
    out
}

#[test]
fn null_stream_produces_zero_alerts_across_a_hundred_windows() {
    // 100 fast-rule long windows (100 h) of clean traffic at 100 ops/s,
    // evaluated every 10 s: not a single transition may fire.
    let mut tracker = availability_tracker();
    let alerts = drive(&mut tracker, 0, 100 * 3600, 10, 100, 0);
    assert!(alerts.is_empty(), "false positives: {alerts:?}");
    assert!(!tracker.firing(Severity::Page));
    assert!(!tracker.firing(Severity::Warn));
    assert_eq!(tracker.budget_consumed(), 0.0);
}

#[test]
fn sub_budget_error_rate_stays_silent() {
    // Bad fraction at half the budget (0.05% against a 0.1% budget):
    // burn rate 0.5, far under both factors, for 24 modeled hours.
    let mut tracker = availability_tracker();
    let alerts = drive(&mut tracker, 0, 24 * 3600, 10, 200, 1);
    assert!(alerts.is_empty(), "false positives: {alerts:?}");
    let burn = tracker.burn_rate(24 * 3600 * SECOND_NS, 3600 * SECOND_NS);
    assert!((burn - 0.5).abs() < 0.05, "burn {burn}");
}

#[test]
fn fast_burn_fires_within_the_analytic_detection_bound() {
    // One hour of clean traffic, then a total outage. The fast rule's
    // long window (1 h) is the binding constraint: it needs a bad
    // fraction of factor × budget = 14.4 × 0.001, which a total outage
    // accumulates in 14.4 × 0.001 × 3600 s = 51.84 s. The ring
    // quantizes in 37.5 s buckets (5 m / 8), so detection must land
    // within one bucket either side of the analytic bound.
    let mut tracker = availability_tracker();
    let warmup = drive(&mut tracker, 0, 3600, 1, 100, 0);
    assert!(warmup.is_empty());
    let outage = drive(&mut tracker, 3600, 600, 1, 100, 100);
    let (fired_at, alert) = outage
        .iter()
        .find(|(_, a)| a.rule == "fast_burn" && a.state == AlertState::Firing)
        .expect("fast burn must fire during a total outage");
    let into_outage = fired_at - 3600;
    let bound_s = 14.4 * 0.001 * 3600.0; // 51.84 s
    let bucket_s = 300.0 / 8.0; // 37.5 s
    assert!(
        (into_outage as f64) >= bound_s - bucket_s && (into_outage as f64) <= bound_s + bucket_s,
        "fired {into_outage}s into the outage; analytic bound {bound_s}s ± {bucket_s}s"
    );
    assert_eq!(alert.severity, Severity::Page);
    assert!(alert.burn_long >= 14.4 && alert.burn_short >= 14.4);
}

#[test]
fn fast_burn_clears_quickly_after_recovery() {
    let mut tracker = availability_tracker();
    drive(&mut tracker, 0, 3600, 1, 100, 0);
    let outage = drive(&mut tracker, 3600, 120, 1, 100, 100);
    assert!(outage
        .iter()
        .any(|(_, a)| a.rule == "fast_burn" && a.state == AlertState::Firing));
    assert!(tracker.firing(Severity::Page));
    // Recovery: the short window (5 m) un-fires the rule long before
    // the long window forgets the outage. One extra ring bucket of
    // grace on top of the 300 s window.
    let recovery = drive(&mut tracker, 3720, 600, 1, 100, 0);
    let (cleared_at, _) = recovery
        .iter()
        .find(|(_, a)| a.rule == "fast_burn" && a.state == AlertState::Cleared)
        .expect("fast burn must clear after recovery");
    let into_recovery = cleared_at - 3720;
    assert!(
        into_recovery <= 300 + 38,
        "cleared {into_recovery}s into recovery; short window is 300s"
    );
    assert!(!tracker.firing(Severity::Page));
}

#[test]
fn moderate_burn_warns_without_paging() {
    // Bad fraction of 1% against a 0.1% budget: burn rate 10 — above
    // the slow factor (6), below the fast factor (14.4). Only the slow
    // warn rule may fire, and only after its 6 h long window fills.
    let mut tracker = availability_tracker();
    let alerts = drive(&mut tracker, 0, 12 * 3600, 10, 100, 10);
    assert!(!alerts.is_empty(), "slow burn never fired");
    for (_, alert) in &alerts {
        assert_eq!(alert.rule, "slow_burn", "{alert}");
        assert_eq!(alert.severity, Severity::Warn);
    }
    assert!(tracker.firing(Severity::Warn));
    assert!(!tracker.firing(Severity::Page));
}

#[test]
fn identical_streams_produce_identical_alert_timelines() {
    // The determinism contract: same events, same timestamps → the
    // same transitions at the same modeled times, run-to-run.
    let run = || {
        let mut tracker = availability_tracker();
        let mut alerts = drive(&mut tracker, 0, 3600, 1, 100, 0);
        alerts.extend(drive(&mut tracker, 3600, 300, 1, 100, 100));
        alerts.extend(drive(&mut tracker, 3900, 900, 1, 100, 0));
        alerts
            .into_iter()
            .map(|(t, a)| (t, a.rule, a.state, a.at_ns))
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second);
}

#[test]
fn demo_windows_compress_the_same_shape_into_seconds() {
    // The CI smoke job runs against demo windows; assert the compressed
    // detection bound here so the smoke job's timing assumptions are
    // pinned by a test: 14.4 × 0.01 × 10 s = 1.44 s, bucket 0.25 s.
    let mut tracker = SloTracker::new(Objectives::demo().specs().remove(0));
    // 60 s of clean traffic at 200 ops/s, ticking every 100 ms.
    for i in 0..600u64 {
        let now = i * SECOND_NS / 10;
        tracker.record(now, 20, 0);
        assert!(tracker.evaluate(now).is_empty());
    }
    // Total outage.
    let mut fired = None;
    for i in 600..900u64 {
        let now = i * SECOND_NS / 10;
        tracker.record(now, 0, 20);
        if tracker
            .evaluate(now)
            .iter()
            .any(|a| a.rule == "fast_burn" && a.state == AlertState::Firing)
        {
            fired = Some((i - 600) as f64 / 10.0);
            break;
        }
    }
    let t_fire = fired.expect("demo fast burn fired");
    assert!(
        (1.0..=2.0).contains(&t_fire),
        "fired after {t_fire}s; bound 1.44s ± 0.25s"
    );
}

#[test]
fn correctness_page_degrades_the_fleet_and_counts_in_telemetry() {
    let _guard = serial();
    let scope = vlsa_telemetry::ScopedRecorder::install();
    let mut engine = SloEngine::new(Objectives::demo());
    let flags: Vec<Arc<AtomicBool>> = (0..4).map(|_| Arc::new(AtomicBool::new(false))).collect();
    engine.set_degrade_signals(flags.clone());
    // Clean co-traffic on every SLO, then a correctness collapse.
    for i in 0..60u64 {
        let now = i * SECOND_NS;
        engine.record_availability(now, 1_000, 0);
        engine.record_latency(now, 1_000, 0);
        engine.record_correctness(now, 1_000, 0);
        assert!(engine.evaluate(now).is_empty());
    }
    assert!(flags.iter().all(|f| !f.load(Ordering::Relaxed)));
    let mut paged = false;
    for i in 60..120u64 {
        let now = i * SECOND_NS;
        engine.record_availability(now, 1_000, 0);
        engine.record_latency(now, 1_000, 0);
        engine.record_correctness(now, 0, 1_000);
        for alert in engine.evaluate(now) {
            if alert.slo == "correctness" && alert.severity == Severity::Page {
                paged = true;
            }
        }
        if paged {
            break;
        }
    }
    assert!(paged, "correctness page never fired");
    assert!(
        flags.iter().all(|f| f.load(Ordering::Relaxed)),
        "a paging correctness budget must flip every shard's degrade flag"
    );
    assert!(engine.pages_firing() >= 1);
    let registry = scope.registry();
    assert!(registry.counter_value(vlsa_telemetry::names::slo::ALERTS) >= 1);
    assert!(registry.counter_value(vlsa_telemetry::names::slo::PAGES) >= 1);
    let status = engine.status(120 * SECOND_NS);
    assert_eq!(
        status
            .get("pages_firing")
            .and_then(vlsa_telemetry::Json::as_u64),
        Some(engine.pages_firing() as u64)
    );
}
