//! Declarative SLO definitions: what counts as a bad event, the
//! compliance target, and the burn-rate alerting windows.
//!
//! Everything here is plain data. Durations are modeled nanoseconds —
//! the engine never reads a wall clock, so the same event stream always
//! produces the same alerts (the property the deterministic burn-rate
//! tests in `tests/burn_determinism.rs` lean on).

/// What kind of service-level indicator an SLO tracks. The kinds map
/// onto the telemetry the serving stack already emits:
///
/// | kind | good event | bad event |
/// |---|---|---|
/// | availability | answered request | shed request (`Busy` frame) |
/// | latency | request under the threshold | request over it |
/// | correctness | op with no correctness evidence against it | conformance alert or residue catch |
#[derive(Clone, Debug, PartialEq)]
pub enum SloKind {
    /// `answered / offered` — load shedding spends this budget.
    Availability,
    /// Fraction of requests at or under `threshold_us` (for a 0.99
    /// target this is "p99 under the threshold", counted from histogram
    /// buckets, never from raw samples).
    Latency {
        /// Inclusive per-request latency threshold in microseconds.
        threshold_us: u64,
    },
    /// Fraction of served ops with no correctness evidence against
    /// them; conformance drift alerts and residue catches are the bad
    /// events.
    Correctness,
}

impl SloKind {
    /// Stable lowercase label (`availability` / `latency` /
    /// `correctness`) used in metric labels and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SloKind::Availability => "availability",
            SloKind::Latency { .. } => "latency",
            SloKind::Correctness => "correctness",
        }
    }
}

/// How loud a burn-rate rule is when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Slow burn: the budget will run out in days — ticket territory.
    Warn,
    /// Fast burn: the budget is being torched right now — page.
    Page,
}

impl Severity {
    /// Stable lowercase label (`warn` / `page`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Page => "page",
        }
    }
}

/// One multi-window burn-rate rule: fire when the burn rate exceeds
/// `factor` over *both* the long window (sustained, not a blip) and the
/// short window (still happening right now). Clear when either window
/// drops back under the factor — the short window makes clearing fast
/// once the condition recovers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnRule {
    /// Stable rule name (`fast_burn` / `slow_burn`).
    pub name: &'static str,
    /// What firing means operationally.
    pub severity: Severity,
    /// Long confirmation window, modeled nanoseconds.
    pub long_ns: u64,
    /// Short recency window, modeled nanoseconds.
    pub short_ns: u64,
    /// Burn-rate threshold: 1.0 spends exactly the whole budget over
    /// the budget period; 14.4 spends it in 1/14.4 of the period.
    pub factor: f64,
}

/// The time structure of one SLO: the error-budget period plus the
/// burn-rate rules evaluated against it. All durations are modeled
/// nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct SloWindows {
    /// Error-budget accounting period (budget consumption resets at
    /// period boundaries).
    pub budget_ns: u64,
    /// Burn-rate rules, evaluated independently.
    pub rules: Vec<BurnRule>,
}

const SECOND_NS: u64 = 1_000_000_000;
const MINUTE_NS: u64 = 60 * SECOND_NS;
const HOUR_NS: u64 = 60 * MINUTE_NS;

impl SloWindows {
    /// The Google-SRE-workbook defaults: a 30-day budget with a fast
    /// 5m/1h ×14.4 page rule and a slow 30m/6h ×6 warn rule.
    pub fn standard() -> SloWindows {
        SloWindows {
            budget_ns: 30 * 24 * HOUR_NS,
            rules: vec![
                BurnRule {
                    name: "fast_burn",
                    severity: Severity::Page,
                    long_ns: HOUR_NS,
                    short_ns: 5 * MINUTE_NS,
                    factor: 14.4,
                },
                BurnRule {
                    name: "slow_burn",
                    severity: Severity::Warn,
                    long_ns: 6 * HOUR_NS,
                    short_ns: 30 * MINUTE_NS,
                    factor: 6.0,
                },
            ],
        }
    }

    /// Compressed windows for demos, benches, and CI smoke jobs: a
    /// 2-minute budget with a fast 2s/10s ×14.4 page rule and a slow
    /// 10s/40s ×6 warn rule — the same shape as [`standard`], scaled so
    /// an induced overload fires (and clears) within seconds of wall
    /// time when modeled time tracks it.
    ///
    /// [`standard`]: SloWindows::standard
    pub fn demo() -> SloWindows {
        SloWindows {
            budget_ns: 2 * MINUTE_NS,
            rules: vec![
                BurnRule {
                    name: "fast_burn",
                    severity: Severity::Page,
                    long_ns: 10 * SECOND_NS,
                    short_ns: 2 * SECOND_NS,
                    factor: 14.4,
                },
                BurnRule {
                    name: "slow_burn",
                    severity: Severity::Warn,
                    long_ns: 40 * SECOND_NS,
                    short_ns: 10 * SECOND_NS,
                    factor: 6.0,
                },
            ],
        }
    }

    /// The ring-bucket width the engine quantizes time into: 1/8 of the
    /// shortest rule window (detection-time quantization stays well
    /// under one short window), at least 1 ns.
    pub fn bucket_ns(&self) -> u64 {
        let shortest = self
            .rules
            .iter()
            .map(|r| r.short_ns.min(r.long_ns))
            .min()
            .unwrap_or(SECOND_NS);
        (shortest / 8).max(1)
    }

    /// The longest window any rule needs — how much history the ring
    /// must retain.
    pub fn span_ns(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| r.long_ns.max(r.short_ns))
            .max()
            .unwrap_or(SECOND_NS)
    }
}

/// One declared SLO.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Display name; [`SloKind::label`] by convention.
    pub name: String,
    /// What the good/bad events are.
    pub kind: SloKind,
    /// Compliance target in `(0, 1)`; the error budget is `1 - target`.
    pub target: f64,
    /// Budget period and burn-rate rules.
    pub windows: SloWindows,
}

impl SloSpec {
    /// The allowed bad-event fraction, `1 - target`.
    pub fn budget_fraction(&self) -> f64 {
        (1.0 - self.target).max(f64::EPSILON)
    }
}

/// The serving stack's three SLOs as one bundle — what `vlsa-server`
/// and the fleet aggregator both instantiate, so a process and its
/// fleet always agree on what "inside budget" means.
#[derive(Clone, Debug, PartialEq)]
pub struct Objectives {
    /// Availability target (answered / offered).
    pub availability_target: f64,
    /// Latency target: fraction of requests under the threshold.
    pub latency_target: f64,
    /// Inclusive latency threshold in microseconds. Align this with a
    /// histogram bucket bound — latency SLIs are counted from bucket
    /// counts, and a mid-bucket threshold silently rounds up.
    pub latency_threshold_us: u64,
    /// Correctness target (ops with no evidence against them / ops).
    pub correctness_target: f64,
    /// Shared budget period and burn-rate rules.
    pub windows: SloWindows,
}

impl Objectives {
    /// Production-shaped defaults: 99.9% availability, 99% of requests
    /// under 16384 µs (a `DEFAULT_BUCKETS` bound), 99.99% correctness,
    /// standard 30-day windows.
    pub fn standard() -> Objectives {
        Objectives {
            availability_target: 0.999,
            latency_target: 0.99,
            latency_threshold_us: 16_384,
            correctness_target: 0.9999,
            windows: SloWindows::standard(),
        }
    }

    /// Demo/CI-shaped objectives: looser targets (99% availability, so
    /// an induced overload burns visibly fast) over [`SloWindows::demo`]
    /// windows.
    pub fn demo() -> Objectives {
        Objectives {
            availability_target: 0.99,
            latency_target: 0.99,
            latency_threshold_us: 16_384,
            correctness_target: 0.999,
            windows: SloWindows::demo(),
        }
    }

    /// The three [`SloSpec`]s, in the engine's canonical order:
    /// availability, latency, correctness.
    pub fn specs(&self) -> Vec<SloSpec> {
        vec![
            SloSpec {
                name: "availability".to_string(),
                kind: SloKind::Availability,
                target: self.availability_target,
                windows: self.windows.clone(),
            },
            SloSpec {
                name: "latency".to_string(),
                kind: SloKind::Latency {
                    threshold_us: self.latency_threshold_us,
                },
                target: self.latency_target,
                windows: self.windows.clone(),
            },
            SloSpec {
                name: "correctness".to_string(),
                kind: SloKind::Correctness,
                target: self.correctness_target,
                windows: self.windows.clone(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_windows_match_the_sre_workbook_shape() {
        let w = SloWindows::standard();
        assert_eq!(w.budget_ns, 30 * 24 * 3600 * SECOND_NS);
        assert_eq!(w.rules.len(), 2);
        let fast = &w.rules[0];
        assert_eq!(fast.name, "fast_burn");
        assert_eq!(fast.severity, Severity::Page);
        assert_eq!(fast.long_ns, 3600 * SECOND_NS);
        assert_eq!(fast.short_ns, 300 * SECOND_NS);
        assert!((fast.factor - 14.4).abs() < 1e-12);
        let slow = &w.rules[1];
        assert_eq!(slow.severity, Severity::Warn);
        assert_eq!(slow.long_ns, 6 * 3600 * SECOND_NS);
        // The ring quantum is 1/8 of the shortest window.
        assert_eq!(w.bucket_ns(), 300 * SECOND_NS / 8);
        assert_eq!(w.span_ns(), 6 * 3600 * SECOND_NS);
    }

    #[test]
    fn objectives_expand_to_three_specs_in_canonical_order() {
        let specs = Objectives::standard().specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].kind, SloKind::Availability);
        assert_eq!(
            specs[1].kind,
            SloKind::Latency {
                threshold_us: 16_384
            }
        );
        assert_eq!(specs[2].kind, SloKind::Correctness);
        assert!((specs[0].budget_fraction() - 0.001).abs() < 1e-12);
        for spec in &specs {
            assert_eq!(spec.name, spec.kind.label());
        }
    }

    #[test]
    fn demo_windows_are_seconds_scale() {
        let w = SloWindows::demo();
        assert!(w.budget_ns <= 5 * 60 * SECOND_NS);
        assert!(w.span_ns() <= 60 * SECOND_NS);
        assert!(w.bucket_ns() >= 1_000_000); // ≥ 1 ms: sane ring sizes
    }
}
