//! Declarative SLOs over VLSA telemetry: error-budget accounting and
//! Google-SRE-style multi-window multi-burn-rate alerting.
//!
//! The serving stack (PR 5) already measures everything an SLO needs —
//! offered/answered/shed counters, latency histograms, conformance
//! alerts, residue catches. What it lacked was a *policy layer*: how
//! much failure is acceptable, how fast is it being spent, and when is
//! the spend rate an emergency? This crate is that layer:
//!
//! - [`SloSpec`] / [`Objectives`]: declarative definitions — an SLI
//!   kind ([`SloKind`]), a compliance target, and the window structure
//!   ([`SloWindows`]) holding the budget period and burn rules.
//! - [`SloTracker`]: one SLO's error-budget accountant. Good/bad events
//!   flow into a [`TimeBuckets`] ring; every [`BurnRule`] fires when
//!   the burn rate exceeds its factor over *both* its long and short
//!   windows (sustained *and* still happening), and clears when either
//!   window recovers.
//! - [`SloEngine`]: the canonical three-SLO bundle (availability,
//!   latency, correctness) with the same alert fan-out the conformance
//!   monitor uses — telemetry counters, event-sink notes, trace instant
//!   spans — plus the degrade coupling: a paging correctness burn flips
//!   every shard's degrade flag, pre-emptively moving the fleet to the
//!   exact adder while budget remains.
//!
//! ## Modeled time
//!
//! Nothing in this crate reads a clock. Every API takes explicit
//! modeled nanoseconds, so the same event stream always produces the
//! same alerts at the same timestamps — the burn-rate tests in
//! `tests/burn_determinism.rs` assert detection bounds to the bucket.
//! `vlsa-server` feeds it pipeline cycle time; the fleet aggregator
//! feeds it wall time relative to its own epoch; tests feed it
//! literals.
//!
//! ## Burn-rate arithmetic
//!
//! A burn rate of 1.0 means the error budget is being spent exactly at
//! the rate that exhausts it at the period's end. The standard fast
//! rule (×14.4 over 1h/5m) pages when the spend rate would exhaust a
//! 30-day budget in ~2 days; detection latency for a total outage is
//! `factor × budget_fraction × long_window` — about 52 s for a 99.9%
//! target, quantized by the ring's bucket width.

mod engine;
mod spec;
mod window;

pub use engine::{AlertState, SloAlert, SloEngine, SloTracker};
pub use spec::{BurnRule, Objectives, Severity, SloKind, SloSpec, SloWindows};
pub use window::TimeBuckets;
