//! The error-budget accountant and multi-window burn-rate evaluator.
//!
//! One [`SloTracker`] per declared SLO: it accumulates good/bad events
//! into a [`TimeBuckets`] ring (for burn rates) and a cumulative period
//! account (for budget consumption), and evaluates every
//! [`BurnRule`](crate::BurnRule) against the ring. The [`SloEngine`]
//! bundles the serving stack's three trackers and fans fired alerts out
//! exactly the way the conformance monitor fans out drift alerts:
//! telemetry counters, an event-sink note, a trace instant span, and —
//! for a burning *correctness* budget — the shared degrade signals, so
//! shards flip to the exact adder before the budget is gone.
//!
//! The engine never reads a clock; callers pass modeled nanoseconds.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vlsa_telemetry::names::{labeled, labeled_multi, slo as metric};
use vlsa_telemetry::{Event, Json};
use vlsa_trace::{names as span, TraceEvent};

use crate::spec::{Objectives, Severity, SloKind, SloSpec};
use crate::window::TimeBuckets;

/// Whether an [`SloAlert`] reports a rule starting or stopping to fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// The rule crossed its factor on both windows.
    Firing,
    /// A previously-firing rule dropped back under its factor.
    Cleared,
}

impl AlertState {
    /// Stable lowercase label (`firing` / `cleared`).
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Cleared => "cleared",
        }
    }
}

/// One burn-rate alert transition.
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlert {
    /// The SLO's name (`availability` / `latency` / `correctness`).
    pub slo: String,
    /// The rule that transitioned (`fast_burn` / `slow_burn`).
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Firing or cleared.
    pub state: AlertState,
    /// Burn rate over the rule's long window at evaluation time.
    pub burn_long: f64,
    /// Burn rate over the rule's short window at evaluation time.
    pub burn_short: f64,
    /// Fraction of the period's error budget consumed (can exceed 1).
    pub budget_consumed: f64,
    /// Modeled time of the transition.
    pub at_ns: u64,
}

impl SloAlert {
    /// The alert as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("slo", self.slo.clone())
            .set("rule", self.rule)
            .set("severity", self.severity.label())
            .set("state", self.state.label())
            .set("burn_long", self.burn_long)
            .set("burn_short", self.burn_short)
            .set("budget_consumed", self.budget_consumed)
            .set("at_ns", self.at_ns)
    }
}

impl std::fmt::Display for SloAlert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "slo {} {} {} {}: burn {:.1}x long / {:.1}x short, {:.1}% of budget consumed",
            self.slo,
            self.rule,
            self.severity.label(),
            self.state.label(),
            self.burn_long,
            self.burn_short,
            self.budget_consumed * 100.0
        )
    }
}

/// Per-rule live state inside a tracker.
#[derive(Clone, Copy, Debug, Default)]
struct RuleState {
    firing: bool,
}

/// One SLO's error-budget accountant and burn-rate evaluator.
#[derive(Clone, Debug)]
pub struct SloTracker {
    spec: SloSpec,
    buckets: TimeBuckets,
    period_start_ns: u64,
    period_good: u64,
    period_bad: u64,
    rules: Vec<RuleState>,
    last_ns: u64,
}

impl SloTracker {
    /// A tracker for `spec`, with its ring sized from the spec's
    /// windows.
    pub fn new(spec: SloSpec) -> SloTracker {
        let buckets = TimeBuckets::new(spec.windows.bucket_ns(), spec.windows.span_ns());
        let rules = vec![RuleState::default(); spec.windows.rules.len()];
        SloTracker {
            spec,
            buckets,
            period_start_ns: 0,
            period_good: 0,
            period_bad: 0,
            rules,
            last_ns: 0,
        }
    }

    /// The tracker's spec.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Adds good/bad events at modeled time `now_ns`.
    pub fn record(&mut self, now_ns: u64, good: u64, bad: u64) {
        let now_ns = self.clamp_monotonic(now_ns);
        self.roll_period(now_ns);
        self.buckets.record(now_ns, good, bad);
        self.period_good += good;
        self.period_bad += bad;
    }

    /// Fraction of this period's error budget consumed so far: bad
    /// events over the budget's allowance of the period's total events.
    /// Exceeds 1.0 once the budget is blown.
    pub fn budget_consumed(&self) -> f64 {
        let total = self.period_good + self.period_bad;
        if total == 0 {
            return 0.0;
        }
        let allowed = self.spec.budget_fraction() * total as f64;
        self.period_bad as f64 / allowed
    }

    /// Burn rate over a trailing window: the window's bad fraction in
    /// units of the budget fraction (1.0 = spending exactly on
    /// schedule). `0.0` when the window holds no events.
    pub fn burn_rate(&self, now_ns: u64, window_ns: u64) -> f64 {
        match self.buckets.bad_fraction(now_ns, window_ns) {
            Some(fraction) => fraction / self.spec.budget_fraction(),
            None => 0.0,
        }
    }

    /// Evaluates every burn rule at modeled time `now_ns`, returning
    /// only the *transitions* (fire and clear edges); steady states are
    /// silent.
    pub fn evaluate(&mut self, now_ns: u64) -> Vec<SloAlert> {
        let now_ns = self.clamp_monotonic(now_ns);
        self.roll_period(now_ns);
        let mut out = Vec::new();
        let budget_consumed = self.budget_consumed();
        for (rule, state) in self.spec.windows.rules.clone().iter().zip(&mut self.rules) {
            let burn_long = match self.buckets.bad_fraction(now_ns, rule.long_ns) {
                Some(f) => f / self.spec.budget_fraction(),
                None => 0.0,
            };
            let burn_short = match self.buckets.bad_fraction(now_ns, rule.short_ns) {
                Some(f) => f / self.spec.budget_fraction(),
                None => 0.0,
            };
            let above = burn_long >= rule.factor && burn_short >= rule.factor;
            if above != state.firing {
                state.firing = above;
                out.push(SloAlert {
                    slo: self.spec.name.clone(),
                    rule: rule.name,
                    severity: rule.severity,
                    state: if above {
                        AlertState::Firing
                    } else {
                        AlertState::Cleared
                    },
                    burn_long,
                    burn_short,
                    budget_consumed,
                    at_ns: now_ns,
                });
            }
        }
        out
    }

    /// Whether any rule of the given severity is currently firing.
    pub fn firing(&self, severity: Severity) -> bool {
        self.spec
            .windows
            .rules
            .iter()
            .zip(&self.rules)
            .any(|(rule, state)| state.firing && rule.severity == severity)
    }

    /// Live status as a JSON object (burn rates re-computed at
    /// `now_ns`).
    pub fn status(&self, now_ns: u64) -> Json {
        let now_ns = now_ns.max(self.last_ns);
        let rules: Vec<Json> = self
            .spec
            .windows
            .rules
            .iter()
            .zip(&self.rules)
            .map(|(rule, state)| {
                Json::obj()
                    .set("rule", rule.name)
                    .set("severity", rule.severity.label())
                    .set("factor", rule.factor)
                    .set("long_ns", rule.long_ns)
                    .set("short_ns", rule.short_ns)
                    .set("burn_long", self.burn_rate(now_ns, rule.long_ns))
                    .set("burn_short", self.burn_rate(now_ns, rule.short_ns))
                    .set("firing", state.firing)
            })
            .collect();
        Json::obj()
            .set("name", self.spec.name.clone())
            .set("kind", self.spec.kind.label())
            .set("target", self.spec.target)
            .set("period_good", self.period_good)
            .set("period_bad", self.period_bad)
            .set("budget_consumed", self.budget_consumed())
            .set("rules", Json::Arr(rules))
    }

    /// The engine is fed from several shard workers whose modeled
    /// clocks drift slightly; folding a lagging timestamp forward onto
    /// the newest one seen keeps evaluation monotone and deterministic.
    fn clamp_monotonic(&mut self, now_ns: u64) -> u64 {
        self.last_ns = self.last_ns.max(now_ns);
        self.last_ns
    }

    fn roll_period(&mut self, now_ns: u64) {
        let budget_ns = self.spec.windows.budget_ns.max(1);
        if now_ns >= self.period_start_ns + budget_ns {
            let periods = (now_ns - self.period_start_ns) / budget_ns;
            self.period_start_ns += periods * budget_ns;
            self.period_good = 0;
            self.period_bad = 0;
        }
    }
}

/// The serving stack's SLO bundle: availability, latency, correctness —
/// fed by whoever owns the event sources, evaluated together, alerts
/// fanned out to telemetry/trace/degrade.
#[derive(Debug)]
pub struct SloEngine {
    objectives: Objectives,
    trackers: Vec<SloTracker>,
    degrade: Vec<Arc<AtomicBool>>,
    history: VecDeque<SloAlert>,
    last_ns: u64,
}

/// Alert history retained for `/slo` endpoints.
const HISTORY_CAP: usize = 256;

/// Canonical tracker indices (the order [`Objectives::specs`] emits).
const AVAILABILITY: usize = 0;
const LATENCY: usize = 1;
const CORRECTNESS: usize = 2;

impl SloEngine {
    /// An engine over the three canonical SLOs of `objectives`.
    pub fn new(objectives: Objectives) -> SloEngine {
        let trackers = objectives
            .specs()
            .into_iter()
            .map(SloTracker::new)
            .collect();
        SloEngine {
            objectives,
            trackers,
            degrade: Vec::new(),
            history: VecDeque::new(),
            last_ns: 0,
        }
    }

    /// The objectives this engine enforces.
    pub fn objectives(&self) -> &Objectives {
        &self.objectives
    }

    /// Attaches the shard degrade flags. A *correctness* page flips
    /// every flag — the pre-emptive "stop speculating before the budget
    /// is gone" coupling, same signal the conformance monitor raises.
    pub fn set_degrade_signals(&mut self, flags: Vec<Arc<AtomicBool>>) {
        self.degrade = flags;
    }

    /// Records availability events (answered = good, shed = bad).
    pub fn record_availability(&mut self, now_ns: u64, good: u64, bad: u64) {
        self.trackers[AVAILABILITY].record(now_ns, good, bad);
    }

    /// Records latency events (under threshold = good, over = bad).
    pub fn record_latency(&mut self, now_ns: u64, good: u64, bad: u64) {
        self.trackers[LATENCY].record(now_ns, good, bad);
    }

    /// Records correctness events (clean op = good, conformance alert
    /// or residue catch = bad).
    pub fn record_correctness(&mut self, now_ns: u64, good: u64, bad: u64) {
        self.trackers[CORRECTNESS].record(now_ns, good, bad);
    }

    /// Evaluates every tracker at modeled `now_ns`, fans out
    /// transitions, and returns them.
    pub fn evaluate(&mut self, now_ns: u64) -> Vec<SloAlert> {
        self.last_ns = self.last_ns.max(now_ns);
        let now_ns = self.last_ns;
        let mut transitions = Vec::new();
        for i in 0..self.trackers.len() {
            let alerts = self.trackers[i].evaluate(now_ns);
            let kind = self.trackers[i].spec().kind.clone();
            for alert in alerts {
                self.fan_out(&alert, &kind);
                if self.history.len() == HISTORY_CAP {
                    self.history.pop_front();
                }
                self.history.push_back(alert.clone());
                transitions.push(alert);
            }
        }
        self.flush_gauges(now_ns);
        transitions
    }

    /// Number of page-severity rules currently firing across all SLOs.
    pub fn pages_firing(&self) -> usize {
        self.trackers
            .iter()
            .filter(|t| t.firing(Severity::Page))
            .count()
    }

    /// Number of warn-severity rules currently firing across all SLOs.
    pub fn warns_firing(&self) -> usize {
        self.trackers
            .iter()
            .filter(|t| t.firing(Severity::Warn))
            .count()
    }

    /// Full status document: every tracker's live state plus the recent
    /// alert transitions — what `/slo` endpoints serve.
    pub fn status(&self, now_ns: u64) -> Json {
        let now_ns = now_ns.max(self.last_ns);
        let slos: Vec<Json> = self.trackers.iter().map(|t| t.status(now_ns)).collect();
        let recent: Vec<Json> = self.history.iter().map(SloAlert::to_json).collect();
        Json::obj()
            .set("modeled_now_ns", now_ns)
            .set("pages_firing", self.pages_firing() as u64)
            .set("warns_firing", self.warns_firing() as u64)
            .set("slos", Json::Arr(slos))
            .set("recent_alerts", Json::Arr(recent))
    }

    /// The alert fan-out, mirroring `ConformanceMonitor::raise`:
    /// telemetry counters + event-sink note + trace instant span, plus
    /// the degrade coupling for a paging correctness budget.
    fn fan_out(&self, alert: &SloAlert, kind: &SloKind) {
        if alert.state == AlertState::Firing
            && alert.severity == Severity::Page
            && matches!(kind, SloKind::Correctness)
        {
            for flag in &self.degrade {
                flag.store(true, Ordering::Relaxed);
            }
        }
        if vlsa_telemetry::is_enabled() {
            let registry = vlsa_telemetry::recorder();
            match alert.state {
                AlertState::Firing => {
                    registry.counter(metric::ALERTS).incr();
                    registry
                        .counter(match alert.severity {
                            Severity::Page => metric::PAGES,
                            Severity::Warn => metric::WARNS,
                        })
                        .incr();
                }
                AlertState::Cleared => {
                    registry.counter(metric::CLEARS).incr();
                }
            }
            vlsa_telemetry::emit(Event::Note {
                source: "vlsa.slo".to_string(),
                text: alert.to_string(),
            });
        }
        if vlsa_trace::is_enabled() {
            vlsa_trace::record(
                TraceEvent::instant(span::SLO_BURN, "slo", alert.at_ns / 1_000)
                    .on_track(5)
                    .arg("burn_long_x1000", (alert.burn_long * 1000.0) as u64)
                    .arg("burn_short_x1000", (alert.burn_short * 1000.0) as u64)
                    .arg(
                        "budget_consumed_x1000",
                        (alert.budget_consumed * 1000.0) as u64,
                    ),
            );
        }
    }

    fn flush_gauges(&self, now_ns: u64) {
        if !vlsa_telemetry::is_enabled() {
            return;
        }
        let registry = vlsa_telemetry::recorder();
        for tracker in &self.trackers {
            let name = tracker.spec().name.as_str();
            registry
                .gauge(&labeled(metric::BUDGET_CONSUMED, "slo", name))
                .set(tracker.budget_consumed());
            for rule in &tracker.spec().windows.rules {
                for (window, ns) in [("long", rule.long_ns), ("short", rule.short_ns)] {
                    registry
                        .gauge(&labeled_multi(
                            metric::BURN_RATE,
                            &[("slo", name), ("rule", rule.name), ("window", window)],
                        ))
                        .set(tracker.burn_rate(now_ns, ns));
                }
            }
        }
        registry
            .gauge(metric::PAGES_FIRING)
            .set(self.pages_firing() as f64);
        registry
            .gauge(metric::WARNS_FIRING)
            .set(self.warns_firing() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BurnRule, SloWindows};

    const S: u64 = 1_000_000_000;

    fn tiny_spec(target: f64) -> SloSpec {
        SloSpec {
            name: "availability".to_string(),
            kind: SloKind::Availability,
            target,
            windows: SloWindows {
                budget_ns: 1_000 * S,
                rules: vec![
                    BurnRule {
                        name: "fast_burn",
                        severity: Severity::Page,
                        long_ns: 100 * S,
                        short_ns: 10 * S,
                        factor: 10.0,
                    },
                    BurnRule {
                        name: "slow_burn",
                        severity: Severity::Warn,
                        long_ns: 400 * S,
                        short_ns: 40 * S,
                        factor: 2.0,
                    },
                ],
            },
        }
    }

    #[test]
    fn clean_traffic_never_fires() {
        let mut t = SloTracker::new(tiny_spec(0.99));
        for i in 0..1_000 {
            t.record(i * S, 100, 0);
            assert!(t.evaluate(i * S).is_empty(), "tick {i}");
        }
        assert_eq!(t.budget_consumed(), 0.0);
        assert!(!t.firing(Severity::Page));
        assert!(!t.firing(Severity::Warn));
    }

    #[test]
    fn sub_budget_error_rate_never_fires() {
        // Bad fraction at half the budget: burn 0.5, under every factor.
        let mut t = SloTracker::new(tiny_spec(0.99));
        for i in 0..1_000 {
            t.record(i * S, 995, 5);
            assert!(t.evaluate(i * S).is_empty(), "tick {i}");
        }
        let burn = t.burn_rate(999 * S, 100 * S);
        assert!((burn - 0.5).abs() < 0.05, "{burn}");
    }

    #[test]
    fn fast_burn_fires_and_clears_on_both_window_consensus() {
        let mut t = SloTracker::new(tiny_spec(0.99));
        // 200 s of clean traffic fill the long window.
        for i in 0..200 {
            t.record(i * S, 100, 0);
            assert!(t.evaluate(i * S).is_empty());
        }
        // Total outage: burn rate heads to 100 (1.0 / 0.01).
        let mut fired_at = None;
        for i in 200..400 {
            t.record(i * S, 0, 100);
            for alert in t.evaluate(i * S) {
                if alert.rule == "fast_burn" && alert.state == AlertState::Firing {
                    fired_at = Some(i - 200);
                }
            }
            if fired_at.is_some() {
                break;
            }
        }
        // Analytic detection bound: the long window (100 s) needs a bad
        // fraction ≥ factor × budget = 10 × 0.01 = 0.1, i.e. ~10 s of
        // outage, plus ring quantization (bucket = 10s/8 = 1.25 s).
        let t_fire = fired_at.expect("fast burn fired");
        assert!((9..=13).contains(&t_fire), "detected after {t_fire}s");
        assert!(t.firing(Severity::Page));
        // Recovery: the short window clears within ~10 s of clean
        // traffic even though the long window is still polluted.
        let mut cleared_at = None;
        let recovery = 200 + t_fire + 1;
        for i in recovery..recovery + 100 {
            t.record(i * S, 100, 0);
            for alert in t.evaluate(i * S) {
                if alert.rule == "fast_burn" && alert.state == AlertState::Cleared {
                    cleared_at = Some(i - recovery);
                }
            }
            if cleared_at.is_some() {
                break;
            }
        }
        let t_clear = cleared_at.expect("fast burn cleared");
        assert!(t_clear <= 12, "cleared after {t_clear}s");
        assert!(!t.firing(Severity::Page));
    }

    #[test]
    fn moderate_burn_warns_without_paging() {
        // Bad fraction 5 × budget: above the slow factor (2), below the
        // fast factor (10).
        let mut t = SloTracker::new(tiny_spec(0.99));
        let mut fired: Vec<&'static str> = Vec::new();
        for i in 0..1_000 {
            t.record(i * S, 95, 5);
            for alert in t.evaluate(i * S) {
                if alert.state == AlertState::Firing {
                    fired.push(alert.rule);
                }
            }
        }
        assert_eq!(fired, vec!["slow_burn"]);
        assert!(t.firing(Severity::Warn));
        assert!(!t.firing(Severity::Page));
    }

    #[test]
    fn budget_consumption_tracks_the_period_and_resets() {
        let mut t = SloTracker::new(tiny_spec(0.99));
        t.record(0, 900, 100); // 10% bad against a 1% budget: 10× blown
        let consumed = t.budget_consumed();
        assert!((consumed - 10.0).abs() < 1e-9, "{consumed}");
        // Next period: the account resets.
        t.record(1_000 * S, 100, 0);
        assert_eq!(t.budget_consumed(), 0.0);
    }

    #[test]
    fn correctness_page_flips_the_degrade_signals() {
        let mut objectives = Objectives::demo();
        objectives.windows = SloWindows {
            budget_ns: 1_000 * S,
            rules: vec![BurnRule {
                name: "fast_burn",
                severity: Severity::Page,
                long_ns: 10 * S,
                short_ns: 2 * S,
                factor: 2.0,
            }],
        };
        let mut engine = SloEngine::new(objectives);
        let flags = vec![
            Arc::new(AtomicBool::new(false)),
            Arc::new(AtomicBool::new(false)),
        ];
        engine.set_degrade_signals(flags.clone());
        // An availability page must NOT flip the degrade signals.
        engine.record_availability(0, 0, 100);
        let alerts = engine.evaluate(0);
        assert!(alerts
            .iter()
            .any(|a| a.slo == "availability" && a.state == AlertState::Firing));
        assert!(flags.iter().all(|f| !f.load(Ordering::Relaxed)));
        // A correctness page must flip every shard's flag.
        engine.record_correctness(S, 0, 100);
        let alerts = engine.evaluate(S);
        assert!(alerts
            .iter()
            .any(|a| a.slo == "correctness" && a.state == AlertState::Firing));
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed)));
        assert!(engine.pages_firing() >= 2);
    }

    #[test]
    fn status_document_has_every_slo_and_recent_alerts() {
        let mut engine = SloEngine::new(Objectives::demo());
        engine.record_availability(0, 0, 1_000);
        engine.evaluate(0);
        let status = engine.status(0);
        let slos = status.get("slos").and_then(Json::as_arr).expect("slos");
        assert_eq!(slos.len(), 3);
        let names: Vec<&str> = slos
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["availability", "latency", "correctness"]);
        assert!(status.get("pages_firing").and_then(Json::as_u64).unwrap() >= 1);
        let recent = status
            .get("recent_alerts")
            .and_then(Json::as_arr)
            .expect("recent");
        assert!(!recent.is_empty());
        // Round-trips through the hand-rolled JSON writer/parser.
        let parsed = Json::parse(&status.to_string()).expect("valid JSON");
        assert_eq!(
            parsed.get("slos").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn out_of_order_timestamps_fold_forward_deterministically() {
        let mut a = SloTracker::new(tiny_spec(0.99));
        let mut b = SloTracker::new(tiny_spec(0.99));
        // Shard clocks drift: one stream delivers slightly stale times.
        for i in 0..100u64 {
            a.record(i * S, 10, 1);
            let stale = (i * S).saturating_sub(S / 2);
            b.record(i * S, 10, 1);
            b.record(stale, 0, 0); // stale empty tick must not disturb
        }
        assert_eq!(a.burn_rate(100 * S, 100 * S), b.burn_rate(100 * S, 100 * S));
    }
}
