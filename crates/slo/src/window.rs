//! Time-bucketed good/bad event accounting in modeled time.
//!
//! A [`TimeBuckets`] ring quantizes the modeled clock into fixed-width
//! buckets and accumulates `(good, bad)` event counts per bucket.
//! Burn-rate queries sum the buckets overlapping a trailing window —
//! an O(ring) scan over a few hundred slots, no heap traffic after
//! construction, and fully deterministic: the same `(timestamp, good,
//! bad)` stream always yields the same sums.

/// One ring slot: the absolute bucket index it currently holds counts
/// for, plus those counts. The index disambiguates aliased slots, so
/// stale data can never leak into a window sum.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    abs: u64,
    good: u64,
    bad: u64,
}

/// A fixed-capacity ring of time buckets over modeled nanoseconds.
#[derive(Clone, Debug)]
pub struct TimeBuckets {
    bucket_ns: u64,
    slots: Vec<Slot>,
    /// Absolute bucket index of the newest bucket written.
    head: u64,
}

impl TimeBuckets {
    /// A ring covering at least `span_ns` of history at `bucket_ns`
    /// resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ns` is zero.
    pub fn new(bucket_ns: u64, span_ns: u64) -> TimeBuckets {
        assert!(bucket_ns > 0, "bucket width must be positive");
        let slots = (span_ns / bucket_ns).max(1) as usize + 2;
        TimeBuckets {
            bucket_ns,
            slots: vec![Slot::default(); slots],
            head: 0,
        }
    }

    /// The ring's bucket width in modeled nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Adds `good`/`bad` events at modeled time `now_ns`. Events older
    /// than the ring's span (relative to the newest data seen) are
    /// dropped — they could only land in a slot already reused for a
    /// newer bucket.
    pub fn record(&mut self, now_ns: u64, good: u64, bad: u64) {
        let abs = now_ns / self.bucket_ns;
        let idx = (abs % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        match slot.abs.cmp(&abs) {
            std::cmp::Ordering::Equal => {
                slot.good += good;
                slot.bad += bad;
            }
            std::cmp::Ordering::Less => {
                *slot = Slot { abs, good, bad };
            }
            // The slot holds a *newer* aliased bucket: this event is
            // older than the whole ring. Dropping it is the only
            // deterministic option.
            std::cmp::Ordering::Greater => {}
        }
        self.head = self.head.max(abs);
    }

    /// Sums `(good, bad)` over the trailing `window_ns` ending at
    /// `now_ns`, bucket-quantized: the partially-covered oldest bucket
    /// is included whole, so the effective window is up to one bucket
    /// longer than asked — a deterministic, documented bias.
    pub fn window_totals(&self, now_ns: u64, window_ns: u64) -> (u64, u64) {
        let hi = now_ns / self.bucket_ns;
        let lo = now_ns.saturating_sub(window_ns) / self.bucket_ns;
        let mut good = 0u64;
        let mut bad = 0u64;
        for slot in &self.slots {
            if slot.abs >= lo && slot.abs <= hi && (slot.good > 0 || slot.bad > 0) {
                good += slot.good;
                bad += slot.bad;
            }
        }
        (good, bad)
    }

    /// The bad-event fraction over the trailing window, or `None` when
    /// the window holds no events (no data is not the same as 0%).
    pub fn bad_fraction(&self, now_ns: u64, window_ns: u64) -> Option<f64> {
        let (good, bad) = self.window_totals(now_ns, window_ns);
        let total = good + bad;
        if total == 0 {
            None
        } else {
            Some(bad as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_only_the_trailing_window() {
        let mut tb = TimeBuckets::new(10, 100);
        tb.record(5, 10, 1); // bucket 0
        tb.record(55, 20, 2); // bucket 5
        tb.record(105, 30, 3); // bucket 10
        assert_eq!(tb.window_totals(105, 1_000), (60, 6));
        // A 50ns window at t=105 covers buckets 5..=10.
        assert_eq!(tb.window_totals(105, 50), (50, 5));
        // A 10ns window covers buckets 9..=10 — only the newest record.
        assert_eq!(tb.window_totals(105, 10), (30, 3));
    }

    #[test]
    fn old_buckets_age_out_as_time_advances() {
        let mut tb = TimeBuckets::new(10, 100);
        tb.record(5, 100, 50);
        assert_eq!(tb.window_totals(5, 100), (100, 50));
        // Query far in the future: the old bucket is out of any window.
        assert_eq!(tb.window_totals(10_000, 100), (0, 0));
        assert_eq!(tb.bad_fraction(10_000, 100), None);
    }

    #[test]
    fn slot_reuse_never_counts_stale_aliases() {
        let mut tb = TimeBuckets::new(10, 100); // 12 slots
        tb.record(5, 7, 0); // bucket 0
        tb.record(1205, 9, 0); // bucket 120 ≡ 0 mod 12: evicts bucket 0
        assert_eq!(tb.window_totals(1205, 10_000), (9, 0));
        // An event older than the ring span is dropped, not misfiled.
        tb.record(5, 1000, 1000);
        assert_eq!(tb.window_totals(1205, 10_000), (9, 0));
    }

    #[test]
    fn bad_fraction_distinguishes_empty_from_clean() {
        let mut tb = TimeBuckets::new(1_000, 10_000);
        assert_eq!(tb.bad_fraction(500, 1_000), None);
        tb.record(500, 99, 1);
        let f = tb.bad_fraction(500, 1_000).expect("has data");
        assert!((f - 0.01).abs() < 1e-12, "{f}");
        tb.record(600, 0, 0);
        // Zero-count records change nothing.
        let f2 = tb.bad_fraction(600, 1_000).expect("has data");
        assert!((f2 - 0.01).abs() < 1e-12, "{f2}");
    }

    #[test]
    fn same_stream_same_sums() {
        let stream: Vec<(u64, u64, u64)> = (0..1_000).map(|i| (i * 37, i % 5, i % 3)).collect();
        let mut a = TimeBuckets::new(100, 5_000);
        let mut b = TimeBuckets::new(100, 5_000);
        for &(t, g, bd) in &stream {
            a.record(t, g, bd);
            b.record(t, g, bd);
        }
        for w in [100, 1_000, 5_000] {
            assert_eq!(a.window_totals(37_000, w), b.window_totals(37_000, w));
        }
    }
}
