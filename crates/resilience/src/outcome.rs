//! Fault-campaign outcome taxonomy.
//!
//! Each (fault, vector) injection lands in exactly one bucket,
//! classified against ground truth (the model knows the correct sum):
//!
//! | outcome | delivered result | who noticed |
//! |---|---|---|
//! | [`Outcome::Masked`] | correct | nobody needed to |
//! | [`Outcome::DetectedByEr`] | correct | the `ER` detector + recovery path |
//! | [`Outcome::DetectedByResidue`] | wrong | the end-to-end residue check |
//! | [`Outcome::SilentCorruption`] | wrong | nobody — SDC |
//!
//! The split between the two "wrong" buckets is what the residue
//! checker buys: with it enabled, `DetectedByResidue` injections are
//! retried/escalated instead of consumed, so only
//! [`Outcome::SilentCorruption`] remains silent. With it disabled,
//! both buckets are silent.

use vlsa_telemetry::Json;

/// Classification of one fault injection against ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The delivered `(sum, cout)` is correct and the speculative
    /// result needed no rescue — the fault never reached the consumer.
    Masked,
    /// The speculative result was wrong, but `ER` fired and the
    /// recovery path delivered the correct sum. (Includes the
    /// architecture's *natural* detections, which occur even with no
    /// fault injected.)
    DetectedByEr,
    /// The delivered result is wrong with `VALID = 1`, but the residue
    /// check rejects it — the second line of defense catches what the
    /// detector missed.
    DetectedByResidue,
    /// The delivered result is wrong and passes the residue check:
    /// silent data corruption.
    SilentCorruption,
}

/// Outcome histogram of a campaign (or of one fault across vectors).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// [`Outcome::Masked`] injections.
    pub masked: u64,
    /// [`Outcome::DetectedByEr`] injections.
    pub detected_by_er: u64,
    /// [`Outcome::DetectedByResidue`] injections.
    pub detected_by_residue: u64,
    /// [`Outcome::SilentCorruption`] injections.
    pub silent_corruption: u64,
}

impl OutcomeCounts {
    /// Tallies one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::DetectedByEr => self.detected_by_er += 1,
            Outcome::DetectedByResidue => self.detected_by_residue += 1,
            Outcome::SilentCorruption => self.silent_corruption += 1,
        }
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.masked += other.masked;
        self.detected_by_er += other.detected_by_er;
        self.detected_by_residue += other.detected_by_residue;
        self.silent_corruption += other.silent_corruption;
    }

    /// Total injections classified.
    pub fn total(&self) -> u64 {
        self.masked + self.detected_by_er + self.detected_by_residue + self.silent_corruption
    }

    /// Silent corruptions with the residue checker *enabled*: only the
    /// injections nothing caught.
    pub fn silent_with_residue(&self) -> u64 {
        self.silent_corruption
    }

    /// Silent corruptions with the residue checker *disabled*: every
    /// wrong delivered result, caught-by-residue or not.
    pub fn silent_without_residue(&self) -> u64 {
        self.detected_by_residue + self.silent_corruption
    }

    /// Fraction of injections that corrupted the delivered result.
    pub fn corruption_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.silent_without_residue() as f64 / self.total() as f64
        }
    }

    /// JSON object with the four buckets, the total, and the two
    /// silent-corruption views.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("masked", self.masked)
            .set("detected_by_er", self.detected_by_er)
            .set("detected_by_residue", self.detected_by_residue)
            .set("silent_corruption", self.silent_corruption)
            .set("total", self.total())
            .set("silent_with_residue", self.silent_with_residue())
            .set("silent_without_residue", self.silent_without_residue())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merge_and_totals() {
        let mut a = OutcomeCounts::default();
        a.record(Outcome::Masked);
        a.record(Outcome::Masked);
        a.record(Outcome::DetectedByEr);
        a.record(Outcome::DetectedByResidue);
        a.record(Outcome::SilentCorruption);
        assert_eq!(a.total(), 5);
        assert_eq!(a.silent_with_residue(), 1);
        assert_eq!(a.silent_without_residue(), 2);

        let mut b = OutcomeCounts::default();
        b.record(Outcome::SilentCorruption);
        b.merge(&a);
        assert_eq!(b.total(), 6);
        assert_eq!(b.silent_corruption, 2);
        assert!((a.corruption_rate() - 0.4).abs() < 1e-12);
        assert_eq!(OutcomeCounts::default().corruption_rate(), 0.0);
    }

    #[test]
    fn json_round_trips_the_buckets() {
        let mut c = OutcomeCounts::default();
        c.record(Outcome::DetectedByResidue);
        c.record(Outcome::Masked);
        let text = c.to_json().to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("masked").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("detected_by_residue").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(parsed.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("silent_without_residue").and_then(Json::as_u64),
            Some(1)
        );
    }
}
