//! # vlsa-resilience
//!
//! Fault campaigns for the VLSA: how often does a transient or stuck-at
//! fault in the speculative adder corrupt a delivered result, who
//! catches it, and what does the end-to-end residue check buy?
//!
//! The paper's architecture has a single line of defense — the `ER`
//! detector — and it only guards against the adder's *own* speculation
//! errors. A fault that suppresses `ER`, or corrupts logic the detector
//! does not observe, turns into silent data corruption (`VALID = 1`,
//! sum wrong). This crate quantifies that exposure:
//!
//! - [`run_campaign`] enumerates faults over the gate-level
//!   [`vlsa_core::vlsa_adder`] netlist — exhaustive single stuck-at, or
//!   Monte Carlo multi-fault transients riding the simulator's
//!   lane-as-time axis — and classifies every injection against ground
//!   truth with the [`Outcome`] taxonomy (masked / detected-by-ER /
//!   detected-by-residue / silent corruption).
//! - The golden waves are simulated once per 64-vector chunk and each
//!   fault replays through [`vlsa_sim::inject_into_waves`]; faults fan
//!   out across `std::thread` workers with bit-identical results for
//!   any worker count.
//! - [`CampaignResult::to_json`] emits the `BENCH_resilience.json`
//!   payload consumed by the bench binary and the CI smoke gate.
//!
//! The behavioral counterpart — retry, escalation, and graceful
//! degradation policies driven by the same residue check — lives in
//! `vlsa_pipeline::ResilientPipeline`.

mod campaign;
mod outcome;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignError, CampaignResult, FaultModel, FaultOutcome,
};
pub use outcome::{Outcome, OutcomeCounts};
