//! The fault-campaign runner: enumerate faults over the gate-level
//! VLSA, simulate each against a vector set, and classify every
//! injection with the [`crate::Outcome`] taxonomy.
//!
//! The runner simulates the fault-free (golden) waves once per stimulus
//! chunk, then replays each fault through
//! [`vlsa_sim::inject_into_waves`], which recomputes only the faulted
//! cones. Faults fan out across `std::thread` workers; results are
//! re-sorted by fault index, so the report is bit-identical regardless
//! of worker count.
//!
//! Two fault models:
//!
//! - [`FaultModel::ExhaustiveStuckAt`] — both stuck-at polarities on
//!   every gate output (the classic single-fault model, and the CI
//!   acceptance gate).
//! - [`FaultModel::MonteCarloTransients`] — sampled multi-fault trials
//!   of single-event upsets (the 64 simulation lanes double as the time
//!   axis). Sampling is keyed by `(seed, trial)`, not by worker, so the
//!   campaign is deterministic under any parallelism.

use crate::{Outcome, OutcomeCounts};
use rand::{Rng, SeedableRng};
use vlsa_core::{vlsa_adder, ResidueChecker, SpecError};
use vlsa_netlist::{NetId, Netlist};
use vlsa_sim::{
    inject_into_waves, lane_bit, pack_lanes, simulate, FaultSpec, SimulateError, Stimulus, StuckAt,
    Waves,
};
use vlsa_telemetry::Json;

/// How faults are enumerated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Every gate output, stuck-at-0 and stuck-at-1: one single-fault
    /// set per (net, polarity). Exhaustive and deterministic.
    ExhaustiveStuckAt,
    /// `trials` random sets of `faults_per_trial` simultaneous
    /// single-event upsets (random net, polarity, injection cycle, and
    /// duration 1–4 lanes).
    MonteCarloTransients {
        /// Number of multi-fault trials.
        trials: usize,
        /// Simultaneous upsets per trial.
        faults_per_trial: usize,
    },
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Adder width (≤ 16 for exhaustive vectors; ≤ 63 overall).
    pub nbits: usize,
    /// Speculation window.
    pub window: usize,
    /// Residue-check modulus (odd, ≥ 3). The classification always
    /// computes both the residue-enabled and residue-disabled views.
    pub modulus: u64,
    /// Sweep all `2^(2·nbits)` operand pairs instead of sampling.
    pub exhaustive_vectors: bool,
    /// Random vector count when not exhaustive (rounded up to full
    /// 64-lane chunks).
    pub vectors: usize,
    /// Seed for vector sampling and Monte Carlo fault sampling.
    pub seed: u64,
    /// Fault enumeration model.
    pub model: FaultModel,
    /// Worker threads (clamped to ≥ 1). Does not affect results.
    pub workers: usize,
}

impl CampaignConfig {
    /// The CI acceptance campaign: exhaustive stuck-at faults against
    /// the exhaustive vector sweep of an `nbits`-bit adder.
    ///
    /// Uses check base **7**, not the pipeline's default mod-3. Mod 3
    /// provably catches every *natural* speculation error (single
    /// truncated carry run ⇒ error `±2^k`), but a stuck-at fault on a
    /// carry net flips adjacent sum bits together — syndrome
    /// `±3·2^k` — which is exactly mod 3's blind spot (and `±5·2^k`
    /// from skip-one pairs is mod 5's). Base 7 is coprime to every
    /// syndrome the exhaustive 8-bit campaign produces, giving zero
    /// silent corruptions; the measured mod-3 gap is reported in
    /// `BENCH_resilience.json` alongside it.
    pub fn exhaustive(nbits: usize, window: usize) -> CampaignConfig {
        CampaignConfig {
            nbits,
            window,
            modulus: 7,
            exhaustive_vectors: true,
            vectors: 0,
            seed: 0,
            model: FaultModel::ExhaustiveStuckAt,
            workers: 4,
        }
    }
}

/// Why a campaign could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignError {
    /// The residue modulus was rejected.
    Residue(SpecError),
    /// The gate-level simulation failed.
    Simulate(SimulateError),
    /// The width/vector combination is unsupported.
    BadConfig(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Residue(e) => write!(f, "residue checker: {e}"),
            CampaignError::Simulate(e) => write!(f, "simulation: {e}"),
            CampaignError::BadConfig(msg) => write!(f, "bad campaign config: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Residue(e)
    }
}

impl From<SimulateError> for CampaignError {
    fn from(e: SimulateError) -> Self {
        CampaignError::Simulate(e)
    }
}

/// Per-fault outcome histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Index into the campaign's fault enumeration order.
    pub fault_index: usize,
    /// Outcomes of this fault across all vectors.
    pub counts: OutcomeCounts,
}

/// The campaign's aggregate result.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignResult {
    /// Adder width.
    pub nbits: usize,
    /// Speculation window.
    pub window: usize,
    /// Residue modulus used for classification.
    pub modulus: u64,
    /// Fault sets evaluated.
    pub fault_count: usize,
    /// Vectors each fault was driven with.
    pub vectors_per_fault: u64,
    /// Aggregate outcome histogram over all injections.
    pub counts: OutcomeCounts,
    /// Per-fault histograms, in enumeration order.
    pub per_fault: Vec<FaultOutcome>,
    /// `ER` detections in the fault-free run of the same vectors — the
    /// architecture's natural detection baseline.
    pub baseline_detections: u64,
}

impl CampaignResult {
    /// Faults with at least one consumer-visible effect (any non-masked
    /// outcome beyond the natural-detection baseline of that vector
    /// set would require per-vector bookkeeping; this counts faults
    /// with any wrong delivered result).
    pub fn faults_with_corruption(&self) -> usize {
        self.per_fault
            .iter()
            .filter(|f| f.counts.silent_without_residue() > 0)
            .count()
    }

    /// Faults that caused at least one *silent* corruption with the
    /// residue checker enabled.
    pub fn faults_with_silent_corruption(&self) -> usize {
        self.per_fault
            .iter()
            .filter(|f| f.counts.silent_with_residue() > 0)
            .count()
    }

    /// JSON document for `BENCH_resilience.json` (schema in
    /// `EXPERIMENTS.md`).
    pub fn to_json(&self) -> Json {
        // The noisiest faults (by wrong delivered results), capped so
        // the report stays reviewable.
        let mut ranked: Vec<&FaultOutcome> = self
            .per_fault
            .iter()
            .filter(|f| f.counts.silent_without_residue() > 0)
            .collect();
        ranked.sort_by(|x, y| {
            y.counts
                .silent_without_residue()
                .cmp(&x.counts.silent_without_residue())
                .then(x.fault_index.cmp(&y.fault_index))
        });
        let worst = Json::Arr(
            ranked
                .iter()
                .take(8)
                .map(|f| {
                    Json::obj()
                        .set("fault_index", f.fault_index as u64)
                        .set("outcomes", f.counts.to_json())
                })
                .collect(),
        );
        Json::obj()
            .set("nbits", self.nbits as u64)
            .set("window", self.window as u64)
            .set("modulus", self.modulus)
            .set("fault_count", self.fault_count as u64)
            .set("vectors_per_fault", self.vectors_per_fault)
            .set("baseline_detections", self.baseline_detections)
            .set("outcomes", self.counts.to_json())
            .set(
                "faults_with_corruption",
                self.faults_with_corruption() as u64,
            )
            .set(
                "faults_with_silent_corruption",
                self.faults_with_silent_corruption() as u64,
            )
            .set("worst_faults", worst)
    }
}

/// One 64-lane stimulus chunk: the operand pairs plus the packed buses.
struct Chunk {
    ops: Vec<(u64, u64)>,
    stimulus: Stimulus,
}

fn build_chunks(config: &CampaignConfig) -> Result<Vec<Chunk>, CampaignError> {
    let nbits = config.nbits;
    if nbits == 0 || nbits > 63 {
        return Err(CampaignError::BadConfig(format!(
            "nbits {nbits} not in 1..=63"
        )));
    }
    let mask = (1u64 << nbits) - 1;
    let pairs: Vec<(u64, u64)> = if config.exhaustive_vectors {
        if nbits > 10 {
            return Err(CampaignError::BadConfig(format!(
                "exhaustive vectors at {nbits} bits would need {} pairs",
                1u128 << (2 * nbits)
            )));
        }
        let span = 1u64 << nbits;
        (0..span)
            .flat_map(|a| (0..span).map(move |b| (a, b)))
            .collect()
    } else {
        if config.vectors == 0 {
            return Err(CampaignError::BadConfig("zero vectors".into()));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        (0..config.vectors)
            .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
            .collect()
    };
    Ok(pairs
        .chunks(64)
        .map(|ops| {
            let a_ops: Vec<Vec<u64>> = ops.iter().map(|&(a, _)| vec![a]).collect();
            let b_ops: Vec<Vec<u64>> = ops.iter().map(|&(_, b)| vec![b]).collect();
            let mut stimulus = Stimulus::new();
            stimulus.set_bus("a", &pack_lanes(&a_ops, nbits));
            stimulus.set_bus("b", &pack_lanes(&b_ops, nbits));
            Chunk {
                ops: ops.to_vec(),
                stimulus,
            }
        })
        .collect())
}

/// Enumerates the campaign's fault sets in deterministic order.
fn build_fault_sets(netlist: &Netlist, config: &CampaignConfig) -> Vec<Vec<FaultSpec>> {
    let gate_nets: Vec<NetId> = netlist
        .nodes()
        .filter(|(_, node)| node.kind().is_gate())
        .map(|(id, _)| id)
        .collect();
    match config.model {
        FaultModel::ExhaustiveStuckAt => gate_nets
            .iter()
            .flat_map(|&net| {
                [false, true]
                    .into_iter()
                    .map(move |value| vec![FaultSpec::stuck_at(StuckAt { net, value })])
            })
            .collect(),
        FaultModel::MonteCarloTransients {
            trials,
            faults_per_trial,
        } => (0..trials)
            .map(|trial| {
                // Key the sampler on (seed, trial) so worker scheduling
                // cannot perturb the draw.
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    config.seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                (0..faults_per_trial)
                    .map(|_| {
                        let net = gate_nets[rng.gen_range(0..gate_nets.len() as u64) as usize];
                        let value = rng.gen_bool(0.5);
                        let cycle = rng.gen_range(0..64) as usize;
                        let duration = rng.gen_range(1..5) as usize;
                        FaultSpec::transient(net, value, cycle, duration)
                    })
                    .collect()
            })
            .collect(),
    }
}

/// Extracts lane `lane`'s value from a packed output bus.
fn lane_value(bus: &[u64], lane: usize) -> u64 {
    bus.iter()
        .enumerate()
        .fold(0u64, |acc, (bit, word)| acc | (((word >> lane) & 1) << bit))
}

/// Classifies every lane of one faulted chunk into `counts`.
#[allow(clippy::too_many_arguments)]
fn classify_chunk(
    ops: &[(u64, u64)],
    nbits: usize,
    checker: &ResidueChecker,
    err_w: u64,
    spec_cout_w: u64,
    cout_w: u64,
    spec_bus: &[u64],
    s_bus: &[u64],
    counts: &mut OutcomeCounts,
) {
    for (lane, &(a, b)) in ops.iter().enumerate() {
        let truth = a + b; // cout rides at bit `nbits`
        let er = lane_bit(err_w, lane);
        let spec_value =
            lane_value(spec_bus, lane) | (u64::from(lane_bit(spec_cout_w, lane)) << nbits);
        let (dsum, dcout) = if er {
            (lane_value(s_bus, lane), lane_bit(cout_w, lane))
        } else {
            (lane_value(spec_bus, lane), lane_bit(spec_cout_w, lane))
        };
        let delivered = dsum | (u64::from(dcout) << nbits);
        let outcome = if delivered == truth {
            if er && spec_value != truth {
                Outcome::DetectedByEr
            } else {
                Outcome::Masked
            }
        } else if checker.accepts(a, b, dsum, dcout, nbits) {
            Outcome::SilentCorruption
        } else {
            Outcome::DetectedByResidue
        };
        counts.record(outcome);
    }
}

/// Evaluates one fault set against every chunk.
fn evaluate_fault(
    netlist: &Netlist,
    chunks: &[Chunk],
    goldens: &[Waves<'_>],
    nbits: usize,
    checker: &ResidueChecker,
    faults: &[FaultSpec],
) -> Result<OutcomeCounts, SimulateError> {
    let mut counts = OutcomeCounts::default();
    for (chunk, golden) in chunks.iter().zip(goldens) {
        let faulty = inject_into_waves(netlist, golden, faults);
        classify_chunk(
            &chunk.ops,
            nbits,
            checker,
            faulty.output("err")?,
            faulty.output("spec_cout")?,
            faulty.output("cout")?,
            &faulty.output_bus("spec", nbits)?,
            &faulty.output_bus("s", nbits)?,
            &mut counts,
        );
    }
    Ok(counts)
}

/// Runs the campaign described by `config`.
///
/// When telemetry is enabled, records `vlsa.sim.faults_injected` /
/// `faults_propagated` / `faults_masked` for the campaign.
///
/// # Errors
///
/// Returns [`CampaignError`] for an invalid modulus, an unsupported
/// width/vector combination, or a simulation failure.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, CampaignError> {
    let checker = ResidueChecker::new(config.modulus)?;
    let netlist = vlsa_adder(config.nbits, config.window);
    let chunks = build_chunks(config)?;
    let goldens: Vec<Waves<'_>> = chunks
        .iter()
        .map(|c| simulate(&netlist, &c.stimulus))
        .collect::<Result<_, _>>()?;

    // Natural-detection baseline: ER fires in the fault-free run.
    let mut baseline_detections = 0u64;
    for (chunk, golden) in chunks.iter().zip(&goldens) {
        let err_w = golden.output("err")?;
        baseline_detections += (0..chunk.ops.len())
            .filter(|&lane| lane_bit(err_w, lane))
            .count() as u64;
    }

    let fault_sets = build_fault_sets(&netlist, config);
    let workers = config.workers.max(1).min(fault_sets.len().max(1));
    let mut per_fault: Vec<FaultOutcome> = Vec::with_capacity(fault_sets.len());
    if workers <= 1 || fault_sets.len() <= 1 {
        for (fault_index, faults) in fault_sets.iter().enumerate() {
            let counts =
                evaluate_fault(&netlist, &chunks, &goldens, config.nbits, &checker, faults)?;
            per_fault.push(FaultOutcome {
                fault_index,
                counts,
            });
        }
    } else {
        let indexed: Vec<(usize, &[FaultSpec])> = fault_sets
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.as_slice()))
            .collect();
        let chunk_size = indexed.len().div_ceil(workers);
        let results: Vec<Result<Vec<FaultOutcome>, SimulateError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = indexed
                .chunks(chunk_size)
                .map(|slice| {
                    let netlist = &netlist;
                    let chunks = &chunks;
                    let goldens = &goldens;
                    let checker = &checker;
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|&(fault_index, faults)| {
                                evaluate_fault(
                                    netlist,
                                    chunks,
                                    goldens,
                                    config.nbits,
                                    checker,
                                    faults,
                                )
                                .map(|counts| FaultOutcome {
                                    fault_index,
                                    counts,
                                })
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        for batch in results {
            per_fault.extend(batch?);
        }
        // Workers return in chunk order, but keep this explicit: the
        // report must be identical for any worker count.
        per_fault.sort_by_key(|f| f.fault_index);
    }

    let mut counts = OutcomeCounts::default();
    for f in &per_fault {
        counts.merge(&f.counts);
    }
    let result = CampaignResult {
        nbits: config.nbits,
        window: config.window,
        modulus: config.modulus,
        fault_count: fault_sets.len(),
        vectors_per_fault: chunks.iter().map(|c| c.ops.len() as u64).sum(),
        counts,
        per_fault,
        baseline_detections,
    };
    if vlsa_telemetry::is_enabled() {
        let recorder = vlsa_telemetry::recorder();
        recorder
            .counter(vlsa_telemetry::names::sim::FAULTS_INJECTED)
            .add(result.fault_count as u64);
        let propagated = result
            .per_fault
            .iter()
            .filter(|f| {
                f.counts.silent_without_residue() > 0
                    || f.counts.detected_by_er > result.baseline_detections
            })
            .count() as u64;
        recorder
            .counter(vlsa_telemetry::names::sim::FAULTS_PROPAGATED)
            .add(propagated);
        recorder
            .counter(vlsa_telemetry::names::sim::FAULTS_MASKED)
            .add(result.fault_count as u64 - propagated);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_exhaustive() -> CampaignConfig {
        // 4-bit, window 2: window ≥ (nbits − 1) / 2, so every natural
        // speculation error is a single truncated run and mod 3 catches
        // it; small enough that the exhaustive sweep stays fast.
        CampaignConfig {
            workers: 2,
            ..CampaignConfig::exhaustive(4, 2)
        }
    }

    #[test]
    fn exhaustive_campaign_classifies_every_injection() {
        let result = run_campaign(&small_exhaustive()).expect("campaign runs");
        let nl = vlsa_adder(4, 2);
        assert_eq!(result.fault_count, 2 * nl.gate_count());
        assert_eq!(result.vectors_per_fault, 256);
        assert_eq!(
            result.counts.total(),
            result.fault_count as u64 * result.vectors_per_fault
        );
        // Stuck-at faults on the datapath do corrupt results — which is
        // what a residue-disabled system would silently consume...
        assert!(result.counts.silent_without_residue() > 0);
        assert!(result.faults_with_corruption() > 0);
        // ...but the base-7 check catches every one of them.
        assert_eq!(result.counts.silent_with_residue(), 0);
        assert_eq!(result.faults_with_silent_corruption(), 0);
    }

    #[test]
    fn residue_never_false_positives() {
        // Against the *fault-free* circuit the checker must accept
        // every delivered result: inject a fault on a net and its
        // opposite polarity... simplest: campaign with zero-effect
        // faults is not constructible, so check the golden baseline
        // directly instead.
        let config = small_exhaustive();
        let netlist = vlsa_adder(config.nbits, config.window);
        let checker = ResidueChecker::mod3();
        let chunks = build_chunks(&config).expect("chunks");
        for chunk in &chunks {
            let waves = simulate(&netlist, &chunk.stimulus).expect("simulate");
            let err_w = waves.output("err").expect("err");
            let cout_w = waves.output("cout").expect("cout");
            let spec_cout_w = waves.output("spec_cout").expect("spec_cout");
            let spec_bus = waves.output_bus("spec", config.nbits).expect("spec");
            let s_bus = waves.output_bus("s", config.nbits).expect("s");
            let mut counts = OutcomeCounts::default();
            classify_chunk(
                &chunk.ops,
                config.nbits,
                &checker,
                err_w,
                spec_cout_w,
                cout_w,
                &spec_bus,
                &s_bus,
                &mut counts,
            );
            // Fault-free: delivered results are always correct, so the
            // wrong buckets stay empty — zero false positives.
            assert_eq!(counts.silent_without_residue(), 0);
        }
    }

    #[test]
    fn baseline_detections_match_the_software_model() {
        let config = small_exhaustive();
        let result = run_campaign(&config).expect("campaign runs");
        let mut expected = 0u64;
        for a in 0u64..16 {
            for b in 0u64..16 {
                let r = vlsa_core::SpeculativeAdder::new(4, 2)
                    .expect("valid")
                    .add_u64(a, b);
                expected += u64::from(r.error_detected);
            }
        }
        assert_eq!(result.baseline_detections, expected);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let serial = run_campaign(&CampaignConfig {
            workers: 1,
            ..small_exhaustive()
        })
        .expect("serial");
        let parallel = run_campaign(&CampaignConfig {
            workers: 8,
            ..small_exhaustive()
        })
        .expect("parallel");
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
    }

    #[test]
    fn monte_carlo_is_deterministic_for_a_seed() {
        let config = CampaignConfig {
            nbits: 8,
            window: 4,
            modulus: 3,
            exhaustive_vectors: false,
            vectors: 128,
            seed: 2024,
            model: FaultModel::MonteCarloTransients {
                trials: 16,
                faults_per_trial: 2,
            },
            workers: 1,
        };
        let one = run_campaign(&config).expect("mc");
        let two = run_campaign(&config).expect("mc again");
        let wide = run_campaign(&CampaignConfig {
            workers: 5,
            ..config
        })
        .expect("mc parallel");
        assert_eq!(one, two);
        assert_eq!(one, wide);
        assert_eq!(one.fault_count, 16);
        assert_eq!(one.vectors_per_fault, 128);
        // A different seed draws different faults (overwhelmingly).
        let other = run_campaign(&CampaignConfig {
            seed: 2025,
            ..config
        })
        .expect("mc reseeded");
        assert_ne!(one.counts, other.counts);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut config = small_exhaustive();
        config.modulus = 4;
        assert!(matches!(
            run_campaign(&config),
            Err(CampaignError::Residue(_))
        ));
        let mut config = small_exhaustive();
        config.nbits = 16; // exhaustive vectors at 16 bits: 2^32 pairs
        assert!(matches!(
            run_campaign(&config),
            Err(CampaignError::BadConfig(_))
        ));
        let config = CampaignConfig {
            exhaustive_vectors: false,
            vectors: 0,
            ..small_exhaustive()
        };
        assert!(matches!(
            run_campaign(&config),
            Err(CampaignError::BadConfig(_))
        ));
        let display = CampaignError::BadConfig("x".into()).to_string();
        assert!(display.contains("bad campaign config"));
    }

    #[test]
    fn json_report_has_the_schema_fields() {
        let result = run_campaign(&small_exhaustive()).expect("campaign");
        let parsed = Json::parse(&result.to_json().to_string()).expect("valid JSON");
        for field in [
            "nbits",
            "window",
            "modulus",
            "fault_count",
            "vectors_per_fault",
            "baseline_detections",
            "outcomes",
            "faults_with_corruption",
            "faults_with_silent_corruption",
            "worst_faults",
        ] {
            assert!(parsed.get(field).is_some(), "missing `{field}`");
        }
        let outcomes = parsed.get("outcomes").expect("outcomes");
        assert!(outcomes.get("silent_with_residue").is_some());
        assert!(outcomes.get("silent_without_residue").is_some());
    }
}
