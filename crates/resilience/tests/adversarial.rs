//! Adversarial SDC tests: a stuck-at-0 on the netlist `ER` output is
//! the worst detector fault — every true speculation error is delivered
//! with `VALID = 1` — and the mod-3 residue check must flag *exactly*
//! those deliveries.
//!
//! Why exactly: at the workspace design points the window dominates the
//! width (`window ≥ (nbits − 1) / 2`), so a natural speculation error is
//! a single truncated carry run with error value `2^(start + window)` —
//! a power of two, never `≡ 0 (mod 3)`. Hence zero false negatives on
//! the suppressed-detector sweep. False positives are structurally zero:
//! the checker verifies an exact congruence every correct sum satisfies.

use vlsa_core::{vlsa_adder, windowed_add_u64, ResidueChecker, SpeculativeAdder};
use vlsa_sim::{inject_into_waves, lane_bit, pack_lanes, simulate, FaultSpec, Stimulus, StuckAt};

fn lane_value(bus: &[u64], lane: usize) -> u64 {
    bus.iter()
        .enumerate()
        .fold(0u64, |acc, (bit, word)| acc | (((word >> lane) & 1) << bit))
}

/// Gate-level, exhaustive: stuck-at-0 on the `err` output of the 8-bit
/// window-4 VLSA netlist, all 65 536 operand pairs.
#[test]
fn stuck_er_low_delivers_wrong_sums_and_residue_flags_them_all() {
    let nbits = 8usize;
    let netlist = vlsa_adder(nbits, 4);
    let err_net = netlist
        .primary_outputs()
        .iter()
        .find(|(name, _)| name == "err")
        .map(|&(_, net)| net)
        .expect("err output");
    let fault = [FaultSpec::stuck_at(StuckAt::zero(err_net))];
    let checker = ResidueChecker::mod3();

    let pairs: Vec<(u64, u64)> = (0..256u64)
        .flat_map(|a| (0..256u64).map(move |b| (a, b)))
        .collect();
    let mut wrong_with_valid = 0u64;
    let mut flagged = 0u64;
    for ops in pairs.chunks(64) {
        let a_ops: Vec<Vec<u64>> = ops.iter().map(|&(a, _)| vec![a]).collect();
        let b_ops: Vec<Vec<u64>> = ops.iter().map(|&(_, b)| vec![b]).collect();
        let mut stim = Stimulus::new();
        stim.set_bus("a", &pack_lanes(&a_ops, nbits));
        stim.set_bus("b", &pack_lanes(&b_ops, nbits));
        let golden = simulate(&netlist, &stim).expect("simulate");
        let faulty = inject_into_waves(&netlist, &golden, &fault);
        let err_w = faulty.output("err").expect("err");
        let spec_cout_w = faulty.output("spec_cout").expect("spec_cout");
        let spec_bus = faulty.output_bus("spec", nbits).expect("spec");
        for (lane, &(a, b)) in ops.iter().enumerate() {
            // ER is stuck low: the consumer always takes the
            // speculative bus as VALID.
            assert!(!lane_bit(err_w, lane), "ER must be suppressed");
            let sum = lane_value(&spec_bus, lane);
            let cout = lane_bit(spec_cout_w, lane);
            let delivered = sum | (u64::from(cout) << nbits);
            let accepted = checker.accepts(a, b, sum, cout, nbits);
            if delivered != a + b {
                wrong_with_valid += 1;
                // Zero false negatives: every wrong delivery is flagged.
                assert!(
                    !accepted,
                    "mod-3 missed a wrong sum: a={a} b={b} delivered={delivered}"
                );
                flagged += 1;
            } else {
                // Zero false positives: correct sums always pass.
                assert!(accepted, "mod-3 flagged a correct sum: a={a} b={b}");
            }
        }
    }
    // The fault is not hypothetical: the sweep contains real SDCs.
    assert!(wrong_with_valid > 0, "sweep produced no wrong deliveries");
    assert_eq!(flagged, wrong_with_valid);
    // Sanity: the wrong-delivery count matches the software model's
    // actual speculation-error count. (The ER detector is conservative —
    // it fires more often than the sum is actually wrong — so this is
    // strictly fewer than the detection count.)
    let expected = (0..256u64)
        .flat_map(|a| (0..256u64).map(move |b| (a, b)))
        .filter(|&(a, b)| {
            let (spec, cout) = windowed_add_u64(a, b, nbits, 4);
            (spec | (u64::from(cout) << nbits)) != a + b
        })
        .count() as u64;
    assert_eq!(wrong_with_valid, expected);
}

/// Software model, 16-bit window-8 (the `window ≥ (nbits − 1) / 2`
/// design point): sweep every `a` with carry-run-shaped `b` patterns —
/// a stream heavy in true speculation errors — and check the residue
/// flags every suppressed-detector delivery, with no false positives.
#[test]
fn sixteen_bit_suppressed_detector_sweep_has_no_false_negatives() {
    let nbits = 16usize;
    let window = 8usize;
    let adder = SpeculativeAdder::new(nbits, window).expect("valid");
    let checker = ResidueChecker::mod3();
    let mut wrong = 0u64;
    for a in 0u64..=0xFFFF {
        // Patterns that exercise long carry chains from varied starts.
        for b in [
            !a & 0xFFFF,
            (!a).wrapping_add(1) & 0xFFFF,
            1,
            0x00FF,
            0xFF00,
        ] {
            let r = adder.add_u64(a, b);
            let (spec, spec_cout) = windowed_add_u64(a, b, nbits, window);
            assert_eq!(spec, r.speculative);
            let correct = spec == r.exact && u64::from(spec_cout) == (a + b) >> nbits;
            let accepted = checker.accepts(a, b, spec, spec_cout, nbits);
            if correct {
                assert!(accepted, "false positive at a={a} b={b}");
            } else {
                // With ER suppressed this spec result would be consumed:
                // the residue check must reject it.
                wrong += 1;
                assert!(!accepted, "false negative at a={a} b={b} spec={spec}");
            }
        }
    }
    assert!(wrong > 10_000, "sweep too tame: only {wrong} wrong results");
}

/// The residue congruence holds for every correct result, so the
/// false-positive rate is exactly zero by construction — spot-verified
/// over an exhaustive 8-bit exact-adder sweep for every supported
/// modulus.
#[test]
fn false_positive_rate_is_structurally_zero() {
    for modulus in [3u64, 5, 7, 15] {
        let checker = ResidueChecker::new(modulus).expect("valid modulus");
        for a in 0u64..256 {
            for b in 0u64..256 {
                let full = a + b;
                assert!(checker.accepts(a, b, full & 0xFF, full >> 8 == 1, 8));
            }
        }
    }
}
