//! Speculative multiplication — the DATE 2008 paper's §6 future-work
//! item ("fast almost correct design for other arithmetic components
//! such as multipliers"), built on the workspace's ACA.
//!
//! A Wallace-tree multiplier is a carry-save reduction (depth
//! `O(log n)`) followed by one `2n`-bit carry-propagate addition — which
//! dominates the critical path and is exactly where the Almost Correct
//! Adder slots in:
//!
//! - [`wallace_multiplier`]: gate-level generator with a pluggable
//!   [`FinalAdder`] (exact prefix or speculative ACA),
//! - [`wallace_csa`]: the reduction front end alone, for analyzing the
//!   statistics the final adder actually sees,
//! - [`SpeculativeMultiplier`]: a bit-exact word-level model with error
//!   accounting (the final adder's operands are *not* uniform, so the
//!   Table 1 sizing must be re-validated empirically — see the
//!   `multiplier` experiment binary),
//! - [`BitMatrix`]: the weighted-bit compressor shared by both.
//!
//! # Examples
//!
//! ```
//! use vlsa_multiplier::SpeculativeMultiplier;
//!
//! let m = SpeculativeMultiplier::new(16, 12)?;
//! let r = m.mul(1234, 5678);
//! assert_eq!(r.exact, 1234 * 5678);
//! if !r.error_detected {
//!     assert_eq!(r.speculative, r.exact);
//! }
//! # Ok::<(), vlsa_core::SpecError>(())
//! ```

mod csa;
mod generate;
mod signed;
mod software;

pub use csa::BitMatrix;
pub use generate::{partial_products, wallace_csa, wallace_multiplier, FinalAdder};
pub use signed::{baugh_wooley_matrix, signed_multiplier};
pub use software::SpeculativeMultiplier;
