//! Word-level model of speculative multiplication and its error
//! statistics.
//!
//! The interesting question the paper's §6 leaves open: the final adder
//! of a multiplier does **not** see uniform operands — the carry-save
//! addends are correlated — so the Table 1 window sizing (derived for
//! uniform bits) must be re-validated. [`SpeculativeMultiplier`]
//! mirrors the gate-level Wallace/ACA datapath bit-exactly so that
//! question can be answered at scale in software.

use crate::FinalAdder;
use std::fmt;
use vlsa_core::{windowed_sum_wide, SpecError, Speculation};
use vlsa_runstats::longest_one_run_words;

/// A software Wallace-tree multiplier with a speculative final adder,
/// bit-exact against [`crate::wallace_multiplier`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpeculativeMultiplier {
    nbits: usize,
    window: usize,
}

impl SpeculativeMultiplier {
    /// Creates an `nbits × nbits` multiplier whose final ACA uses
    /// `window`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidWidth`] for zero width (or widths
    /// beyond 32, which would overflow the software datapath) and
    /// [`SpecError::InvalidWindow`] for a zero or oversized window.
    pub fn new(nbits: usize, window: usize) -> Result<Self, SpecError> {
        if nbits == 0 || nbits > 32 {
            return Err(SpecError::InvalidWidth { nbits });
        }
        if window == 0 || window > 2 * nbits {
            return Err(SpecError::InvalidWindow {
                window,
                nbits: 2 * nbits,
            });
        }
        Ok(SpeculativeMultiplier { nbits, window })
    }

    /// Operand width.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Final-adder carry window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The equivalent gate-level configuration.
    pub fn final_adder(&self) -> FinalAdder {
        FinalAdder::Speculative {
            window: self.window,
        }
    }

    /// The carry-save addends the final adder sees, produced by the
    /// same reduction schedule as the gate-level Wallace tree.
    pub fn carry_save_addends(&self, a: u64, b: u64) -> (u64, u64) {
        let mask = (1u64 << self.nbits) - 1;
        let (a, b) = (a & mask, b & mask);
        // columns[j] = vector of bits of weight j (as booleans).
        let width = 2 * self.nbits;
        let mut columns: Vec<Vec<bool>> = vec![Vec::new(); width];
        for i in 0..self.nbits {
            for j in 0..self.nbits {
                columns[i + j].push((a >> i) & 1 == 1 && (b >> j) & 1 == 1);
            }
        }
        // Mirror BitMatrix::reduce_to_two: full passes of 3:2 / 2:2
        // compression until height <= 2.
        while columns.iter().map(Vec::len).max().unwrap_or(0) > 2 {
            let mut next: Vec<Vec<bool>> = vec![Vec::new(); width + 1];
            for (j, col) in columns.iter().enumerate() {
                for chunk in col.chunks(3) {
                    match *chunk {
                        [x, y, z] => {
                            next[j].push(x ^ y ^ z);
                            // Majority(x, y, z), factored to appease clippy.
                            next[j + 1].push((x && (y || z)) || (y && z));
                        }
                        [x, y] => {
                            next[j].push(x ^ y);
                            next[j + 1].push(x && y);
                        }
                        [x] => next[j].push(x),
                        _ => unreachable!(),
                    }
                }
            }
            next.truncate(width);
            columns = next;
        }
        let mut x = 0u64;
        let mut y = 0u64;
        for (j, col) in columns.iter().enumerate() {
            if col.first().copied().unwrap_or(false) {
                x |= 1 << j;
            }
            if col.get(1).copied().unwrap_or(false) {
                y |= 1 << j;
            }
        }
        (x, y)
    }

    /// Multiplies speculatively, reporting the exact product and the
    /// final adder's detection flag.
    pub fn mul(&self, a: u64, b: u64) -> Speculation<u128> {
        let mask = (1u64 << self.nbits) - 1;
        let (a, b) = (a & mask, b & mask);
        let (x, y) = self.carry_save_addends(a, b);
        let width = 2 * self.nbits;
        let spec = windowed_sum_wide(&[x], &[y], width, self.window)[0] as u128;
        let exact = a as u128 * b as u128;
        let p = x ^ y;
        let error_detected = longest_one_run_words(&[p], width) as usize >= self.window;
        Speculation {
            speculative: spec,
            exact,
            error_detected,
        }
    }
}

impl fmt::Display for SpeculativeMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mul{}w{}", self.nbits, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn carry_save_addends_sum_to_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(229);
        let m = SpeculativeMultiplier::new(16, 32).expect("valid");
        for _ in 0..500 {
            let a = rng.gen::<u64>() & 0xFFFF;
            let b = rng.gen::<u64>() & 0xFFFF;
            let (x, y) = m.carry_save_addends(a, b);
            assert_eq!(x as u128 + y as u128, a as u128 * b as u128, "{a}*{b}");
        }
    }

    #[test]
    fn full_window_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(233);
        let m = SpeculativeMultiplier::new(12, 24).expect("valid");
        for _ in 0..200 {
            let a = rng.gen::<u64>() & 0xFFF;
            let b = rng.gen::<u64>() & 0xFFF;
            let r = m.mul(a, b);
            assert!(r.is_correct());
        }
    }

    #[test]
    fn detection_dominates_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(239);
        let m = SpeculativeMultiplier::new(16, 6).expect("valid");
        let mut wrong = 0;
        for _ in 0..20_000 {
            let r = m.mul(rng.gen(), rng.gen());
            if !r.is_correct() {
                wrong += 1;
                assert!(r.error_detected);
            }
        }
        assert!(wrong > 0, "window 6 over 32-bit sums should err sometimes");
    }

    #[test]
    fn detection_rate_tracks_uniform_model() {
        // The CSA addends are correlated, so agreement with the
        // uniform-operand prediction is an empirical finding (it holds
        // within ~15% at design windows; see the `multiplier`
        // experiment binary), not a theorem — assert the loose bound.
        let mut rng = rand::rngs::StdRng::seed_from_u64(241);
        let m = SpeculativeMultiplier::new(16, 10).expect("valid");
        let trials = 50_000;
        let detected = (0..trials)
            .filter(|_| m.mul(rng.gen(), rng.gen()).error_detected)
            .count();
        let measured = detected as f64 / trials as f64;
        let uniform = vlsa_runstats::prob_longest_run_gt(32, 9);
        assert!(measured > 0.0);
        assert!(
            measured < uniform * 10.0 && measured > uniform / 10.0,
            "measured {measured} vs uniform {uniform}"
        );
    }

    #[test]
    fn constructor_validation() {
        assert!(SpeculativeMultiplier::new(0, 4).is_err());
        assert!(SpeculativeMultiplier::new(33, 4).is_err());
        assert!(SpeculativeMultiplier::new(16, 0).is_err());
        assert!(SpeculativeMultiplier::new(16, 33).is_err());
        let m = SpeculativeMultiplier::new(16, 8).expect("valid");
        assert_eq!(m.nbits(), 16);
        assert_eq!(m.window(), 8);
        assert_eq!(m.to_string(), "mul16w8");
        assert_eq!(m.final_adder(), FinalAdder::Speculative { window: 8 });
    }
}
