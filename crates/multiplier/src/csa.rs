//! Carry-save reduction: compressing a matrix of weighted bits down to
//! two addends with full/half adders (the Wallace-tree core).

use vlsa_netlist::{Bus, NetId, Netlist};

/// A bit matrix organized by weight: `columns[j]` holds all nets of
/// weight `2^j` that still need summing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitMatrix {
    columns: Vec<Vec<NetId>>,
}

impl BitMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        BitMatrix::default()
    }

    /// Adds one bit of weight `2^column`.
    pub fn push(&mut self, column: usize, net: NetId) {
        if self.columns.len() <= column {
            self.columns.resize(column + 1, Vec::new());
        }
        self.columns[column].push(net);
    }

    /// Number of weight columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Height of the tallest column.
    pub fn max_height(&self) -> usize {
        self.columns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The nets in one column.
    ///
    /// # Panics
    ///
    /// Panics if `column >= self.width()`.
    pub fn column(&self, column: usize) -> &[NetId] {
        &self.columns[column]
    }

    /// Reduces the matrix with 3:2 (full-adder) and 2:2 (half-adder)
    /// compressors until every column holds at most two bits, then
    /// returns the two addends as equal-width buses (zero-padded).
    ///
    /// Each reduction pass rewrites every column in parallel, so the
    /// tree depth is `O(log height)` full-adder stages — the classic
    /// Wallace shape.
    pub fn reduce_to_two(mut self, nl: &mut Netlist) -> (Bus, Bus) {
        while self.max_height() > 2 {
            let mut next = BitMatrix::new();
            // Make the final width stable even if a top column empties.
            if self.width() > 0 {
                next.columns.resize(self.width(), Vec::new());
            }
            for (j, col) in self.columns.iter().enumerate() {
                let mut chunks = col.chunks(3);
                for chunk in &mut chunks {
                    match *chunk {
                        [x, y, z] => {
                            // Full adder: sum stays, carry moves up.
                            let xy = nl.xor2(x, y);
                            let sum = nl.xor2(xy, z);
                            let carry = nl.maj3(x, y, z);
                            next.push(j, sum);
                            next.push(j + 1, carry);
                        }
                        [x, y] => {
                            // Half adder.
                            let sum = nl.xor2(x, y);
                            let carry = nl.and2(x, y);
                            next.push(j, sum);
                            next.push(j + 1, carry);
                        }
                        [x] => next.push(j, x),
                        _ => unreachable!("chunks(3)"),
                    }
                }
            }
            self = next;
        }
        // Assemble the two addends, padding with constant zeros.
        let width = self.width().max(1);
        let zero = nl.constant(false);
        let mut x = Bus::new();
        let mut y = Bus::new();
        for j in 0..width {
            let col = self.columns.get(j).map(Vec::as_slice).unwrap_or(&[]);
            x.push(col.first().copied().unwrap_or(zero));
            y.push(col.get(1).copied().unwrap_or(zero));
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_sim::{simulate, Stimulus};

    /// Sums lane values of a bus under a simulation, per lane 0 only.
    fn bus_value(waves: &vlsa_sim::Waves<'_>, bus: &Bus) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0u64, |acc, (i, net)| acc | ((waves.net(net) & 1) << i))
    }

    #[test]
    fn reduces_unary_counter() {
        // 7 bits of weight 1 must sum to the popcount.
        for popcount in 0..=7u32 {
            let mut nl = Netlist::new("count");
            let mut m = BitMatrix::new();
            let mut stim = Stimulus::new();
            for i in 0..7 {
                let input = nl.input(format!("i{i}"));
                m.push(0, input);
                stim.set(format!("i{i}"), if i < popcount { 1 } else { 0 });
            }
            let (x, y) = m.reduce_to_two(&mut nl);
            assert_eq!(x.width(), y.width());
            let waves = simulate(&nl, &stim).expect("simulate");
            let total = bus_value(&waves, &x) + bus_value(&waves, &y);
            assert_eq!(total, popcount as u64, "popcount {popcount}");
        }
    }

    #[test]
    fn depth_is_logarithmic_in_height() {
        // 32 bits in one column: ~log_{3/2}(32/2) ≈ 7 FA stages, each 2
        // XOR deep.
        let mut nl = Netlist::new("deep");
        let mut m = BitMatrix::new();
        for i in 0..32 {
            let input = nl.input(format!("i{i}"));
            m.push(0, input);
        }
        let (x, y) = m.reduce_to_two(&mut nl);
        let out = nl.xor2(x[0], y[0]);
        nl.output("o", out);
        assert!(nl.depth() <= 18, "depth {}", nl.depth());
    }

    #[test]
    fn bookkeeping() {
        let mut nl = Netlist::new("bk");
        let a = nl.input("a");
        let mut m = BitMatrix::new();
        assert_eq!(m.max_height(), 0);
        m.push(3, a);
        assert_eq!(m.width(), 4);
        assert_eq!(m.max_height(), 1);
        assert_eq!(m.column(3), &[a]);
        assert!(m.column(0).is_empty());
    }

    #[test]
    fn empty_matrix_reduces_to_zero_buses() {
        let mut nl = Netlist::new("e");
        let (x, y) = BitMatrix::new().reduce_to_two(&mut nl);
        assert_eq!(x.width(), 1);
        assert_eq!(y.width(), 1);
    }
}
