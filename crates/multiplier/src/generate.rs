//! Multiplier netlist generators: partial products, Wallace reduction,
//! and a pluggable final adder — exact or speculative.

use crate::BitMatrix;
use std::fmt;
use vlsa_adders::{build_prefix_gp, pg_signals, sum_from_carries, PrefixArch};
use vlsa_core::aca_into;
use vlsa_netlist::{Bus, NetId, Netlist};

/// The carry-propagate adder closing the multiplier's carry-save form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FinalAdder {
    /// An exact parallel-prefix adder.
    Exact(PrefixArch),
    /// An Almost Correct Adder with the given carry window — the
    /// paper's §6 "almost correct multiplier".
    Speculative {
        /// Carry window of the final ACA.
        window: usize,
    },
}

impl fmt::Display for FinalAdder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinalAdder::Exact(arch) => write!(f, "exact/{arch}"),
            FinalAdder::Speculative { window } => write!(f, "aca/w{window}"),
        }
    }
}

/// Emits the AND-matrix of partial products for `a × b` into a
/// weight-indexed bit matrix.
pub fn partial_products(nl: &mut Netlist, a: &Bus, b: &Bus) -> BitMatrix {
    let mut m = BitMatrix::new();
    for i in 0..a.width() {
        for j in 0..b.width() {
            let pp = nl.and2(a[i], b[j]);
            m.push(i + j, pp);
        }
    }
    m
}

/// Adds two equal-width buses exactly with a prefix adder, in place.
fn exact_sum_into(nl: &mut Netlist, x: &Bus, y: &Bus, arch: PrefixArch) -> Bus {
    let pg = pg_signals(nl, x, y);
    let n = x.width();
    let schedule = arch.schedule(n);
    let (g, _) = build_prefix_gp(nl, &pg.g, &pg.p, &schedule);
    let zero = nl.constant(false);
    let carries: Vec<NetId> = std::iter::once(zero)
        .chain(g.iter().copied().take(n - 1))
        .collect();
    sum_from_carries(nl, &pg.p, &carries)
}

/// Generates an `nbits × nbits` Wallace-tree multiplier with the given
/// final adder. Interface: inputs `a[0..n]`, `b[0..n]`, output
/// `p[0..2n]`.
///
/// With [`FinalAdder::Speculative`] the product is wrong exactly when
/// the final carry-save addends contain a propagate run of `window` or
/// more — the multiplier analogue of the paper's ACA.
///
/// # Panics
///
/// Panics if `nbits` is zero, or a speculative window is zero.
///
/// # Examples
///
/// ```
/// use vlsa_adders::PrefixArch;
/// use vlsa_multiplier::{wallace_multiplier, FinalAdder};
///
/// let exact = wallace_multiplier(16, FinalAdder::Exact(PrefixArch::KoggeStone));
/// let spec = wallace_multiplier(16, FinalAdder::Speculative { window: 8 });
/// assert!(spec.depth() <= exact.depth());
/// ```
pub fn wallace_multiplier(nbits: usize, final_adder: FinalAdder) -> Netlist {
    assert!(nbits > 0, "multiplier width must be positive");
    let name = match final_adder {
        FinalAdder::Exact(arch) => format!("mul{nbits}_{}", arch.name().replace('-', "_")),
        FinalAdder::Speculative { window } => format!("mul{nbits}_aca_w{window}"),
    };
    let mut nl = Netlist::new(name);
    let a = nl.input_bus("a", nbits);
    let b = nl.input_bus("b", nbits);
    let matrix = partial_products(&mut nl, &a, &b);
    let (mut x, mut y) = matrix.reduce_to_two(&mut nl);
    // Pad to the full product width.
    let zero = nl.constant(false);
    while x.width() < 2 * nbits {
        x.push(zero);
        y.push(zero);
    }
    let product = match final_adder {
        FinalAdder::Exact(arch) => exact_sum_into(&mut nl, &x, &y, arch),
        FinalAdder::Speculative { window } => aca_into(&mut nl, &x, &y, window).0,
    };
    nl.output_bus("p", &product);
    nl
}

/// Generates the carry-save front half only: inputs `a`, `b`, outputs
/// the two final addends `x[0..2n]`, `y[0..2n]`. Used to analyze the
/// statistics the speculative final adder actually sees.
pub fn wallace_csa(nbits: usize) -> Netlist {
    assert!(nbits > 0, "multiplier width must be positive");
    let mut nl = Netlist::new(format!("mulcsa{nbits}"));
    let a = nl.input_bus("a", nbits);
    let b = nl.input_bus("b", nbits);
    let matrix = partial_products(&mut nl, &a, &b);
    let (mut x, mut y) = matrix.reduce_to_two(&mut nl);
    let zero = nl.constant(false);
    while x.width() < 2 * nbits {
        x.push(zero);
        y.push(zero);
    }
    nl.output_bus("x", &x);
    nl.output_bus("y", &y);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use vlsa_sim::{pack_lanes, simulate, unpack_lanes, Stimulus};

    /// Gate-level products for up to 64 operand pairs.
    pub(crate) fn run_multiplier(
        nl: &Netlist,
        nbits: usize,
        pairs: &[(u64, u64)],
    ) -> Vec<Vec<u64>> {
        let a_ops: Vec<Vec<u64>> = pairs.iter().map(|&(a, _)| vec![a]).collect();
        let b_ops: Vec<Vec<u64>> = pairs.iter().map(|&(_, b)| vec![b]).collect();
        let mut stim = Stimulus::new();
        stim.set_bus("a", &pack_lanes(&a_ops, nbits));
        stim.set_bus("b", &pack_lanes(&b_ops, nbits));
        let waves = simulate(nl, &stim).expect("simulate");
        let p = waves.output_bus("p", 2 * nbits).expect("product bus");
        unpack_lanes(&p, 2 * nbits, pairs.len())
    }

    fn as_u128(w: &[u64]) -> u128 {
        w.iter()
            .enumerate()
            .fold(0u128, |acc, (i, &word)| acc | ((word as u128) << (64 * i)))
    }

    #[test]
    fn exact_multiplier_exhaustive_4x4() {
        let nl = wallace_multiplier(4, FinalAdder::Exact(PrefixArch::Sklansky));
        let mut pairs = Vec::new();
        for a in 0u64..16 {
            for b in 0u64..16 {
                pairs.push((a, b));
            }
        }
        for chunk in pairs.chunks(64) {
            let products = run_multiplier(&nl, 4, chunk);
            for (&(a, b), p) in chunk.iter().zip(&products) {
                assert_eq!(as_u128(p), (a * b) as u128, "{a}*{b}");
            }
        }
    }

    #[test]
    fn exact_multiplier_random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(211);
        for nbits in [8usize, 16, 32] {
            let nl = wallace_multiplier(nbits, FinalAdder::Exact(PrefixArch::BrentKung));
            let mask = (1u64 << nbits) - 1;
            let pairs: Vec<(u64, u64)> = (0..64)
                .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
                .collect();
            let products = run_multiplier(&nl, nbits, &pairs);
            for (&(a, b), p) in pairs.iter().zip(&products) {
                assert_eq!(as_u128(p), a as u128 * b as u128, "{a}*{b} n={nbits}");
            }
        }
    }

    #[test]
    fn speculative_with_full_window_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(223);
        let nbits = 12;
        let nl = wallace_multiplier(nbits, FinalAdder::Speculative { window: 2 * nbits });
        let mask = (1u64 << nbits) - 1;
        let pairs: Vec<(u64, u64)> = (0..64)
            .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
            .collect();
        let products = run_multiplier(&nl, nbits, &pairs);
        for (&(a, b), p) in pairs.iter().zip(&products) {
            assert_eq!(as_u128(p), a as u128 * b as u128);
        }
    }

    #[test]
    fn speculative_errors_are_run_bounded() {
        // Whenever the speculative product is wrong, the CSA addends
        // must exhibit a long propagate run.
        let mut rng = rand::rngs::StdRng::seed_from_u64(227);
        let nbits = 10;
        let window = 5;
        let spec = wallace_multiplier(nbits, FinalAdder::Speculative { window });
        let csa = wallace_csa(nbits);
        let mask = (1u64 << nbits) - 1;
        let pairs: Vec<(u64, u64)> = (0..64)
            .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
            .collect();
        let products = run_multiplier(&spec, nbits, &pairs);

        let a_ops: Vec<Vec<u64>> = pairs.iter().map(|&(a, _)| vec![a]).collect();
        let b_ops: Vec<Vec<u64>> = pairs.iter().map(|&(_, b)| vec![b]).collect();
        let mut stim = Stimulus::new();
        stim.set_bus("a", &pack_lanes(&a_ops, nbits));
        stim.set_bus("b", &pack_lanes(&b_ops, nbits));
        let waves = simulate(&csa, &stim).expect("simulate");
        let xs = unpack_lanes(
            &waves.output_bus("x", 2 * nbits).expect("x"),
            2 * nbits,
            pairs.len(),
        );
        let ys = unpack_lanes(
            &waves.output_bus("y", 2 * nbits).expect("y"),
            2 * nbits,
            pairs.len(),
        );
        for (i, (&(a, b), p)) in pairs.iter().zip(&products).enumerate() {
            let exact = a as u128 * b as u128;
            // The speculative product equals the windowed sum of the CSA
            // addends.
            let model = vlsa_core::windowed_sum_wide(&xs[i], &ys[i], 2 * nbits, window);
            assert_eq!(p, &model, "{a}*{b}");
            if as_u128(p) != exact {
                let run = vlsa_runstats::longest_one_run_words(
                    &vlsa_sim::wide_xor(&xs[i], &ys[i], 2 * nbits),
                    2 * nbits,
                );
                assert!(run as usize >= window, "{a}*{b}: run {run}");
            }
        }
    }

    #[test]
    fn gate_level_matches_software_model_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(251);
        for (nbits, window) in [(8usize, 4usize), (12, 7), (16, 9)] {
            let nl = wallace_multiplier(nbits, FinalAdder::Speculative { window });
            let model = crate::SpeculativeMultiplier::new(nbits, window).expect("valid");
            let mask = (1u64 << nbits) - 1;
            let pairs: Vec<(u64, u64)> = (0..64)
                .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
                .collect();
            let products = run_multiplier(&nl, nbits, &pairs);
            for (&(a, b), p) in pairs.iter().zip(&products) {
                assert_eq!(
                    as_u128(p),
                    model.mul(a, b).speculative,
                    "{a}*{b} n={nbits} w={window}"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            FinalAdder::Exact(PrefixArch::KoggeStone).to_string(),
            "exact/kogge-stone"
        );
        assert_eq!(FinalAdder::Speculative { window: 9 }.to_string(), "aca/w9");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        wallace_multiplier(0, FinalAdder::Exact(PrefixArch::Sklansky));
    }
}
