//! Signed (two's complement) multiplication: the Baugh-Wooley matrix.
//!
//! Two's complement products reduce to the same carry-save machinery as
//! unsigned ones once the partial-product matrix is rewritten: the
//! cross terms involving a sign bit are NANDed instead of ANDed and a
//! constant `2^{2n-1} + 2^n` is added (derived symbolically and checked
//! exhaustively in the tests). The final adder stays pluggable, so the
//! speculative variant carries over unchanged.

use crate::{BitMatrix, FinalAdder};
use vlsa_core::aca_into;
use vlsa_netlist::{Bus, Netlist};

/// Emits the Baugh-Wooley partial-product matrix for signed `a × b`.
///
/// # Panics
///
/// Panics if the buses differ in width or are narrower than 2 bits.
pub fn baugh_wooley_matrix(nl: &mut Netlist, a: &Bus, b: &Bus) -> BitMatrix {
    assert_eq!(a.width(), b.width(), "operand width mismatch");
    let n = a.width();
    assert!(n >= 2, "signed multiplication needs at least 2 bits");
    let mut m = BitMatrix::new();
    // Magnitude x magnitude terms.
    for i in 0..n - 1 {
        for j in 0..n - 1 {
            let pp = nl.and2(a[i], b[j]);
            m.push(i + j, pp);
        }
    }
    // Sign x sign.
    let ss = nl.and2(a[n - 1], b[n - 1]);
    m.push(2 * n - 2, ss);
    // Sign x magnitude cross terms enter inverted (NAND).
    for j in 0..n - 1 {
        let t = nl.nand2(a[n - 1], b[j]);
        m.push(j + n - 1, t);
    }
    for i in 0..n - 1 {
        let t = nl.nand2(a[i], b[n - 1]);
        m.push(i + n - 1, t);
    }
    // Correction constant 2^{2n-1} + 2^n.
    let one = nl.constant(true);
    m.push(2 * n - 1, one);
    m.push(n, one);
    m
}

/// Generates an `nbits × nbits` **signed** (two's complement) Wallace
/// multiplier with the given final adder. Interface: inputs `a[0..n]`,
/// `b[0..n]`, output `p[0..2n]` (the low `2n` bits of the signed
/// product).
///
/// # Panics
///
/// Panics if `nbits < 2`.
///
/// # Examples
///
/// ```
/// use vlsa_adders::PrefixArch;
/// use vlsa_multiplier::{signed_multiplier, FinalAdder};
///
/// let nl = signed_multiplier(16, FinalAdder::Exact(PrefixArch::BrentKung));
/// assert_eq!(nl.primary_outputs().len(), 32);
/// ```
pub fn signed_multiplier(nbits: usize, final_adder: FinalAdder) -> Netlist {
    assert!(nbits >= 2, "signed multiplication needs at least 2 bits");
    let name = match final_adder {
        FinalAdder::Exact(arch) => {
            format!("smul{nbits}_{}", arch.name().replace('-', "_"))
        }
        FinalAdder::Speculative { window } => format!("smul{nbits}_aca_w{window}"),
    };
    let mut nl = Netlist::new(name);
    let a = nl.input_bus("a", nbits);
    let b = nl.input_bus("b", nbits);
    let matrix = baugh_wooley_matrix(&mut nl, &a, &b);
    let (mut x, mut y) = matrix.reduce_to_two(&mut nl);
    let zero = nl.constant(false);
    while x.width() < 2 * nbits {
        x.push(zero);
        y.push(zero);
    }
    // Columns above 2n-1 (reduction carries out of the top column) are
    // modular overflow and must be dropped.
    let x = x.slice(0, 2 * nbits);
    let y = y.slice(0, 2 * nbits);
    let product = match final_adder {
        FinalAdder::Exact(arch) => {
            let pg = vlsa_adders::pg_signals(&mut nl, &x, &y);
            let schedule = arch.schedule(2 * nbits);
            let (g, _) = vlsa_adders::build_prefix_gp(&mut nl, &pg.g, &pg.p, &schedule);
            let zero = nl.constant(false);
            let carries: Vec<_> = std::iter::once(zero)
                .chain(g.iter().copied().take(2 * nbits - 1))
                .collect();
            vlsa_adders::sum_from_carries(&mut nl, &pg.p, &carries)
        }
        FinalAdder::Speculative { window } => aca_into(&mut nl, &x, &y, window).0,
    };
    nl.output_bus("p", &product);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use vlsa_adders::PrefixArch;
    use vlsa_sim::{pack_lanes, simulate, unpack_lanes, Stimulus};

    fn run(nl: &Netlist, nbits: usize, pairs: &[(u64, u64)]) -> Vec<u128> {
        let a_ops: Vec<Vec<u64>> = pairs.iter().map(|&(a, _)| vec![a]).collect();
        let b_ops: Vec<Vec<u64>> = pairs.iter().map(|&(_, b)| vec![b]).collect();
        let mut stim = Stimulus::new();
        stim.set_bus("a", &pack_lanes(&a_ops, nbits));
        stim.set_bus("b", &pack_lanes(&b_ops, nbits));
        let waves = simulate(nl, &stim).expect("simulate");
        let p = waves.output_bus("p", 2 * nbits).expect("product bus");
        unpack_lanes(&p, 2 * nbits, pairs.len())
            .into_iter()
            .map(|w| {
                w.iter()
                    .enumerate()
                    .fold(0u128, |acc, (i, &word)| acc | ((word as u128) << (64 * i)))
            })
            .collect()
    }

    fn signed_product_mod(a: u64, b: u64, nbits: usize) -> u128 {
        let sign = |v: u64| -> i64 {
            if (v >> (nbits - 1)) & 1 == 1 {
                v as i64 - (1i64 << nbits)
            } else {
                v as i64
            }
        };
        let p = (sign(a) as i128) * (sign(b) as i128);
        (p as u128) & ((1u128 << (2 * nbits)) - 1)
    }

    #[test]
    fn exhaustive_4x4_signed() {
        let nl = signed_multiplier(4, FinalAdder::Exact(PrefixArch::Sklansky));
        let mut pairs = Vec::new();
        for a in 0u64..16 {
            for b in 0u64..16 {
                pairs.push((a, b));
            }
        }
        for chunk in pairs.chunks(64) {
            let products = run(&nl, 4, chunk);
            for (&(a, b), &p) in chunk.iter().zip(&products) {
                assert_eq!(p, signed_product_mod(a, b, 4), "{a}*{b}");
            }
        }
    }

    #[test]
    fn exhaustive_5x5_signed() {
        let nl = signed_multiplier(5, FinalAdder::Exact(PrefixArch::BrentKung));
        let mut pairs = Vec::new();
        for a in 0u64..32 {
            for b in 0u64..32 {
                pairs.push((a, b));
            }
        }
        for chunk in pairs.chunks(64) {
            let products = run(&nl, 5, chunk);
            for (&(a, b), &p) in chunk.iter().zip(&products) {
                assert_eq!(p, signed_product_mod(a, b, 5), "{a}*{b}");
            }
        }
    }

    #[test]
    fn random_wide_signed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(331);
        for nbits in [8usize, 16, 24, 32] {
            let nl = signed_multiplier(nbits, FinalAdder::Exact(PrefixArch::KoggeStone));
            let mask = (1u64 << nbits) - 1;
            let pairs: Vec<(u64, u64)> = (0..64)
                .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
                .collect();
            let products = run(&nl, nbits, &pairs);
            for (&(a, b), &p) in pairs.iter().zip(&products) {
                assert_eq!(p, signed_product_mod(a, b, nbits), "{a}*{b} n={nbits}");
            }
        }
    }

    #[test]
    fn speculative_signed_full_window_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(337);
        let nbits = 10;
        let nl = signed_multiplier(nbits, FinalAdder::Speculative { window: 2 * nbits });
        let mask = (1u64 << nbits) - 1;
        let pairs: Vec<(u64, u64)> = (0..64)
            .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
            .collect();
        let products = run(&nl, nbits, &pairs);
        for (&(a, b), &p) in pairs.iter().zip(&products) {
            assert_eq!(p, signed_product_mod(a, b, nbits));
        }
    }

    #[test]
    fn speculative_signed_mostly_correct_at_design_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(347);
        let nbits = 16;
        let window = vlsa_runstats::min_bound_for_prob(2 * nbits, 0.9999) + 1;
        let nl = signed_multiplier(nbits, FinalAdder::Speculative { window });
        let mask = (1u64 << nbits) - 1;
        let mut wrong = 0;
        let mut total = 0;
        for _ in 0..8 {
            let pairs: Vec<(u64, u64)> = (0..64)
                .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
                .collect();
            let products = run(&nl, nbits, &pairs);
            for (&(a, b), &p) in pairs.iter().zip(&products) {
                total += 1;
                if p != signed_product_mod(a, b, nbits) {
                    wrong += 1;
                }
            }
        }
        assert!(wrong * 50 < total, "{wrong}/{total} wrong");
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn width_one_rejected() {
        signed_multiplier(1, FinalAdder::Exact(PrefixArch::Sklansky));
    }
}
