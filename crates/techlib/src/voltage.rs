//! Supply-voltage scaling via the alpha-power law.
//!
//! The paper positions speculation against Razor-style voltage
//! overscaling (its refs [2], [5]): both trade rare errors for average
//! performance/energy. To compare the two quantitatively we model gate
//! delay under a scaled supply with the alpha-power law,
//!
//! ```text
//! d(V) ∝ V / (V - Vt)^alpha
//! ```
//!
//! calibrated for the 0.18 µm-class library (`Vdd = 1.8 V`,
//! `Vt = 0.45 V`, `alpha = 1.3`). Dynamic power scales as `V²·f`.

use crate::TechLibrary;

/// Nominal supply of the 0.18 µm-class process, volts.
pub const NOMINAL_VDD: f64 = 1.8;
/// Threshold voltage, volts.
pub const THRESHOLD_V: f64 = 0.45;
/// Velocity-saturation exponent.
pub const ALPHA: f64 = 1.3;

/// Relative gate delay at supply `vdd_ratio × NOMINAL_VDD`
/// (1.0 at nominal; > 1 when undervolted, < 1 when overdriven).
///
/// # Panics
///
/// Panics unless the scaled supply stays above the threshold voltage
/// with margin (`vdd_ratio × NOMINAL_VDD > 1.1 × THRESHOLD_V`).
///
/// # Examples
///
/// ```
/// use vlsa_techlib::delay_factor_at_voltage;
///
/// assert!((delay_factor_at_voltage(1.0) - 1.0).abs() < 1e-12);
/// assert!(delay_factor_at_voltage(0.8) > 1.1);  // undervolting slows
/// assert!(delay_factor_at_voltage(1.2) < 0.9);  // overdrive speeds up
/// ```
pub fn delay_factor_at_voltage(vdd_ratio: f64) -> f64 {
    let v = vdd_ratio * NOMINAL_VDD;
    assert!(
        v > 1.1 * THRESHOLD_V,
        "supply {v:.2} V too close to threshold {THRESHOLD_V} V"
    );
    let d = |v: f64| v / (v - THRESHOLD_V).powf(ALPHA);
    d(v) / d(NOMINAL_VDD)
}

/// Relative dynamic power at supply `vdd_ratio × NOMINAL_VDD` and
/// frequency scaled to match the voltage's delay (`P ∝ V² f`,
/// `f ∝ 1/delay`).
pub fn power_factor_at_voltage(vdd_ratio: f64) -> f64 {
    vdd_ratio * vdd_ratio / delay_factor_at_voltage(vdd_ratio)
}

/// The supply ratio at which gate delay equals `target_delay_factor`
/// times nominal (bisection; `target < 1` demands overdrive).
///
/// # Panics
///
/// Panics if the target is unreachable within `0.3×` to `2×` nominal
/// supply.
pub fn voltage_for_delay_factor(target_delay_factor: f64) -> f64 {
    let (mut lo, mut hi) = (0.3f64, 2.0f64);
    assert!(
        delay_factor_at_voltage(hi) <= target_delay_factor
            && delay_factor_at_voltage(lo) >= target_delay_factor,
        "target delay factor {target_delay_factor} out of range"
    );
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if delay_factor_at_voltage(mid) > target_delay_factor {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

impl TechLibrary {
    /// A copy of this library timed at a scaled supply voltage.
    ///
    /// # Panics
    ///
    /// As [`delay_factor_at_voltage`].
    pub fn at_voltage(&self, vdd_ratio: f64) -> TechLibrary {
        self.derated(delay_factor_at_voltage(vdd_ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        assert!((delay_factor_at_voltage(1.0) - 1.0).abs() < 1e-12);
        assert!((power_factor_at_voltage(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_voltage() {
        let mut prev = f64::INFINITY;
        for r in [0.5, 0.7, 0.9, 1.0, 1.2, 1.5] {
            let d = delay_factor_at_voltage(r);
            assert!(d < prev, "r={r}");
            prev = d;
        }
    }

    #[test]
    fn inverse_round_trips() {
        for target in [0.7, 0.8, 1.0, 1.3, 2.0] {
            let r = voltage_for_delay_factor(target);
            assert!(
                (delay_factor_at_voltage(r) - target).abs() < 1e-9,
                "target {target}"
            );
        }
    }

    #[test]
    fn library_scaling_applies_factor() {
        let lib = TechLibrary::umc180();
        let under = lib.at_voltage(0.8);
        let f = delay_factor_at_voltage(0.8);
        assert!((under.tau_ps - lib.tau_ps * f).abs() < 1e-9);
    }

    #[test]
    fn overdrive_costs_quadratic_power() {
        // 20% overdrive buys speed but more than 20% power.
        let p = power_factor_at_voltage(1.2);
        assert!(p > 1.4, "{p}");
    }

    #[test]
    #[should_panic(expected = "too close to threshold")]
    fn rejects_subthreshold_supply() {
        delay_factor_at_voltage(0.2);
    }
}
