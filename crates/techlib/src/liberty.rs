//! A Liberty-lite text format for technology libraries.
//!
//! Real flows exchange `.lib` files; we support a small structured subset
//! sufficient to persist and share [`TechLibrary`] instances:
//!
//! ```text
//! library umc180 {
//!   tau_ps 16;
//!   wire_cap 0.15;
//!   output_load 4;
//!   cell nand2 { area 1; effort 1.333; parasitic 1.4; }
//! }
//! ```

use crate::{CellTiming, TechLibrary};
use std::error::Error;
use std::fmt;
use vlsa_netlist::CellKind;

/// Failure to parse a Liberty-lite library.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseLibraryError {
    /// The token stream ended unexpectedly.
    UnexpectedEnd,
    /// An unexpected token was found.
    UnexpectedToken {
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A cell name is not a known [`CellKind`].
    UnknownCell {
        /// The offending cell name.
        name: String,
    },
    /// A numeric attribute failed to parse.
    BadNumber {
        /// The attribute name.
        attribute: String,
        /// The offending literal.
        literal: String,
    },
    /// A required attribute was missing from a cell block.
    MissingAttribute {
        /// The cell being parsed.
        cell: String,
        /// The missing attribute name.
        attribute: &'static str,
    },
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibraryError::UnexpectedEnd => write!(f, "unexpected end of library text"),
            ParseLibraryError::UnexpectedToken { found, expected } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            ParseLibraryError::UnknownCell { name } => write!(f, "unknown cell `{name}`"),
            ParseLibraryError::BadNumber { attribute, literal } => {
                write!(f, "attribute `{attribute}` has invalid number `{literal}`")
            }
            ParseLibraryError::MissingAttribute { cell, attribute } => {
                write!(f, "cell `{cell}` is missing attribute `{attribute}`")
            }
        }
    }
}

impl Error for ParseLibraryError {}

struct Tokens<'a> {
    items: Vec<&'a str>,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(text: &'a str) -> Self {
        Tokens {
            items: lex(text),
            pos: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, ParseLibraryError> {
        let tok = self
            .items
            .get(self.pos)
            .copied()
            .ok_or(ParseLibraryError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect(&mut self, token: &'static str) -> Result<(), ParseLibraryError> {
        let found = self.next()?;
        if found == token {
            Ok(())
        } else {
            Err(ParseLibraryError::UnexpectedToken {
                found: found.to_string(),
                expected: token,
            })
        }
    }

    fn peek(&self) -> Option<&'a str> {
        self.items.get(self.pos).copied()
    }
}

/// Tokenizes on whitespace, treating `{`, `}`, `;` as separate tokens and
/// `#` as a to-end-of-line comment. Tokens borrow from `text`.
fn lex(text: &str) -> Vec<&str> {
    let mut items = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        let mut rest = line;
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            let first = rest.chars().next().expect("nonempty");
            if first == '{' || first == '}' || first == ';' {
                items.push(&rest[..1]);
                rest = &rest[1..];
            } else {
                let end = rest
                    .char_indices()
                    .find(|&(_, c)| c.is_whitespace() || c == '{' || c == '}' || c == ';')
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                items.push(&rest[..end]);
                rest = &rest[end..];
            }
        }
    }
    items
}

fn parse_number(attribute: &str, tokens: &mut Tokens) -> Result<f64, ParseLibraryError> {
    let lit = tokens.next()?;
    let value = lit
        .parse::<f64>()
        .map_err(|_| ParseLibraryError::BadNumber {
            attribute: attribute.to_string(),
            literal: lit.to_string(),
        })?;
    tokens.expect(";")?;
    Ok(value)
}

/// Parses a Liberty-lite library (see module docs for the grammar).
pub(crate) fn parse(text: &str) -> Result<TechLibrary, ParseLibraryError> {
    let mut tokens = Tokens::new(text);
    tokens.expect("library")?;
    let name = tokens.next()?.to_string();
    tokens.expect("{")?;

    let mut lib = TechLibrary::new(name, 16.0, 0.0, 0.0);
    loop {
        let tok = tokens.next()?;
        match tok {
            "}" => break,
            "tau_ps" => lib.tau_ps = parse_number("tau_ps", &mut tokens)?,
            "wire_cap" => lib.wire_cap = parse_number("wire_cap", &mut tokens)?,
            "output_load" => lib.output_load = parse_number("output_load", &mut tokens)?,
            "cell" => {
                let cell_name = tokens.next()?.to_string();
                let kind =
                    CellKind::from_name(&cell_name).ok_or(ParseLibraryError::UnknownCell {
                        name: cell_name.clone(),
                    })?;
                tokens.expect("{")?;
                let (mut area, mut effort, mut parasitic) = (None, None, None);
                loop {
                    let attr = tokens.next()?;
                    match attr {
                        "}" => break,
                        "area" => area = Some(parse_number("area", &mut tokens)?),
                        "effort" => effort = Some(parse_number("effort", &mut tokens)?),
                        "parasitic" => parasitic = Some(parse_number("parasitic", &mut tokens)?),
                        other => {
                            return Err(ParseLibraryError::UnexpectedToken {
                                found: other.to_string(),
                                expected: "cell attribute",
                            })
                        }
                    }
                }
                let missing = |attribute| ParseLibraryError::MissingAttribute {
                    cell: cell_name.clone(),
                    attribute,
                };
                lib.insert(
                    kind,
                    CellTiming {
                        area: area.ok_or_else(|| missing("area"))?,
                        effort: effort.ok_or_else(|| missing("effort"))?,
                        parasitic: parasitic.ok_or_else(|| missing("parasitic"))?,
                    },
                );
            }
            other => {
                return Err(ParseLibraryError::UnexpectedToken {
                    found: other.to_string(),
                    expected: "library attribute or cell",
                })
            }
        }
    }
    if tokens.peek().is_some() {
        return Err(ParseLibraryError::UnexpectedToken {
            found: tokens.peek().expect("peeked").to_string(),
            expected: "end of input",
        });
    }
    Ok(lib)
}

/// Emits the Liberty-lite text form of `lib`.
pub(crate) fn emit(lib: &TechLibrary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "library {} {{", lib.name());
    let _ = writeln!(out, "  tau_ps {};", lib.tau_ps);
    let _ = writeln!(out, "  wire_cap {};", lib.wire_cap);
    let _ = writeln!(out, "  output_load {};", lib.output_load);
    for (kind, t) in lib.cells() {
        let _ = writeln!(
            out,
            "  cell {} {{ area {}; effort {}; parasitic {}; }}",
            kind.name(),
            t.area,
            t.effort,
            t.parasitic
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_default_library() {
        let lib = TechLibrary::umc180();
        let text = lib.to_liberty();
        let parsed = TechLibrary::from_liberty(&text).expect("round trip");
        assert_eq!(parsed, lib);
    }

    #[test]
    fn parses_minimal_library() {
        let text = "library t { tau_ps 10; cell inv { area 0.7; effort 1; parasitic 1; } }";
        let lib = TechLibrary::from_liberty(text).expect("parse");
        assert_eq!(lib.name(), "t");
        assert_eq!(lib.tau_ps, 10.0);
        assert_eq!(lib.cell(CellKind::Not).area, 0.7);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let text = "# header\nlibrary t { # inline\n  tau_ps 12; }";
        let lib = TechLibrary::from_liberty(text).expect("parse");
        assert_eq!(lib.tau_ps, 12.0);
    }

    #[test]
    fn unknown_cell_rejected() {
        let text = "library t { cell flux { area 1; effort 1; parasitic 1; } }";
        assert_eq!(
            TechLibrary::from_liberty(text),
            Err(ParseLibraryError::UnknownCell {
                name: "flux".to_string()
            })
        );
    }

    #[test]
    fn missing_attribute_rejected() {
        let text = "library t { cell inv { area 1; parasitic 1; } }";
        assert!(matches!(
            TechLibrary::from_liberty(text),
            Err(ParseLibraryError::MissingAttribute {
                attribute: "effort",
                ..
            })
        ));
    }

    #[test]
    fn bad_number_rejected() {
        let text = "library t { tau_ps banana; }";
        assert!(matches!(
            TechLibrary::from_liberty(text),
            Err(ParseLibraryError::BadNumber { .. })
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let text = "library t { tau_ps 10";
        assert_eq!(
            TechLibrary::from_liberty(text),
            Err(ParseLibraryError::UnexpectedEnd)
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let text = "library t { } extra";
        assert!(matches!(
            TechLibrary::from_liberty(text),
            Err(ParseLibraryError::UnexpectedToken { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseLibraryError::UnknownCell { name: "foo".into() };
        assert!(e.to_string().contains("foo"));
        let e = ParseLibraryError::BadNumber {
            attribute: "tau_ps".into(),
            literal: "x".into(),
        };
        assert!(e.to_string().contains("tau_ps"));
    }
}
