//! Synthetic standard-cell technology library with logical-effort timing.
//!
//! The DATE 2008 VLSA paper synthesized its adders against a commercial
//! UMC 0.18 µm library. This crate stands in for that flow: it
//! characterizes every [`vlsa_netlist::CellKind`] with an area (NAND2
//! equivalents) and logical-effort timing parameters, provides the
//! [`TechLibrary::umc180`] calibration used throughout the workspace,
//! and persists libraries in a Liberty-lite text format
//! ([`TechLibrary::from_liberty`] / [`TechLibrary::to_liberty`]).
//!
//! Delays are computed by `vlsa-timing`; this crate only answers "how
//! slow is one gate under a given load".
//!
//! # Examples
//!
//! ```
//! use vlsa_techlib::TechLibrary;
//! use vlsa_netlist::CellKind;
//!
//! let lib = TechLibrary::umc180();
//! // A NAND2 driving four inverters:
//! let load = 4.0 * lib.pin_cap(CellKind::Not);
//! let d = lib.gate_delay_ps(CellKind::Nand2, load);
//! assert!(d > 0.0);
//! ```

mod liberty;
mod library;
mod voltage;

pub use liberty::ParseLibraryError;
pub use library::{CellTiming, TechLibrary};
pub use voltage::{
    delay_factor_at_voltage, power_factor_at_voltage, voltage_for_delay_factor, ALPHA, NOMINAL_VDD,
    THRESHOLD_V,
};
