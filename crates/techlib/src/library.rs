//! The technology library: per-cell area and logical-effort timing.
//!
//! We model every cell at unit drive. In logical-effort terms a unit-drive
//! gate presents an input capacitance equal to its logical effort `g`
//! (normalized to the unit inverter), and its stage delay is
//!
//! ```text
//! d = tau * (p + g * h),   h = C_load / C_in,   C_in = g
//!   = tau * (p + C_load)
//! ```
//!
//! so delay grows with the *sum of the logical efforts of the driven
//! pins* plus a per-fanout wire adder. This reproduces the two effects the
//! paper's synthesis numbers hinge on: complex gates (the OR-AND `g+p·c`
//! carry operator) are slower per level than simple AND/OR gates, and
//! high fanout costs delay.

use crate::ParseLibraryError;
use std::collections::BTreeMap;
use vlsa_netlist::{CellKind, Netlist};

/// Area and logical-effort parameters of one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellTiming {
    /// Cell area in NAND2 gate equivalents.
    pub area: f64,
    /// Logical effort `g`: also the input capacitance of each pin in
    /// unit-inverter input capacitances.
    pub effort: f64,
    /// Parasitic delay `p` in units of `tau`.
    pub parasitic: f64,
}

/// A technology library mapping every [`CellKind`] to timing and area.
///
/// # Examples
///
/// ```
/// use vlsa_techlib::TechLibrary;
/// use vlsa_netlist::CellKind;
///
/// let lib = TechLibrary::umc180();
/// let nand = lib.cell(CellKind::Nand2);
/// assert!(nand.effort > 1.0); // worse than an inverter
/// assert!(lib.fo4_delay_ps() > 50.0 && lib.fo4_delay_ps() < 150.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TechLibrary {
    name: String,
    /// Process time constant in picoseconds (delay of `p + g·h = 1`).
    pub tau_ps: f64,
    /// Extra load per fanout branch (wire capacitance), in unit caps.
    pub wire_cap: f64,
    /// Capacitive load presented by a primary output, in unit caps.
    pub output_load: f64,
    cells: BTreeMap<CellKind, CellTiming>,
}

impl TechLibrary {
    /// Creates a library with the given global parameters and no cells.
    pub fn new(name: impl Into<String>, tau_ps: f64, wire_cap: f64, output_load: f64) -> Self {
        TechLibrary {
            name: name.into(),
            tau_ps,
            wire_cap,
            output_load,
            cells: BTreeMap::new(),
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers or replaces a cell's parameters.
    pub fn insert(&mut self, kind: CellKind, timing: CellTiming) {
        self.cells.insert(kind, timing);
    }

    /// Parameters of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the library does not characterize `kind`; use
    /// [`TechLibrary::get`] for a fallible lookup.
    pub fn cell(&self, kind: CellKind) -> &CellTiming {
        self.get(kind)
            .unwrap_or_else(|| panic!("library `{}` has no cell `{kind}`", self.name))
    }

    /// Parameters of `kind`, if characterized.
    pub fn get(&self, kind: CellKind) -> Option<&CellTiming> {
        self.cells.get(&kind)
    }

    /// Iterates all characterized cells in a stable order.
    pub fn cells(&self) -> impl Iterator<Item = (CellKind, &CellTiming)> {
        self.cells.iter().map(|(&k, t)| (k, t))
    }

    /// Whether every kind used by `netlist` is characterized.
    pub fn covers(&self, netlist: &Netlist) -> bool {
        netlist
            .nodes()
            .all(|(_, node)| !node.kind().is_gate() || self.cells.contains_key(&node.kind()))
    }

    /// Stage delay in picoseconds of a gate of `kind` driving
    /// `load_cap` unit capacitances.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not characterized.
    pub fn gate_delay_ps(&self, kind: CellKind, load_cap: f64) -> f64 {
        let t = self.cell(kind);
        self.tau_ps * (t.parasitic + load_cap)
    }

    /// Input capacitance of one pin of `kind` in unit caps.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not characterized.
    pub fn pin_cap(&self, kind: CellKind) -> f64 {
        self.cell(kind).effort
    }

    /// The fanout-of-4 inverter delay of this library in picoseconds —
    /// the conventional process speed yardstick.
    pub fn fo4_delay_ps(&self) -> f64 {
        let inv = self.cell(CellKind::Not);
        // Load = 4 inverter input caps + 4 wire branches.
        self.tau_ps * (inv.parasitic + 4.0 * inv.effort + 4.0 * self.wire_cap)
    }

    /// A synthetic library calibrated to a UMC 0.18 µm-class process:
    /// `tau` chosen so FO4 ≈ 90 ps, canonical logical-effort values, and
    /// areas in NAND2 equivalents.
    ///
    /// This plays the role of the commercial standard-cell library used
    /// in the paper's synthesis flow.
    pub fn umc180() -> Self {
        use CellKind::*;
        let mut lib = TechLibrary::new("umc180", 16.0, 0.15, 4.0);
        let cells = [
            // (kind, area [NAND2e], logical effort g, parasitic p)
            (Buf, 1.00, 1.00, 2.0),
            (Not, 0.67, 1.00, 1.0),
            (And2, 1.33, 1.33, 2.0),
            (And3, 1.67, 1.67, 2.5),
            (And4, 2.00, 2.00, 3.0),
            (Or2, 1.67, 1.67, 2.2),
            (Or3, 2.33, 2.33, 2.8),
            (Or4, 3.00, 3.00, 3.4),
            (Nand2, 1.00, 1.33, 1.4),
            (Nand3, 1.33, 1.67, 1.8),
            (Nor2, 1.33, 1.67, 1.6),
            (Nor3, 2.00, 2.33, 2.2),
            (Xor2, 2.33, 2.00, 3.0),
            (Xnor2, 2.33, 2.00, 3.0),
            (Mux2, 2.33, 2.00, 3.0),
            (Maj3, 2.67, 2.00, 3.2),
            (Ao21, 2.00, 2.00, 2.8),
            (Oa21, 2.00, 2.00, 2.8),
            (Aoi21, 1.33, 1.67, 2.0),
            (Oai21, 1.33, 1.67, 2.0),
        ];
        for (kind, area, effort, parasitic) in cells {
            lib.insert(
                kind,
                CellTiming {
                    area,
                    effort,
                    parasitic,
                },
            );
        }
        // Pseudo-cells: free.
        for kind in [Input, Const0, Const1] {
            lib.insert(
                kind,
                CellTiming {
                    area: 0.0,
                    effort: 0.0,
                    parasitic: 0.0,
                },
            );
        }
        lib
    }

    /// A copy of this library with all delays scaled by `factor`
    /// (e.g. a derate or a different process corner).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn derated(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "derate factor must be positive"
        );
        let mut out = self.clone();
        out.tau_ps *= factor;
        out.name = format!("{}_x{factor}", self.name);
        out
    }

    /// Parses a library from the Liberty-lite text format produced by
    /// [`TechLibrary::to_liberty`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseLibraryError`] on malformed input or unknown cells.
    pub fn from_liberty(text: &str) -> Result<Self, ParseLibraryError> {
        crate::liberty::parse(text)
    }

    /// Serializes the library in the Liberty-lite text format.
    pub fn to_liberty(&self) -> String {
        crate::liberty::emit(self)
    }
}

impl Default for TechLibrary {
    /// The default library is [`TechLibrary::umc180`].
    fn default() -> Self {
        TechLibrary::umc180()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_netlist::Netlist;

    #[test]
    fn umc180_covers_all_gates() {
        let lib = TechLibrary::umc180();
        for kind in CellKind::ALL {
            assert!(lib.get(kind).is_some(), "missing {kind}");
        }
    }

    #[test]
    fn fo4_in_plausible_range_for_180nm() {
        let lib = TechLibrary::umc180();
        let fo4 = lib.fo4_delay_ps();
        assert!((60.0..140.0).contains(&fo4), "FO4 = {fo4} ps");
    }

    #[test]
    fn complex_gates_cost_more_than_simple() {
        let lib = TechLibrary::umc180();
        // Same load: the AO21 carry operator is slower than plain AND2.
        let load = 4.0;
        assert!(lib.gate_delay_ps(CellKind::Ao21, load) > lib.gate_delay_ps(CellKind::And2, load));
        // Inverting forms are faster than their non-inverting composites.
        assert!(lib.gate_delay_ps(CellKind::Nand2, load) < lib.gate_delay_ps(CellKind::And2, load));
    }

    #[test]
    fn delay_grows_with_load() {
        let lib = TechLibrary::umc180();
        let d1 = lib.gate_delay_ps(CellKind::Nand2, 1.0);
        let d8 = lib.gate_delay_ps(CellKind::Nand2, 8.0);
        assert!(d8 > d1 + 6.0 * lib.tau_ps);
    }

    #[test]
    fn covers_checks_netlist_kinds() {
        let mut lib = TechLibrary::new("tiny", 16.0, 0.1, 4.0);
        lib.insert(
            CellKind::And2,
            CellTiming {
                area: 1.0,
                effort: 1.3,
                parasitic: 2.0,
            },
        );
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.and2(a, b);
        nl.output("y", y);
        assert!(lib.covers(&nl));
        let x = nl.xor2(a, b);
        nl.output("x", x);
        assert!(!lib.covers(&nl));
    }

    #[test]
    fn derate_scales_delay_only() {
        let lib = TechLibrary::umc180();
        let slow = lib.derated(1.5);
        assert_eq!(
            slow.gate_delay_ps(CellKind::Nand2, 2.0),
            1.5 * lib.gate_delay_ps(CellKind::Nand2, 2.0)
        );
        assert_eq!(
            slow.cell(CellKind::Nand2).area,
            lib.cell(CellKind::Nand2).area
        );
    }

    #[test]
    #[should_panic(expected = "derate factor")]
    fn derate_rejects_nonpositive() {
        TechLibrary::umc180().derated(0.0);
    }

    #[test]
    #[should_panic(expected = "has no cell")]
    fn missing_cell_panics() {
        let lib = TechLibrary::new("empty", 16.0, 0.1, 4.0);
        lib.cell(CellKind::And2);
    }

    #[test]
    fn default_is_umc180() {
        assert_eq!(TechLibrary::default().name(), "umc180");
    }
}
