//! The flight recorder: a lock-free bounded ring buffer of
//! [`TraceEvent`]s.
//!
//! Classic Vyukov bounded MPMC queue: every slot carries a sequence
//! number that encodes whether it is free to write or ready to read, so
//! producers and consumers synchronize with one CAS plus one
//! acquire/release pair each — no locks, no allocation after
//! construction. Memory is bounded at `capacity * size_of::<TraceEvent>`
//! forever, which is what makes the recorder safe to leave *always on*
//! in long-running processes: when the buffer is full, new events are
//! dropped and counted rather than blocking or growing.
//!
//! Drain with [`FlightRecorder::drain`] on demand (end of a run, or when
//! an error is flagged) to get the recent history in order.

use crate::TraceEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot {
    /// Sequence protocol: `seq == pos` ⇒ free for the producer claiming
    /// `pos`; `seq == pos + 1` ⇒ holds the value enqueued at `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<TraceEvent>>,
}

/// Lock-free bounded event buffer with an overflow drop counter.
///
/// # Examples
///
/// ```
/// use vlsa_trace::{FlightRecorder, TraceEvent};
///
/// let rec = FlightRecorder::new(8);
/// rec.record(TraceEvent::instant("boot", "demo", 0));
/// rec.record(TraceEvent::complete("op", "demo", 1, 1));
/// let events = rec.drain();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[0].name, "boot");
/// assert_eq!(rec.dropped(), 0);
/// ```
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next enqueue position.
    head: AtomicUsize,
    /// Next dequeue position.
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot values are only accessed by the thread that won the
// corresponding sequence-number CAS (producer) or observed the published
// sequence value (consumer); the acquire/release pairs on `seq` order
// those accesses.
unsafe impl Send for FlightRecorder {}
unsafe impl Sync for FlightRecorder {}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of buffered events (exact when quiescent).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        head.saturating_sub(tail)
    }

    /// Whether the buffer is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Enqueues an event; on a full buffer the event is dropped and the
    /// drop counter incremented. Returns whether the event was stored.
    pub fn record(&self, event: TraceEvent) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS above made this thread the
                        // unique owner of the slot until the release
                        // store below publishes it.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Seq lags the claim position: the consumer has not yet
                // freed this slot — the ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed `pos` first; reload.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest event, if any.
    pub fn pop(&self) -> Option<TraceEvent> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique
                        // reader of a slot the producer published with a
                        // release store.
                        let event = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(event);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every buffered event in FIFO order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(event) = self.pop() {
            out.push(event);
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::instant("e", "t", i)
    }

    #[test]
    fn fifo_order_preserved() {
        let rec = FlightRecorder::new(16);
        for i in 0..10 {
            assert!(rec.record(ev(i)));
        }
        let got: Vec<u64> = rec.drain().iter().map(|e| e.ts).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rec.is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::new(5).capacity(), 8);
        assert_eq!(FlightRecorder::new(0).capacity(), 2);
        assert_eq!(FlightRecorder::new(64).capacity(), 64);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let rec = FlightRecorder::new(4);
        for i in 0..4 {
            assert!(rec.record(ev(i)));
        }
        // Full: the next three are dropped, buffer keeps the oldest 4.
        for i in 4..7 {
            assert!(!rec.record(ev(i)));
        }
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.len(), 4);
        let got: Vec<u64> = rec.drain().iter().map(|e| e.ts).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let rec = FlightRecorder::new(4);
        // Cycle the ring several times its capacity.
        for round in 0..10u64 {
            for i in 0..4 {
                assert!(rec.record(ev(round * 4 + i)));
            }
            let got: Vec<u64> = rec.drain().iter().map(|e| e.ts).collect();
            assert_eq!(got, (round * 4..round * 4 + 4).collect::<Vec<_>>());
        }
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn interleaved_push_pop_never_loses_order() {
        let rec = FlightRecorder::new(8);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..100 {
            for _ in 0..3 {
                if rec.record(ev(next_in)) {
                    next_in += 1;
                }
            }
            if let Some(e) = rec.pop() {
                assert_eq!(e.ts, next_out);
                next_out += 1;
            }
        }
        for e in rec.drain() {
            assert_eq!(e.ts, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn concurrent_producers_deliver_every_event_once() {
        let rec = Arc::new(FlightRecorder::new(1 << 12));
        let threads = 4;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        assert!(rec.record(ev(t as u64 * per_thread + i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer");
        }
        let mut seen: Vec<u64> = rec.drain().iter().map(|e| e.ts).collect();
        assert_eq!(seen.len(), threads * per_thread as usize);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), threads * per_thread as usize);
        assert_eq!(rec.dropped(), 0);
    }
}
