//! Replay: reconstructing an operand stream from a captured trace.
//!
//! The `trace` binary records one `"op"` span per addition with the full
//! operands attached as arguments. This module reads such a Chrome trace
//! document back into an ordered list of [`RecordedOp`]s so the exact
//! workload can be re-executed — the deterministic-reproduction path for
//! a flagged misprediction: capture once, replay forever.

use crate::chrome::arg_u64;
use std::error::Error;
use std::fmt;
use vlsa_telemetry::Json;

/// One recorded addition, reconstructed from an `"op"` span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordedOp {
    /// Position in the original operand stream.
    pub index: u64,
    /// Left operand.
    pub a: u64,
    /// Right operand.
    pub b: u64,
    /// The sum the pipeline delivered (exact on recovered ops).
    pub sum: u64,
    /// Whether the error detector fired on this op.
    pub error: bool,
}

/// Failure reading a trace document back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The document has no `traceEvents` array.
    MissingEvents,
    /// An `"op"` span lacks a required argument.
    MissingArg {
        /// The absent argument key.
        key: &'static str,
        /// Index of the offending event within `traceEvents`.
        event: usize,
    },
    /// The trace contains no `"op"` spans at all.
    NoOps,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::MissingEvents => write!(f, "trace has no `traceEvents` array"),
            ReplayError::MissingArg { key, event } => {
                write!(f, "op span #{event} is missing argument `{key}`")
            }
            ReplayError::NoOps => write!(f, "trace contains no `op` spans to replay"),
        }
    }
}

impl Error for ReplayError {}

/// Extracts every `"op"` span from a Chrome trace document, ordered by
/// stream index.
///
/// # Errors
///
/// Returns [`ReplayError`] if the document is not a trace, an op span is
/// missing operands, or no ops are present.
pub fn extract_ops(doc: &Json) -> Result<Vec<RecordedOp>, ReplayError> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or(ReplayError::MissingEvents)?;
    let mut ops = Vec::new();
    for (i, event) in events.iter().enumerate() {
        if event.get("name").and_then(Json::as_str) != Some("op") {
            continue;
        }
        let args = event.get("args").ok_or(ReplayError::MissingArg {
            key: "args",
            event: i,
        })?;
        let req =
            |key: &'static str| arg_u64(args, key).ok_or(ReplayError::MissingArg { key, event: i });
        ops.push(RecordedOp {
            index: req("i")?,
            a: req("a")?,
            b: req("b")?,
            sum: req("sum")?,
            error: req("err")? != 0,
        });
    }
    if ops.is_empty() {
        return Err(ReplayError::NoOps);
    }
    ops.sort_by_key(|op| op.index);
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chrome_trace, TraceEvent};

    fn op_event(i: u64, a: u64, b: u64, err: bool) -> TraceEvent {
        TraceEvent::complete("op", "pipeline", i, 1)
            .arg("i", i)
            .arg("a", a)
            .arg("b", b)
            .arg("sum", a.wrapping_add(b))
            .arg("err", u64::from(err))
    }

    #[test]
    fn extracts_ops_in_index_order() {
        // Deliberately out of order; extraction sorts by index.
        let events = vec![
            op_event(1, 10, 20, false),
            TraceEvent::instant("detect", "pipeline", 0),
            op_event(0, u64::MAX, 1, true),
        ];
        let doc = chrome_trace(&events);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("valid");
        let ops = extract_ops(&parsed).expect("ops");
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].index, 0);
        assert_eq!(ops[0].a, u64::MAX);
        assert!(ops[0].error);
        assert_eq!(ops[0].sum, 0);
        assert_eq!(
            ops[1],
            RecordedOp {
                index: 1,
                a: 10,
                b: 20,
                sum: 30,
                error: false,
            }
        );
    }

    #[test]
    fn missing_events_and_args_are_reported() {
        assert_eq!(
            extract_ops(&Json::obj().set("x", 1u64)),
            Err(ReplayError::MissingEvents)
        );
        let doc = chrome_trace(&[TraceEvent::complete("op", "pipeline", 0, 1).arg("i", 0)]);
        match extract_ops(&doc) {
            Err(ReplayError::MissingArg { key: "a", event: 0 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let empty = chrome_trace(&[TraceEvent::instant("detect", "pipeline", 0)]);
        assert_eq!(extract_ops(&empty), Err(ReplayError::NoOps));
        // Display impls render usefully.
        assert!(ReplayError::NoOps.to_string().contains("no `op` spans"));
        assert!(ReplayError::MissingArg { key: "b", event: 3 }
            .to_string()
            .contains("`b`"));
    }
}
