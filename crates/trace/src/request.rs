//! Request-scoped tracing: one span tree per sampled serving request.
//!
//! The flight recorder ([`crate::FlightRecorder`]) answers "what has the
//! pipeline been doing lately"; a [`RequestTrace`] answers the sharper
//! question a tail-latency investigation needs: "where did *this*
//! request's time go". Each sampled request accumulates an explicit
//! decomposition of its server-side life —
//!
//! ```text
//! queue_wait → batch_linger → service → device_pace → write_back
//! ```
//!
//! — where `queue_wait` is the time spent in the shard queue before the
//! batcher began forming the batch, `batch_linger` is the adaptive
//! batcher's forming/linger window, `service` is the
//! `ResilientPipeline` compute (whose recovery share is visible through
//! the recorded `stalls`/`cycles`), `device_pace` is the modeled-device
//! pacing the batch waited out, and `write_back` is the response
//! serialization onto the socket. The phases are contiguous by
//! construction, so they sum to the request's total server-side latency
//! exactly; the gap between that total and the client-observed
//! round-trip is the network/framing share.
//!
//! Traces are kept in per-shard [`TraceRing`]s — bounded, non-destructive
//! (unlike the flight recorder's drain) so the `/trace/{id}` endpoint and
//! exemplar lookups can read the same trace repeatedly until it ages out.

use std::collections::VecDeque;
use std::sync::Mutex;

use vlsa_telemetry::Json;

/// The completed span decomposition of one sampled request.
///
/// All durations are microseconds measured against the server's
/// monotonic epoch; `start_us` is when the request was enqueued on its
/// shard. `Copy` on purpose: records pass through channels and rings
/// without allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestTrace {
    /// Wire trace id (client-provided or server-generated); never 0.
    pub trace_id: u64,
    /// The request id the client used on the wire.
    pub request_id: u64,
    /// Shard that served the request.
    pub shard: u16,
    /// Operand width of the batch.
    pub nbits: u8,
    /// Operand pairs in the batch.
    pub ops: u32,
    /// Ops that paid the `ER` recovery bubble (the paper's variable
    /// latency showing up as service time).
    pub stalls: u32,
    /// Ops served by the exact fallback path.
    pub exact_ops: u32,
    /// Modeled device cycles the batch consumed.
    pub cycles: u64,
    /// Enqueue time, µs since the server's epoch.
    pub start_us: u64,
    /// Time in the shard queue before batch formation began.
    pub queue_us: u32,
    /// Time inside the adaptive batcher's forming/linger window.
    pub linger_us: u32,
    /// `ResilientPipeline` compute time for this request's ops.
    pub service_us: u32,
    /// Modeled device pacing the whole batch waited out.
    pub pace_us: u32,
    /// Response serialization onto the client socket.
    pub write_us: u32,
}

/// Span names of the five phases, in causal order.
pub const PHASES: [&str; 5] = [
    "queue_wait",
    "batch_linger",
    "service",
    "device_pace",
    "write_back",
];

impl RequestTrace {
    /// Total server-side latency: the exact sum of the five phases.
    pub fn total_us(&self) -> u64 {
        self.queue_us as u64
            + self.linger_us as u64
            + self.service_us as u64
            + self.pace_us as u64
            + self.write_us as u64
    }

    /// Phase durations in [`PHASES`] order.
    pub fn phase_durations_us(&self) -> [u64; 5] {
        [
            self.queue_us as u64,
            self.linger_us as u64,
            self.service_us as u64,
            self.pace_us as u64,
            self.write_us as u64,
        ]
    }

    /// The span tree as JSON: request metadata plus one span per phase
    /// with `start_us` offsets relative to enqueue. Trace and request
    /// ids are decimal strings (they are opaque 64-bit tokens a JSON
    /// double cannot always hold).
    pub fn to_json(&self) -> Json {
        let mut spans = Vec::with_capacity(PHASES.len());
        let mut offset = 0u64;
        for (name, dur) in PHASES.iter().zip(self.phase_durations_us()) {
            spans.push(
                Json::obj()
                    .set("name", *name)
                    .set("start_us", offset)
                    .set("dur_us", dur),
            );
            offset += dur;
        }
        Json::obj()
            .set("trace_id", self.trace_id.to_string())
            .set("request_id", self.request_id.to_string())
            .set("shard", self.shard as u64)
            .set("nbits", self.nbits as u64)
            .set("ops", self.ops as u64)
            .set("stalls", self.stalls as u64)
            .set("exact_ops", self.exact_ops as u64)
            .set("cycles", self.cycles)
            .set("start_us", self.start_us)
            .set("total_us", self.total_us())
            .set("spans", Json::Arr(spans))
    }

    /// Chrome trace-event export: a root `request` span with the five
    /// phases nested under it, on `tid = shard`. Loads directly in
    /// `chrome://tracing` / Perfetto.
    pub fn chrome_json(&self) -> Json {
        let mut events = Vec::with_capacity(PHASES.len() + 1);
        let root = Json::obj()
            .set("name", "request")
            .set("cat", "server")
            .set("ph", "X")
            .set("ts", self.start_us)
            .set("dur", self.total_us())
            .set("pid", 1u64)
            .set("tid", self.shard as u64)
            .set(
                "args",
                Json::obj()
                    .set("trace_id", self.trace_id.to_string())
                    .set("request_id", self.request_id.to_string())
                    .set("ops", self.ops as u64)
                    .set("stalls", self.stalls as u64)
                    .set("exact_ops", self.exact_ops as u64)
                    .set("cycles", self.cycles),
            );
        events.push(root);
        let mut offset = self.start_us;
        for (name, dur) in PHASES.iter().zip(self.phase_durations_us()) {
            events.push(
                Json::obj()
                    .set("name", *name)
                    .set("cat", "server")
                    .set("ph", "X")
                    .set("ts", offset)
                    .set("dur", dur)
                    .set("pid", 1u64)
                    .set("tid", self.shard as u64)
                    .set("args", Json::obj()),
            );
            offset += dur;
        }
        Json::obj()
            .set("displayTimeUnit", "ms")
            .set("traceEvents", Json::Arr(events))
    }
}

/// A bounded, non-destructive ring of completed [`RequestTrace`]s.
///
/// Unlike the flight recorder, reading does not consume: `/trace/{id}`
/// and exemplar lookups can fetch the same trace repeatedly until it is
/// evicted by newer recordings. Only *sampled* requests are recorded, so
/// a short mutex is plenty.
///
/// # Examples
///
/// ```
/// use vlsa_trace::{RequestTrace, TraceRing};
///
/// let ring = TraceRing::new(4);
/// ring.record(RequestTrace {
///     trace_id: 7,
///     queue_us: 3,
///     service_us: 5,
///     ..RequestTrace::default()
/// });
/// let t = ring.lookup(7).expect("recorded");
/// assert_eq!(t.total_us(), 8);
/// assert!(ring.lookup(7).is_some()); // reads do not consume
/// ```
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<VecDeque<RequestTrace>>,
    capacity: usize,
}

impl TraceRing {
    /// A ring retaining up to `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring lock").len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a completed trace, evicting the oldest when full.
    pub fn record(&self, trace: RequestTrace) {
        let mut ring = self.inner.lock().expect("trace ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Finds the most recent trace with the given id, without consuming
    /// it.
    pub fn lookup(&self, trace_id: u64) -> Option<RequestTrace> {
        let ring = self.inner.lock().expect("trace ring lock");
        ring.iter().rev().find(|t| t.trace_id == trace_id).copied()
    }

    /// The most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<RequestTrace> {
        let ring = self.inner.lock().expect("trace ring lock");
        ring.iter().rev().take(n).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> RequestTrace {
        RequestTrace {
            trace_id: id,
            request_id: id * 10,
            shard: 2,
            nbits: 64,
            ops: 8,
            stalls: 3,
            exact_ops: 1,
            cycles: 11,
            start_us: 100,
            queue_us: 5,
            linger_us: 7,
            service_us: 11,
            pace_us: 2,
            write_us: 1,
        }
    }

    #[test]
    fn phases_sum_to_total() {
        let t = trace(1);
        assert_eq!(t.total_us(), 5 + 7 + 11 + 2 + 1);
        assert_eq!(t.phase_durations_us().iter().sum::<u64>(), t.total_us());
    }

    #[test]
    fn json_span_tree_is_contiguous() {
        let doc = Json::parse(&trace(9).to_json().to_string()).expect("valid JSON");
        assert_eq!(doc.get("trace_id").and_then(Json::as_str), Some("9"));
        assert_eq!(doc.get("total_us").and_then(Json::as_u64), Some(26));
        let spans = doc.get("spans").and_then(Json::as_arr).expect("spans");
        assert_eq!(spans.len(), PHASES.len());
        let mut expected_start = 0;
        for (span, name) in spans.iter().zip(PHASES) {
            assert_eq!(span.get("name").and_then(Json::as_str), Some(name));
            assert_eq!(
                span.get("start_us").and_then(Json::as_u64),
                Some(expected_start)
            );
            expected_start += span.get("dur_us").and_then(Json::as_u64).expect("dur");
        }
        assert_eq!(expected_start, 26);
    }

    #[test]
    fn chrome_export_nests_phases_under_root() {
        let doc = Json::parse(&trace(3).chrome_json().to_string()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        assert_eq!(events.len(), PHASES.len() + 1);
        let root = &events[0];
        assert_eq!(root.get("name").and_then(Json::as_str), Some("request"));
        assert_eq!(root.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(root.get("ts").and_then(Json::as_u64), Some(100));
        assert_eq!(root.get("dur").and_then(Json::as_u64), Some(26));
        // Phase spans tile the root exactly.
        let mut cursor = 100;
        for ev in &events[1..] {
            assert_eq!(ev.get("ts").and_then(Json::as_u64), Some(cursor));
            cursor += ev.get("dur").and_then(Json::as_u64).expect("dur");
        }
        assert_eq!(cursor, 126);
    }

    #[test]
    fn ring_lookup_is_non_destructive_and_bounded() {
        let ring = TraceRing::new(3);
        for id in 1..=5 {
            ring.record(trace(id));
        }
        assert_eq!(ring.len(), 3);
        assert!(ring.lookup(1).is_none(), "evicted");
        assert!(ring.lookup(2).is_none(), "evicted");
        for _ in 0..3 {
            assert_eq!(ring.lookup(4).map(|t| t.request_id), Some(40));
        }
        let recent: Vec<u64> = ring.recent(2).iter().map(|t| t.trace_id).collect();
        assert_eq!(recent, vec![5, 4]);
    }

    #[test]
    fn lookup_prefers_the_most_recent_duplicate() {
        let ring = TraceRing::new(4);
        let mut first = trace(7);
        first.ops = 1;
        ring.record(first);
        let mut second = trace(7);
        second.ops = 99;
        ring.record(second);
        assert_eq!(ring.lookup(7).map(|t| t.ops), Some(99));
    }
}
