//! A general Value Change Dump (VCD) writer.
//!
//! Produces the standard IEEE 1364 VCD text any waveform viewer
//! (GTKWave, Surfer, …) opens. Unlike `vlsa-seq`'s recorder — which is
//! married to sequential circuits — this writer is a plain sink: declare
//! wires (scalar or vector), then feed timestamped value changes from
//! whatever produced them (the gate-level simulator, the pipeline model,
//! a fault campaign). Only actual changes are emitted, so dumping every
//! net of a netlist per cycle stays compact.
//!
//! ```text
//! $timescale 1ns $end        one timestep == one simulated cycle
//! $scope module <name> $end
//! $var wire 1 ! stall $end   scalar
//! $var wire 64 " sum [63:0] $end
//! ...
//! #0
//! 0!
//! b1010 "
//! ```

use std::fmt::Write as _;

/// Handle to a declared VCD signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcdId(usize);

struct VcdSignal {
    width: u32,
    ident: String,
    last: Option<u64>,
}

/// Streaming VCD document builder.
///
/// # Examples
///
/// ```
/// use vlsa_trace::VcdWriter;
///
/// let mut vcd = VcdWriter::new("dut");
/// let stall = vcd.wire("stall", 1);
/// let sum = vcd.wire("sum", 8);
/// vcd.timestamp(0);
/// vcd.change(stall, 0);
/// vcd.change(sum, 0x2A);
/// vcd.timestamp(1);
/// vcd.change(stall, 1);
/// let text = vcd.finish(2);
/// assert!(text.contains("$var wire 8"));
/// assert!(text.contains("b101010"));
/// ```
#[derive(Debug)]
pub struct VcdWriter {
    module: String,
    signals: Vec<VcdSignal>,
    names: Vec<String>,
    body: String,
    sealed: bool,
    last_ts: Option<u64>,
    ts_pending: Option<u64>,
}

impl std::fmt::Debug for VcdSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcdSignal")
            .field("width", &self.width)
            .field("ident", &self.ident)
            .finish()
    }
}

/// Short printable VCD identifier for signal index `i` (base 94, the
/// printable ASCII range `!`..`~`).
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from_u32(33 + (i % 94) as u32).expect("printable"));
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// Replaces characters VCD identifiers dislike with underscores, keeping
/// bus indices readable (`a[3]` → `a_3_`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl VcdWriter {
    /// A writer for one module scope, timescale 1 ns (one timestep per
    /// simulated cycle).
    pub fn new(module: &str) -> VcdWriter {
        VcdWriter {
            module: sanitize(module),
            signals: Vec::new(),
            names: Vec::new(),
            body: String::new(),
            sealed: false,
            last_ts: None,
            ts_pending: None,
        }
    }

    /// Declares a wire of `width` bits (1 ..= 64) and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if a timestamp has already been written (declarations must
    /// precede the value-change section) or if `width` is 0 or > 64.
    pub fn wire(&mut self, name: &str, width: u32) -> VcdId {
        assert!(!self.sealed, "declare wires before the first timestamp");
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let id = VcdId(self.signals.len());
        self.signals.push(VcdSignal {
            width,
            ident: ident(id.0),
            last: None,
        });
        self.names.push(sanitize(name));
        id
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Starts (or advances to) timestep `t`. Changes recorded after this
    /// call belong to `#t`. Idempotent for repeated equal `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` moves backwards.
    pub fn timestamp(&mut self, t: u64) {
        if let Some(last) = self.last_ts {
            assert!(t >= last, "timestamps must be monotonic ({t} < {last})");
            if t == last {
                return;
            }
        }
        self.sealed = true;
        self.ts_pending = Some(t);
        self.last_ts = Some(t);
    }

    /// Records `value` on `signal` at the current timestep; emits output
    /// only if the value differs from the signal's previous value.
    ///
    /// # Panics
    ///
    /// Panics if no [`VcdWriter::timestamp`] was set yet.
    pub fn change(&mut self, signal: VcdId, value: u64) {
        assert!(self.sealed, "call timestamp() before change()");
        let sig = &mut self.signals[signal.0];
        let masked = if sig.width == 64 {
            value
        } else {
            value & ((1u64 << sig.width) - 1)
        };
        if sig.last == Some(masked) {
            return;
        }
        sig.last = Some(masked);
        if let Some(t) = self.ts_pending.take() {
            let _ = writeln!(self.body, "#{t}");
        }
        if sig.width == 1 {
            let _ = writeln!(self.body, "{}{}", masked & 1, sig.ident);
        } else {
            let _ = writeln!(self.body, "b{masked:b} {}", sig.ident);
        }
    }

    /// Emits a `$comment` block into the value-change stream — used to
    /// annotate injected faults at the cycle they are active.
    pub fn comment(&mut self, text: &str) {
        if let Some(t) = self.ts_pending.take() {
            let _ = writeln!(self.body, "#{t}");
        }
        // '$end' inside the text would terminate the block early.
        let clean = text.replace("$end", "end");
        let _ = writeln!(self.body, "$comment {clean} $end");
    }

    /// Finishes the document, closing it with a final `#end_ts` marker,
    /// and returns the full VCD text.
    pub fn finish(self, end_ts: u64) -> String {
        let mut out = String::with_capacity(self.body.len() + 64 * self.signals.len());
        let _ = writeln!(out, "$date vlsa-trace $end");
        let _ = writeln!(out, "$version vlsa-trace 0.1 $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (sig, name) in self.signals.iter().zip(&self.names) {
            if sig.width == 1 {
                let _ = writeln!(out, "$var wire 1 {} {} $end", sig.ident, name);
            } else {
                let _ = writeln!(
                    out,
                    "$var wire {} {} {} [{}:0] $end",
                    sig.width,
                    sig.ident,
                    name,
                    sig.width - 1
                );
            }
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        let _ = writeln!(out, "#{end_ts}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_changes_follow_spec() {
        let mut vcd = VcdWriter::new("adder!");
        let s = vcd.wire("stall", 1);
        let bus = vcd.wire("s[3]", 4);
        vcd.timestamp(0);
        vcd.change(s, 0);
        vcd.change(bus, 0b1010);
        vcd.timestamp(1);
        vcd.change(s, 1);
        vcd.change(bus, 0b1010); // unchanged: no output
        let text = vcd.finish(2);
        assert!(text.contains("$scope module adder_ $end"));
        assert!(text.contains("$var wire 1 ! stall $end"));
        assert!(text.contains("$var wire 4 \" s_3_ [3:0] $end"));
        assert!(text.contains("#0\n0!\nb1010 \"\n#1\n1!\n#2\n"), "{text}");
    }

    #[test]
    fn values_are_masked_to_width() {
        let mut vcd = VcdWriter::new("m");
        let w = vcd.wire("x", 2);
        vcd.timestamp(0);
        vcd.change(w, 0b111); // masked to 0b11
        let text = vcd.finish(1);
        assert!(text.contains("b11 !"), "{text}");
    }

    #[test]
    fn repeated_timestamp_is_idempotent_and_lazy() {
        let mut vcd = VcdWriter::new("m");
        let w = vcd.wire("x", 1);
        vcd.timestamp(0);
        vcd.change(w, 1);
        vcd.timestamp(5); // no changes at #5: the marker never appears
        vcd.timestamp(5);
        let text = vcd.finish(6);
        assert!(text.contains("#0\n1!"));
        assert!(!text.contains("#5\n"), "{text}");
        assert!(text.ends_with("#6\n"));
    }

    #[test]
    fn comments_are_injected_in_stream() {
        let mut vcd = VcdWriter::new("m");
        let w = vcd.wire("x", 1);
        vcd.timestamp(3);
        vcd.comment("stuck-at-1 on n42 $end sneaky");
        vcd.change(w, 1);
        let text = vcd.finish(4);
        assert!(
            text.contains("#3\n$comment stuck-at-1 on n42 end sneaky $end\n1!"),
            "{text}"
        );
    }

    #[test]
    fn identifiers_stay_unique_past_94_signals() {
        let mut vcd = VcdWriter::new("many");
        let ids: Vec<VcdId> = (0..200).map(|i| vcd.wire(&format!("w{i}"), 1)).collect();
        vcd.timestamp(0);
        for &id in &ids {
            vcd.change(id, 1);
        }
        let text = vcd.finish(1);
        let mut idents: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).expect("ident"))
            .collect();
        assert_eq!(idents.len(), 200);
        idents.sort_unstable();
        idents.dedup();
        assert_eq!(idents.len(), 200);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn backwards_time_rejected() {
        let mut vcd = VcdWriter::new("m");
        let _ = vcd.wire("x", 1);
        vcd.timestamp(5);
        vcd.timestamp(4);
    }

    #[test]
    #[should_panic(expected = "before the first timestamp")]
    fn late_declaration_rejected() {
        let mut vcd = VcdWriter::new("m");
        let _ = vcd.wire("x", 1);
        vcd.timestamp(0);
        let _ = vcd.wire("y", 1);
    }
}
