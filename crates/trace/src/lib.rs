//! # vlsa-trace
//!
//! Cycle-accurate tracing for the VLSA workspace: where `vlsa-telemetry`
//! answers *how often* (counters, histograms), this crate answers *when
//! and why* — which operand pair mispredicted, where a stall bubble
//! started, what every net did on the cycle a fault was injected.
//!
//! Three cooperating pieces:
//!
//! - **Flight recorder** ([`FlightRecorder`]): a lock-free bounded ring
//!   of [`TraceEvent`]s. Bounded memory, safe to leave always-on, and
//!   drained on demand (end of run, or the moment an error is flagged).
//! - **Chrome trace export** ([`chrome_trace`]): drained events become a
//!   `trace.json` loadable in `chrome://tracing` / Perfetto, with
//!   operand arguments encoded losslessly so [`extract_ops`] can replay
//!   the exact workload.
//! - **VCD export** ([`VcdWriter`]): a general waveform writer for
//!   GTKWave-compatible dumps; `vlsa-sim` uses it to record every net of
//!   a netlist per simulated cycle, faults included.
//!
//! ## Design rules (inherited from `vlsa-telemetry`)
//!
//! - **Off by default, ~free when off.** Instrumented code guards every
//!   hook with [`is_enabled`]: one relaxed atomic load and nothing else.
//! - **No allocation on the hot path.** [`TraceEvent`] is `Copy` with
//!   `&'static str` names; the ring never grows.
//! - **No dependencies.** JSON is `vlsa_telemetry::Json`; everything
//!   else is hand-rolled std.
//!
//! ## Usage
//!
//! ```
//! let scope = vlsa_trace::ScopedTrace::install(64);
//! vlsa_trace::record(vlsa_trace::TraceEvent::complete("op", "demo", 0, 1));
//! let events = scope.drain();
//! assert_eq!(events.len(), 1);
//! let doc = vlsa_trace::chrome_trace(&events);
//! assert!(doc.to_string().contains("traceEvents"));
//! ```

mod chrome;
mod replay;
pub mod request;
mod ring;
mod span;
mod vcd;

pub use chrome::{arg_u64, chrome_trace};
pub use replay::{extract_ops, RecordedOp, ReplayError};
pub use request::{RequestTrace, TraceRing};
pub use ring::FlightRecorder;
pub use span::{names, Phase, TraceEvent, MAX_ARGS};
pub use vcd::{VcdId, VcdWriter};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn active_recorder() -> &'static RwLock<Option<Arc<FlightRecorder>>> {
    static ACTIVE: OnceLock<RwLock<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| RwLock::new(None))
}

/// Whether tracing is enabled: the one relaxed atomic load instrumented
/// hot paths pay when tracing is off.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-wide event destination and turns
/// tracing on. Returns the previously installed recorder, if any.
pub fn install(recorder: Arc<FlightRecorder>) -> Option<Arc<FlightRecorder>> {
    let previous = active_recorder()
        .write()
        .expect("trace lock")
        .replace(recorder);
    ENABLED.store(true, Ordering::Relaxed);
    previous
}

/// Turns tracing off and removes the installed recorder, returning it.
pub fn uninstall() -> Option<Arc<FlightRecorder>> {
    ENABLED.store(false, Ordering::Relaxed);
    active_recorder().write().expect("trace lock").take()
}

/// The installed flight recorder, if tracing is active.
///
/// Instrumented loops should resolve this once up front and reuse the
/// handle, exactly like `vlsa_telemetry::recorder()` call sites do.
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    if !is_enabled() {
        return None;
    }
    active_recorder()
        .read()
        .expect("trace lock")
        .as_ref()
        .map(Arc::clone)
}

/// Records one event into the installed recorder. No-op while tracing
/// is disabled.
pub fn record(event: TraceEvent) {
    if let Some(rec) = recorder() {
        rec.record(event);
    }
}

/// Guard that installs a fresh flight recorder for its lifetime and
/// restores the previous state on drop — the tracing counterpart of
/// [`vlsa_telemetry::ScopedRecorder`].
///
/// The redirection is process-global; concurrent scopes on different
/// threads interleave, so tests that rely on exact event sets should
/// serialize.
#[derive(Debug)]
pub struct ScopedTrace {
    recorder: Arc<FlightRecorder>,
    previous: Option<Arc<FlightRecorder>>,
}

impl ScopedTrace {
    /// Installs a fresh recorder with the given capacity and enables
    /// tracing.
    pub fn install(capacity: usize) -> ScopedTrace {
        let recorder = Arc::new(FlightRecorder::new(capacity));
        let previous = install(Arc::clone(&recorder));
        ScopedTrace { recorder, previous }
    }

    /// The recorder this scope traces into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Drains everything recorded in this scope so far.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.recorder.drain()
    }
}

impl Drop for ScopedTrace {
    fn drop(&mut self) {
        let mut active = active_recorder().write().expect("trace lock");
        *active = self.previous.take();
        if active.is_none() {
            ENABLED.store(false, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Global-state tests must not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_by_default_and_record_is_noop() {
        let _guard = serial();
        assert!(!is_enabled());
        record(TraceEvent::instant("lost", "t", 0));
        assert!(recorder().is_none());
    }

    #[test]
    fn scoped_trace_captures_and_restores() {
        let _guard = serial();
        {
            let scope = ScopedTrace::install(16);
            assert!(is_enabled());
            record(TraceEvent::instant("seen", "t", 1));
            let events = scope.drain();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].name, "seen");
        }
        assert!(!is_enabled());
        record(TraceEvent::instant("after", "t", 2));
        assert!(recorder().is_none());
    }

    #[test]
    fn nested_scopes_restore_in_order() {
        let _guard = serial();
        let outer = ScopedTrace::install(16);
        record(TraceEvent::instant("outer", "t", 0));
        {
            let inner = ScopedTrace::install(16);
            record(TraceEvent::instant("inner", "t", 1));
            assert_eq!(inner.drain().len(), 1);
        }
        assert!(is_enabled());
        record(TraceEvent::instant("outer2", "t", 2));
        assert_eq!(outer.drain().len(), 2);
        drop(outer);
        assert!(!is_enabled());
    }

    #[test]
    fn install_uninstall_round_trip() {
        let _guard = serial();
        let rec = Arc::new(FlightRecorder::new(8));
        assert!(install(Arc::clone(&rec)).is_none());
        assert!(is_enabled());
        record(TraceEvent::instant("x", "t", 0));
        let back = uninstall().expect("was installed");
        assert!(!is_enabled());
        assert_eq!(back.drain().len(), 1);
    }
}
