//! The trace event model: fixed-size, allocation-free records.
//!
//! A [`TraceEvent`] is a `Copy` value small enough to push through the
//! lock-free [`crate::FlightRecorder`] without touching the heap. Names,
//! categories, and argument keys are `&'static str` by design: the hot
//! path (one event per pipeline operation) must not format or allocate.
//!
//! Timestamps are plain `u64`s in whatever unit the producer uses —
//! the VLSA pipeline uses *clock cycles*, which keeps traces bit-for-bit
//! deterministic and replayable. The Chrome exporter maps one unit to
//! one microsecond so Perfetto renders cycles directly.

use std::fmt;

/// Maximum key/value arguments a single event can carry.
pub const MAX_ARGS: usize = 6;

/// Well-known span names the workspace's instrumented code emits, so
/// exporters, tests, and trace consumers agree on spellings.
///
/// The pipeline emits [`names::OP`] / [`names::SPECULATE`] /
/// [`names::DETECT`] / [`names::RECOVER`] / [`names::STALL`]
/// (category `"pipeline"` or `"queue"`); the resilience layer adds
/// [`names::RESIDUE_RETRY`] / [`names::ESCALATE`] /
/// [`names::WATCHDOG`] / [`names::DEGRADE`] / [`names::EXACT_OP`]
/// (category `"resilience"`); the conformance monitor adds
/// [`names::WINDOW`] / [`names::ALERT`] (category `"monitor"`).
pub mod names {
    /// One completed operation (the replay source).
    pub const OP: &str = "op";
    /// The single-cycle speculative attempt.
    pub const SPECULATE: &str = "speculate";
    /// The `ER` detector fired.
    pub const DETECT: &str = "detect";
    /// The recovery cycle rebuilding the exact sum.
    pub const RECOVER: &str = "recover";
    /// A stall bubble (`STALL` high).
    pub const STALL: &str = "stall";
    /// A queued arrival was dropped (issue-stage stall).
    pub const DROP: &str = "drop";
    /// The residue checker rejected a delivered sum; the op re-runs.
    pub const RESIDUE_RETRY: &str = "residue_retry";
    /// Retries exhausted: the op escalated to the exact fallback path.
    pub const ESCALATE: &str = "escalate";
    /// The recovery watchdog bounded a stall and forced the fallback.
    pub const WATCHDOG: &str = "watchdog";
    /// The pipeline crossed the degradation threshold and switched to
    /// the exact adder for the rest of the stream.
    pub const DEGRADE: &str = "degrade";
    /// An operation served by the exact path while degraded.
    pub const EXACT_OP: &str = "exact_op";
    /// The conformance monitor raised a drift alert (category
    /// `"monitor"`): live traffic no longer matches the uniform-operand
    /// model the speculation window was sized against.
    pub const ALERT: &str = "alert";
    /// The conformance monitor closed and evaluated one sliding window
    /// (category `"monitor"`).
    pub const WINDOW: &str = "window";
    /// An SLO burn-rate rule transitioned (fired or cleared) — category
    /// `"slo"`, emitted by `vlsa-slo`'s engine.
    pub const SLO_BURN: &str = "slo_burn";
}

/// Chrome trace-event phase of a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A complete span: `ts` .. `ts + dur` (Chrome `"X"`).
    Complete,
    /// A point-in-time marker (Chrome `"i"`).
    Instant,
    /// A sampled counter value (Chrome `"C"`); the value rides in the
    /// event's arguments.
    Counter,
}

impl Phase {
    /// The Chrome trace-event `ph` letter.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One traced span, marker, or counter sample.
///
/// # Examples
///
/// ```
/// use vlsa_trace::TraceEvent;
///
/// let ev = TraceEvent::complete("op", "pipeline", 10, 2)
///     .on_track(1)
///     .arg("i", 7)
///     .arg("err", 1);
/// assert_eq!(ev.ts, 10);
/// assert_eq!(ev.dur, 2);
/// assert_eq!(ev.args(), &[("i", 7), ("err", 1)]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (the span label in a viewer).
    pub name: &'static str,
    /// Category, e.g. `"pipeline"` or `"sim"`.
    pub cat: &'static str,
    /// Event phase.
    pub ph: Phase,
    /// Start timestamp (cycles for the VLSA pipeline).
    pub ts: u64,
    /// Duration for [`Phase::Complete`] events; 0 otherwise.
    pub dur: u64,
    /// Track (Chrome `tid`) the event renders on.
    pub track: u32,
    nargs: u8,
    args: [(&'static str, u64); MAX_ARGS],
}

impl TraceEvent {
    fn new(name: &'static str, cat: &'static str, ph: Phase, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat,
            ph,
            ts,
            dur,
            track: 0,
            nargs: 0,
            args: [("", 0); MAX_ARGS],
        }
    }

    /// A complete span covering `ts .. ts + dur`.
    pub fn complete(name: &'static str, cat: &'static str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent::new(name, cat, Phase::Complete, ts, dur)
    }

    /// An instantaneous marker at `ts`.
    pub fn instant(name: &'static str, cat: &'static str, ts: u64) -> TraceEvent {
        TraceEvent::new(name, cat, Phase::Instant, ts, 0)
    }

    /// A counter sample: `name` takes `value` at `ts`.
    pub fn counter(name: &'static str, cat: &'static str, ts: u64, value: u64) -> TraceEvent {
        TraceEvent::new(name, cat, Phase::Counter, ts, 0).arg("value", value)
    }

    /// Moves the event onto a different display track.
    pub fn on_track(mut self, track: u32) -> TraceEvent {
        self.track = track;
        self
    }

    /// Attaches a key/value argument.
    ///
    /// # Panics
    ///
    /// Panics if the event already carries [`MAX_ARGS`] arguments — a
    /// programming error at the instrumentation site, not a runtime
    /// condition.
    pub fn arg(mut self, key: &'static str, value: u64) -> TraceEvent {
        let n = self.nargs as usize;
        assert!(n < MAX_ARGS, "TraceEvent `{}` has too many args", self.name);
        self.args[n] = (key, value);
        self.nargs += 1;
        self
    }

    /// The attached arguments, in insertion order.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.nargs as usize]
    }

    /// Looks up an argument by key.
    pub fn get_arg(&self, key: &str) -> Option<u64> {
        self.args().iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} @{}",
            self.cat,
            self.ph.code(),
            self.name,
            self.ts
        )?;
        if self.ph == Phase::Complete {
            write!(f, "+{}", self.dur)?;
        }
        for (k, v) in self.args() {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_phase_and_fields() {
        let c = TraceEvent::complete("a", "x", 5, 3);
        assert_eq!(c.ph, Phase::Complete);
        assert_eq!((c.ts, c.dur), (5, 3));
        let i = TraceEvent::instant("b", "x", 9);
        assert_eq!(i.ph, Phase::Instant);
        assert_eq!(i.dur, 0);
        let k = TraceEvent::counter("depth", "x", 2, 4);
        assert_eq!(k.ph, Phase::Counter);
        assert_eq!(k.get_arg("value"), Some(4));
    }

    #[test]
    fn args_accumulate_in_order() {
        let ev = TraceEvent::instant("e", "c", 0).arg("a", 1).arg("b", 2);
        assert_eq!(ev.args(), &[("a", 1), ("b", 2)]);
        assert_eq!(ev.get_arg("b"), Some(2));
        assert_eq!(ev.get_arg("nope"), None);
    }

    #[test]
    #[should_panic(expected = "too many args")]
    fn arg_overflow_panics() {
        let mut ev = TraceEvent::instant("e", "c", 0);
        for _ in 0..=MAX_ARGS {
            ev = ev.arg("k", 0);
        }
    }

    #[test]
    fn display_is_compact() {
        let ev = TraceEvent::complete("op", "pipeline", 3, 1).arg("i", 0);
        let s = ev.to_string();
        assert!(s.contains("[pipeline] X op @3+1 i=0"), "{s}");
    }

    #[test]
    fn phase_codes_match_chrome() {
        assert_eq!(Phase::Complete.code(), "X");
        assert_eq!(Phase::Instant.code(), "i");
        assert_eq!(Phase::Counter.code(), "C");
    }
}
