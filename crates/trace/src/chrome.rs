//! Chrome trace-event JSON export.
//!
//! Serializes drained [`TraceEvent`]s into the JSON Object Format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load: a
//! top-level object with a `traceEvents` array. One trace timestamp unit
//! maps to one microsecond, so VLSA cycle counts render directly as a
//! timeline.
//!
//! Argument values are `u64`s that may exceed 2^53 (full-width
//! operands), which a JSON double cannot hold exactly. Values at or
//! below 2^53 serialize as numbers; larger values serialize as decimal
//! strings. [`arg_u64`] reads either form back losslessly, which is what
//! makes replay from a captured trace bit-for-bit exact.

use crate::{Phase, TraceEvent};
use vlsa_telemetry::Json;

/// Largest u64 a JSON double represents exactly.
const MAX_EXACT_F64: u64 = 1 << 53;

fn arg_json(value: u64) -> Json {
    if value <= MAX_EXACT_F64 {
        Json::from(value)
    } else {
        Json::from(value.to_string())
    }
}

/// Reads a `u64` argument written by [`chrome_trace`], accepting both
/// the numeric and the decimal-string encoding.
pub fn arg_u64(args: &Json, key: &str) -> Option<u64> {
    let v = args.get(key)?;
    v.as_u64().or_else(|| v.as_str()?.parse().ok())
}

fn event_json(event: &TraceEvent) -> Json {
    let mut args = Json::obj();
    for (k, v) in event.args() {
        args = args.set(*k, arg_json(*v));
    }
    let mut doc = Json::obj()
        .set("name", event.name)
        .set("cat", event.cat)
        .set("ph", event.ph.code())
        .set("ts", event.ts)
        .set("pid", 1u64)
        .set("tid", event.track as u64);
    if event.ph == Phase::Complete {
        doc = doc.set("dur", event.dur);
    }
    if event.ph == Phase::Instant {
        doc = doc.set("s", "t"); // thread-scoped marker
    }
    doc.set("args", args)
}

/// Builds the Chrome trace document for a batch of events.
///
/// The returned object carries `traceEvents` plus a `displayTimeUnit`;
/// callers may `.set` extra top-level metadata (the `trace` binary
/// stores the workload parameters there so `--replay` can reconstruct
/// the run).
///
/// # Examples
///
/// ```
/// use vlsa_trace::{chrome_trace, TraceEvent};
///
/// let events = vec![TraceEvent::complete("op", "pipeline", 0, 1).arg("i", 0)];
/// let doc = chrome_trace(&events);
/// let text = doc.to_string();
/// assert!(text.contains("\"traceEvents\""));
/// assert!(text.contains("\"ph\":\"X\""));
/// ```
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    Json::obj().set("displayTimeUnit", "ms").set(
        "traceEvents",
        Json::Arr(events.iter().map(event_json).collect()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_round_trips() {
        let events = vec![
            TraceEvent::complete("op", "pipeline", 5, 2)
                .arg("a", u64::MAX)
                .arg("b", 7),
            TraceEvent::instant("detect", "pipeline", 6),
            TraceEvent::counter("queue_depth", "pipeline", 6, 3),
        ];
        let text = chrome_trace(&events).to_string();
        let doc = Json::parse(&text).expect("valid JSON");
        let list = doc.get("traceEvents").and_then(Json::as_arr).expect("arr");
        assert_eq!(list.len(), 3);

        let op = &list[0];
        assert_eq!(op.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(op.get("ts").and_then(Json::as_u64), Some(5));
        assert_eq!(op.get("dur").and_then(Json::as_u64), Some(2));
        let args = op.get("args").expect("args");
        // u64::MAX exceeds 2^53: stored as a string, read back exactly.
        assert_eq!(
            args.get("a").and_then(Json::as_str),
            Some("18446744073709551615")
        );
        assert_eq!(arg_u64(args, "a"), Some(u64::MAX));
        assert_eq!(arg_u64(args, "b"), Some(7));
        assert_eq!(arg_u64(args, "missing"), None);

        assert_eq!(list[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(list[1].get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(list[2].get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            arg_u64(list[2].get("args").expect("args"), "value"),
            Some(3)
        );
    }

    #[test]
    fn small_args_stay_numeric() {
        let events = vec![TraceEvent::instant("e", "c", 0).arg("v", 123)];
        let doc = chrome_trace(&events);
        let args = doc.get("traceEvents").and_then(Json::as_arr).expect("arr")[0]
            .get("args")
            .expect("args");
        assert_eq!(args.get("v").and_then(Json::as_u64), Some(123));
    }

    #[test]
    fn track_becomes_tid() {
        let events = vec![TraceEvent::instant("e", "c", 0).on_track(4)];
        let doc = chrome_trace(&events);
        let ev = &doc.get("traceEvents").and_then(Json::as_arr).expect("arr")[0];
        assert_eq!(ev.get("tid").and_then(Json::as_u64), Some(4));
        assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
    }
}
