//! Port analysis shared by the HDL emitters: grouping `name[i]` bit
//! ports into HDL vector ports and legalizing identifiers.

use std::collections::BTreeMap;
use vlsa_netlist::NetId;

/// A port in the emitted HDL interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Port {
    /// A single-bit port.
    Scalar {
        /// Legalized port name.
        name: String,
        /// The net carrying the bit.
        net: NetId,
    },
    /// A multi-bit vector port, LSB first.
    Vector {
        /// Legalized base name.
        name: String,
        /// The nets for bits `0..width`.
        nets: Vec<NetId>,
    },
}

impl Port {
    /// The port's name.
    pub fn name(&self) -> &str {
        match self {
            Port::Scalar { name, .. } | Port::Vector { name, .. } => name,
        }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        match self {
            Port::Scalar { .. } => 1,
            Port::Vector { nets, .. } => nets.len(),
        }
    }
}

/// Replaces characters illegal in HDL identifiers and guards leading
/// digits.
pub fn legalize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'p');
    }
    out
}

/// Splits `name[idx]` into its base and index, if it has that shape.
fn split_indexed(name: &str) -> Option<(&str, usize)> {
    let open = name.find('[')?;
    let close = name.strip_suffix(']')?;
    let idx: usize = close[open + 1..].parse().ok()?;
    Some((&name[..open], idx))
}

/// Groups a flat `(name, net)` port list into scalar and vector ports.
///
/// Bits named `base[i]` with a contiguous index range `0..w` become one
/// vector; anything else stays scalar (with its brackets legalized).
pub fn group_ports(flat: &[(String, NetId)]) -> Vec<Port> {
    let mut vectors: BTreeMap<&str, BTreeMap<usize, NetId>> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    let mut scalars: Vec<Port> = Vec::new();
    for (name, net) in flat {
        match split_indexed(name) {
            Some((base, idx)) => {
                if !vectors.contains_key(base) {
                    order.push(base);
                }
                vectors.entry(base).or_default().insert(idx, *net);
            }
            None => scalars.push(Port::Scalar {
                name: legalize(name),
                net: *net,
            }),
        }
    }
    let mut out: Vec<Port> = Vec::new();
    for base in order {
        let bits = &vectors[base];
        let contiguous = !bits.is_empty() && bits.keys().copied().eq(0..bits.len());
        if contiguous {
            out.push(Port::Vector {
                name: legalize(base),
                nets: bits.values().copied().collect(),
            });
        } else {
            // Sparse indices: fall back to scalars bit by bit.
            for (idx, net) in bits {
                out.push(Port::Scalar {
                    name: format!("{}_{idx}", legalize(base)),
                    net: *net,
                });
            }
        }
    }
    out.extend(scalars);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsa_netlist::Netlist;

    #[test]
    fn legalize_rules() {
        assert_eq!(legalize("a[0]"), "a_0_");
        assert_eq!(legalize("9lives"), "p9lives");
        assert_eq!(legalize("ok_name"), "ok_name");
        assert_eq!(legalize(""), "p");
    }

    #[test]
    fn groups_contiguous_bus() {
        let mut nl = Netlist::new("t");
        let bus = nl.input_bus("a", 3);
        let cin = nl.input("cin");
        let ports = group_ports(nl.primary_inputs());
        assert_eq!(ports.len(), 2);
        match &ports[0] {
            Port::Vector { name, nets } => {
                assert_eq!(name, "a");
                assert_eq!(nets.len(), 3);
                assert_eq!(nets[2], bus[2]);
            }
            other => panic!("expected vector, got {other:?}"),
        }
        assert_eq!(
            ports[1],
            Port::Scalar {
                name: "cin".into(),
                net: cin
            }
        );
        assert_eq!(ports[0].width(), 3);
        assert_eq!(ports[1].width(), 1);
        assert_eq!(ports[0].name(), "a");
    }

    #[test]
    fn sparse_indices_fall_back_to_scalars() {
        let mut nl = Netlist::new("t");
        let x = nl.input("x[0]");
        let y = nl.input("x[2]");
        let ports = group_ports(nl.primary_inputs());
        assert_eq!(
            ports,
            vec![
                Port::Scalar {
                    name: "x_0".into(),
                    net: x
                },
                Port::Scalar {
                    name: "x_2".into(),
                    net: y
                },
            ]
        );
    }

    #[test]
    fn non_numeric_brackets_stay_scalar() {
        let mut nl = Netlist::new("t");
        let x = nl.input("x[y]");
        let ports = group_ports(nl.primary_inputs());
        assert_eq!(
            ports,
            vec![Port::Scalar {
                name: "x_y_".into(),
                net: x
            }]
        );
    }
}
