//! HDL emission for VLSA netlists.
//!
//! The paper's flow generated VHDL from a C++ circuit generator and
//! synthesized it with a commercial tool. This crate is that last mile:
//! any [`vlsa_netlist::Netlist`] — baseline adders, the ACA, detectors,
//! the full VLSA — can be written out as structural VHDL
//! ([`to_vhdl`]) or Verilog ([`to_verilog`]) for use in an external
//! synthesis or simulation flow.
//!
//! Bit ports following the workspace convention `name[i]` are collapsed
//! into HDL vector ports; all other identifiers are legalized.
//!
//! # Examples
//!
//! ```
//! use vlsa_core::almost_correct_adder;
//! use vlsa_hdl::{to_verilog, to_vhdl};
//!
//! let aca = almost_correct_adder(16, 5);
//! let verilog = to_verilog(&aca);
//! assert!(verilog.contains("input [15:0] a;"));
//! let vhdl = to_vhdl(&aca);
//! assert!(vhdl.contains("a : in std_logic_vector(15 downto 0)"));
//! ```

mod ports;
mod testbench;
mod verilog;
mod vhdl;

pub use ports::{group_ports, legalize, Port};
pub use testbench::verilog_testbench;
pub use verilog::to_verilog;
pub use vhdl::to_vhdl;
