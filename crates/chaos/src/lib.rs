//! Fault injection for the VLSA serving stack.
//!
//! A [`FaultPlan`] is a small semicolon-separated DSL describing
//! *where* and *when* faults land:
//!
//! ```text
//! kill:shard=0@batch=5        panic shard 0's worker at its 5th batch
//! kill:shard=1@cycle=20000    panic once modeled cycles reach 20000
//! stall:shard=0@batch=3,ms=800  wedge the worker mid-batch for 800 ms
//! tear:every=4                client tears the connection mid-frame
//!                             every 4th request (client-side fault)
//! delay:shard=0,every=7,ms=20 delay every 7th reply write by 20 ms
//! dup:shard=0,every=9         write every 9th reply frame twice
//! ```
//!
//! A [`ChaosInjector`] compiled from a plan is shared with the server's
//! shard workers and connection threads. Injection points poll it with
//! cheap atomics; when no injector is installed the serving stack pays
//! nothing. `kill` and `stall` are **one-shot** (they fire on the first
//! batch/cycle at or past the trigger, then disarm), `tear`/`delay`/
//! `dup` are periodic. Every fired fault is counted so chaos harnesses
//! can assert that the planned faults actually landed.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Highest shard id the injector tracks per-shard state for.
const MAX_SHARDS: usize = 256;

/// When a one-shot fault arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fires at the shard's `n`th batch (1-based) or later.
    Batch(u64),
    /// Fires once the shard's modeled cycle counter reaches `n`.
    Cycle(u64),
}

impl Trigger {
    fn hit(self, batch: u64, cycles: u64) -> bool {
        match self {
            Trigger::Batch(n) => batch >= n,
            Trigger::Cycle(n) => cycles >= n,
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Batch(n) => write!(f, "batch={n}"),
            Trigger::Cycle(n) => write!(f, "cycle={n}"),
        }
    }
}

/// One clause of a fault plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the shard worker thread (one-shot).
    Kill { shard: u16, at: Trigger },
    /// Wedge the shard worker mid-batch for `ms` (one-shot); long
    /// enough stalls trip the supervisor's watchdog.
    Stall { shard: u16, at: Trigger, ms: u64 },
    /// Client-side: tear the connection after a partial frame on every
    /// `every`th request.
    Tear { every: u32 },
    /// Delay every `every`th reply write on the shard by `ms`.
    Delay { shard: u16, every: u32, ms: u64 },
    /// Write every `every`th reply frame on the shard twice.
    Dup { shard: u16, every: u32 },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Kill { shard, at } => write!(f, "kill:shard={shard}@{at}"),
            FaultAction::Stall { shard, at, ms } => write!(f, "stall:shard={shard}@{at},ms={ms}"),
            FaultAction::Tear { every } => write!(f, "tear:every={every}"),
            FaultAction::Delay { shard, every, ms } => {
                write!(f, "delay:shard={shard},every={every},ms={ms}")
            }
            FaultAction::Dup { shard, every } => write!(f, "dup:shard={shard},every={every}"),
        }
    }
}

/// A plan-string parse failure, with the offending clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError {
    clause: String,
    reason: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for PlanError {}

fn err(clause: &str, reason: impl Into<String>) -> PlanError {
    PlanError {
        clause: clause.to_string(),
        reason: reason.into(),
    }
}

/// An ordered list of fault clauses, parsed from the DSL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The parsed clauses, in plan order.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// Parses the semicolon-separated DSL; empty input is an empty
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first malformed clause.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let mut actions = Vec::new();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            actions.push(parse_clause(clause)?);
        }
        Ok(FaultPlan { actions })
    }
}

impl FromStr for FaultPlan {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<FaultPlan, PlanError> {
        FaultPlan::parse(s)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, action) in self.actions.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{action}")?;
        }
        Ok(())
    }
}

/// Parses `verb:k=v[,@]k=v...` into one action. The `@` separating a
/// target from its trigger is sugar for `,`.
fn parse_clause(clause: &str) -> Result<FaultAction, PlanError> {
    let (verb, rest) = clause
        .split_once(':')
        .ok_or_else(|| err(clause, "expected `verb:params`"))?;
    let mut shard: Option<u16> = None;
    let mut at: Option<Trigger> = None;
    let mut every: Option<u32> = None;
    let mut ms: Option<u64> = None;
    for pair in rest.split(['@', ',']) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| err(clause, format!("expected `key=value`, got `{pair}`")))?;
        let parse_num = |v: &str| -> Result<u64, PlanError> {
            v.parse()
                .map_err(|_| err(clause, format!("`{key}` is not a number: `{v}`")))
        };
        match key {
            "shard" => {
                let id = parse_num(value)?;
                if id >= MAX_SHARDS as u64 {
                    return Err(err(clause, format!("shard must be < {MAX_SHARDS}")));
                }
                shard = Some(id as u16);
            }
            "batch" => at = Some(Trigger::Batch(parse_num(value)?)),
            "cycle" => at = Some(Trigger::Cycle(parse_num(value)?)),
            "every" => {
                let n = parse_num(value)?;
                if n == 0 {
                    return Err(err(clause, "`every` must be >= 1"));
                }
                every = Some(n.min(u64::from(u32::MAX)) as u32);
            }
            "ms" => ms = Some(parse_num(value)?),
            other => return Err(err(clause, format!("unknown key `{other}`"))),
        }
    }
    let need_shard = || shard.ok_or_else(|| err(clause, "missing `shard=`"));
    let need_at = || at.ok_or_else(|| err(clause, "missing `@batch=` or `@cycle=`"));
    let need_every = || every.ok_or_else(|| err(clause, "missing `every=`"));
    let need_ms = || ms.ok_or_else(|| err(clause, "missing `ms=`"));
    match verb {
        "kill" => Ok(FaultAction::Kill {
            shard: need_shard()?,
            at: need_at()?,
        }),
        "stall" => Ok(FaultAction::Stall {
            shard: need_shard()?,
            at: need_at()?,
            ms: need_ms()?,
        }),
        "tear" => Ok(FaultAction::Tear {
            every: need_every()?,
        }),
        "delay" => Ok(FaultAction::Delay {
            shard: need_shard()?,
            every: need_every()?,
            ms: need_ms()?,
        }),
        "dup" => Ok(FaultAction::Dup {
            shard: need_shard()?,
            every: need_every()?,
        }),
        other => Err(err(clause, format!("unknown fault verb `{other}`"))),
    }
}

/// What a shard worker should do to itself this batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// Panic the worker thread (the supervisor must recover).
    Panic,
    /// Sleep mid-batch for the given duration (wedges the watchdog).
    Stall(Duration),
}

/// What a connection thread should do to the next reply write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplyFault {
    /// Sleep before writing the frame.
    pub delay: Option<Duration>,
    /// Write the frame twice.
    pub duplicate: bool,
}

impl ReplyFault {
    fn is_noop(self) -> bool {
        self.delay.is_none() && !self.duplicate
    }
}

/// Counts of faults actually fired, for end-of-run accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Worker panics injected.
    pub kills: u64,
    /// Worker stalls injected.
    pub stalls: u64,
    /// Reply writes delayed.
    pub delays: u64,
    /// Reply frames duplicated.
    pub dups: u64,
}

/// A compiled fault plan with runtime trigger state.
///
/// Shared as an `Arc` between the chaos harness and the server; all
/// state is interior atomics so injection points take no locks.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: FaultPlan,
    /// One "already fired" latch per one-shot clause (index-aligned
    /// with `plan.actions`; periodic clauses never set theirs).
    fired: Vec<AtomicBool>,
    /// Batches seen per shard (drives `@batch=` triggers).
    batches: Vec<AtomicU64>,
    /// Replies seen per shard (drives `every=` cadences).
    replies: Vec<AtomicU64>,
    kills: AtomicU64,
    stalls: AtomicU64,
    delays: AtomicU64,
    dups: AtomicU64,
}

impl ChaosInjector {
    /// Compiles a plan into a shareable injector.
    #[must_use]
    pub fn new(plan: FaultPlan) -> ChaosInjector {
        ChaosInjector {
            fired: plan
                .actions
                .iter()
                .map(|_| AtomicBool::new(false))
                .collect(),
            batches: (0..MAX_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            replies: (0..MAX_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            plan,
            kills: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            dups: AtomicU64::new(0),
        }
    }

    /// The plan this injector was compiled from.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Polled by a shard worker once per popped batch, *before*
    /// compute. `total_cycles` is the shard's modeled cycle counter.
    /// One-shot faults fire at most once across the shard's lifetime,
    /// surviving worker restarts (the latch lives here, not in the
    /// worker).
    pub fn worker_fault(&self, shard: u16, total_cycles: u64) -> Option<WorkerFault> {
        let slot = usize::from(shard) % MAX_SHARDS;
        let batch = self.batches[slot].fetch_add(1, Ordering::Relaxed) + 1;
        for (i, action) in self.plan.actions.iter().enumerate() {
            let fault = match *action {
                FaultAction::Kill { shard: s, at } if s == shard && at.hit(batch, total_cycles) => {
                    WorkerFault::Panic
                }
                FaultAction::Stall { shard: s, at, ms }
                    if s == shard && at.hit(batch, total_cycles) =>
                {
                    WorkerFault::Stall(Duration::from_millis(ms))
                }
                _ => continue,
            };
            if self.fired[i].swap(true, Ordering::Relaxed) {
                continue; // one-shot already spent
            }
            match fault {
                WorkerFault::Panic => self.kills.fetch_add(1, Ordering::Relaxed),
                WorkerFault::Stall(_) => self.stalls.fetch_add(1, Ordering::Relaxed),
            };
            return Some(fault);
        }
        None
    }

    /// Polled by a connection thread before each reply write for the
    /// given shard. Periodic `delay`/`dup` clauses fire on their
    /// cadence; multiple matching clauses merge into one fault.
    pub fn reply_fault(&self, shard: u16) -> Option<ReplyFault> {
        let slot = usize::from(shard) % MAX_SHARDS;
        let reply = self.replies[slot].fetch_add(1, Ordering::Relaxed) + 1;
        let mut fault = ReplyFault::default();
        for action in &self.plan.actions {
            match *action {
                FaultAction::Delay {
                    shard: s,
                    every,
                    ms,
                } if s == shard && reply.is_multiple_of(u64::from(every)) => {
                    fault.delay = Some(Duration::from_millis(ms));
                    self.delays.fetch_add(1, Ordering::Relaxed);
                }
                FaultAction::Dup { shard: s, every }
                    if s == shard && reply.is_multiple_of(u64::from(every)) =>
                {
                    fault.duplicate = true;
                    self.dups.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        (!fault.is_noop()).then_some(fault)
    }

    /// The client-side `tear:every=N` cadence, if the plan has one.
    #[must_use]
    pub fn tear_every(&self) -> Option<u32> {
        self.plan.actions.iter().find_map(|a| match a {
            FaultAction::Tear { every } => Some(*every),
            _ => None,
        })
    }

    /// Faults actually fired so far.
    pub fn counts(&self) -> ChaosCounts {
        ChaosCounts {
            kills: self.kills.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            dups: self.dups.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_display() {
        let text = "kill:shard=0@batch=5;stall:shard=1@cycle=20000,ms=800;tear:every=4;\
                    delay:shard=0,every=7,ms=20;dup:shard=2,every=9";
        let plan: FaultPlan = text.parse().expect("valid plan");
        assert_eq!(plan.actions.len(), 5);
        let reparsed: FaultPlan = plan.to_string().parse().expect("canonical form reparses");
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn empty_and_whitespace_plans_are_empty() {
        assert_eq!(FaultPlan::parse("").expect("ok").actions.len(), 0);
        assert_eq!(FaultPlan::parse(" ; ; ").expect("ok").actions.len(), 0);
    }

    #[test]
    fn malformed_clauses_name_the_problem() {
        for (text, needle) in [
            ("explode:shard=0@batch=1", "unknown fault verb"),
            ("kill:shard=0", "missing `@batch="),
            ("kill:batch=1", "missing `shard="),
            ("stall:shard=0@batch=1", "missing `ms="),
            ("tear:", "expected `key=value`"),
            ("tear:every=0", "`every` must be >= 1"),
            ("kill:shard=abc@batch=1", "not a number"),
            ("kill:shard=0@batch=1,bogus=2", "unknown key"),
            ("kill", "expected `verb:params`"),
        ] {
            let e = FaultPlan::parse(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text}: {e}");
        }
    }

    #[test]
    fn kill_is_one_shot_and_shard_scoped() {
        let inj = ChaosInjector::new("kill:shard=1@batch=3".parse().expect("plan"));
        // Other shards never fire.
        for _ in 0..10 {
            assert_eq!(inj.worker_fault(0, 0), None);
        }
        // Shard 1: batches 1 and 2 pass, 3 fires, later batches don't.
        assert_eq!(inj.worker_fault(1, 0), None);
        assert_eq!(inj.worker_fault(1, 0), None);
        assert_eq!(inj.worker_fault(1, 0), Some(WorkerFault::Panic));
        assert_eq!(inj.worker_fault(1, 0), None);
        assert_eq!(inj.counts().kills, 1);
    }

    #[test]
    fn cycle_trigger_fires_once_past_threshold() {
        let inj = ChaosInjector::new("stall:shard=0@cycle=1000,ms=50".parse().expect("plan"));
        assert_eq!(inj.worker_fault(0, 999), None);
        assert_eq!(
            inj.worker_fault(0, 1000),
            Some(WorkerFault::Stall(Duration::from_millis(50)))
        );
        assert_eq!(inj.worker_fault(0, 5000), None, "one-shot");
        assert_eq!(inj.counts().stalls, 1);
    }

    #[test]
    fn reply_faults_fire_on_cadence_and_merge() {
        let inj = ChaosInjector::new(
            "delay:shard=0,every=2,ms=5;dup:shard=0,every=4"
                .parse()
                .unwrap(),
        );
        let mut delays = 0;
        let mut dups = 0;
        for _ in 0..8 {
            if let Some(fault) = inj.reply_fault(0) {
                if fault.delay.is_some() {
                    delays += 1;
                }
                if fault.duplicate {
                    dups += 1;
                }
            }
        }
        assert_eq!((delays, dups), (4, 2));
        // Reply 4 and 8 merged both faults into one ReplyFault.
        assert_eq!(
            inj.counts(),
            ChaosCounts {
                kills: 0,
                stalls: 0,
                delays: 4,
                dups: 2
            }
        );
        assert_eq!(inj.reply_fault(1), None, "other shards untouched");
    }

    #[test]
    fn tear_cadence_is_exposed_for_clients() {
        let inj = ChaosInjector::new("tear:every=4".parse().expect("plan"));
        assert_eq!(inj.tear_every(), Some(4));
        let none = ChaosInjector::new(FaultPlan::default());
        assert_eq!(none.tear_every(), None);
    }
}
