//! The paper's §6 future work, realized: a Wallace-tree multiplier
//! whose final carry-propagate adder is an Almost Correct Adder.
//!
//! Run with: `cargo run --release --example speculative_multiplier`

use rand::{Rng, SeedableRng};
use vlsa::adders::PrefixArch;
use vlsa::multiplier::{wallace_multiplier, FinalAdder, SpeculativeMultiplier};
use vlsa::runstats::min_bound_for_prob;
use vlsa::techlib::TechLibrary;
use vlsa::timing::analyze;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nbits = 32;
    // Window for the 2n-bit final addition at the 99.99% design point.
    let window = min_bound_for_prob(2 * nbits, 0.9999) + 1;

    // Word-level: multiply and watch the detector.
    let m = SpeculativeMultiplier::new(nbits, window)?;
    let r = m.mul(0xDEAD_BEEF, 0x0012_3456);
    println!(
        "0xDEADBEEF * 0x123456 = {:#x} (flagged: {}, correct: {})",
        r.speculative,
        r.error_detected,
        r.is_correct()
    );
    assert!(r.is_correct());

    // Error statistics over a million products.
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let trials = 1_000_000;
    let mut wrong = 0u64;
    let mut flagged = 0u64;
    for _ in 0..trials {
        let r = m.mul(rng.gen(), rng.gen());
        wrong += !r.is_correct() as u64;
        flagged += r.error_detected as u64;
    }
    println!(
        "{trials} random products: {wrong} wrong, {flagged} flagged \
         (every wrong product is flagged: {})",
        wrong <= flagged
    );

    // Gate level: compare the exact and speculative multipliers.
    let lib = TechLibrary::umc180();
    let exact = wallace_multiplier(nbits, FinalAdder::Exact(PrefixArch::KoggeStone))
        .simplified()
        .with_fanout_limit(8);
    let spec = wallace_multiplier(nbits, FinalAdder::Speculative { window })
        .simplified()
        .with_fanout_limit(8);
    let te = analyze(&exact, &lib)?.max_delay_ps;
    let ts = analyze(&spec, &lib)?.max_delay_ps;
    println!(
        "\n{nbits}x{nbits} Wallace multiplier: exact {te:.0} ps, speculative {ts:.0} ps \
         ({:.2}x)",
        te / ts
    );
    println!(
        "The reduction tree dominates the critical path, so the multiplier \
         gains less than the bare adder — the Amdahl lesson behind the \
         paper's focus on addition."
    );
    Ok(())
}
