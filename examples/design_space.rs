//! Design-space exploration: sweep the speculation window of a 64-bit
//! ACA and print the accuracy/delay/area tradeoff — the knob the paper's
//! Table 1 sets by probability target.
//!
//! Run with: `cargo run --release --example design_space`

use vlsa::core::almost_correct_adder;
use vlsa::runstats::{min_bound_for_prob, prob_longest_run_gt};
use vlsa::techlib::TechLibrary;
use vlsa::timing::{analyze, area};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nbits = 64;
    let lib = TechLibrary::umc180();
    let exact = vlsa::adders::prefix_adder(nbits, vlsa::adders::PrefixArch::KoggeStone)
        .with_fanout_limit(8);
    let t_exact = analyze(&exact, &lib)?.max_delay_ps;
    let a_exact = area(&exact, &lib)?.total;

    println!("64-bit ACA window sweep (exact Kogge-Stone: {t_exact:.0} ps, {a_exact:.0} NAND2e)\n");
    println!(
        "{:>7} {:>13} {:>10} {:>9} {:>11} {:>10}",
        "window", "P(error)", "delay(ps)", "speedup", "area", "area ratio"
    );
    for window in [2usize, 4, 6, 8, 12, 16, 20, 24, 32, 48, 64] {
        let nl = almost_correct_adder(nbits, window).with_fanout_limit(8);
        let t = analyze(&nl, &lib)?.max_delay_ps;
        let a = area(&nl, &lib)?.total;
        println!(
            "{window:>7} {:>13.3e} {t:>10.0} {:>8.2}x {a:>11.0} {:>10.2}",
            prob_longest_run_gt(nbits, window - 1),
            t_exact / t,
            a / a_exact
        );
    }

    println!("\nTable 1 design points for common targets:");
    for accuracy in [0.99, 0.999, 0.9999, 0.999999] {
        let w = min_bound_for_prob(nbits, accuracy) + 1;
        println!("  accuracy {accuracy:<9} -> window {w}");
    }
    println!(
        "\nEach extra window bit halves the error rate but only nudges delay \
         (log k), which is the whole premise of variable-latency speculation."
    );
    Ok(())
}
