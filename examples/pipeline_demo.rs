//! The variable-latency pipeline in action: VALID/STALL handshake,
//! a Fig. 7-style timing diagram, and throughput on random streams.
//!
//! Run with: `cargo run --release --example pipeline_demo`

use rand::SeedableRng;
use vlsa::core::SpeculativeAdder;
use vlsa::pipeline::{adversarial_operands, random_operands, VlsaPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately narrow window so the demo shows a stall quickly.
    let adder = SpeculativeAdder::new(16, 4)?;
    let mut pipe = VlsaPipeline::new(adder);

    // Paper Fig. 7: three operand pairs, the middle one errs.
    let trace = pipe.run(&[(0x0012, 0x0034), (0x7FFF, 0x0001), (0x0100, 0x0200)]);
    println!("Fig. 7 timing diagram (op 2 triggers recovery):\n");
    print!("{}", trace.render_timing_diagram(8));
    println!("\n{trace}\n");

    // Realistic design point on a long random stream.
    let adder = SpeculativeAdder::for_accuracy(64, 0.9999)?;
    println!(
        "64-bit VLSA at 99.99% accuracy (window {}):",
        adder.window()
    );
    let mut pipe = VlsaPipeline::new(adder);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2008);
    let trace = pipe.run(&random_operands(64, 500_000, &mut rng));
    println!("  {trace}");
    assert!(trace.average_latency() < 1.001);

    // And the worst case, which degrades gracefully to 2 cycles/op.
    let mut pipe = VlsaPipeline::new(SpeculativeAdder::new(64, 8)?);
    let trace = pipe.run(&adversarial_operands(64, 1_000));
    println!("  adversarial stream: {trace}");
    Ok(())
}
