//! The paper's §1 motivation: a ciphertext-only frequency-analysis
//! attack whose decryption loop runs on an unreliable (almost correct)
//! adder and still recovers the key.
//!
//! Run with: `cargo run --release --example crypto_attack`

use vlsa::crypto::{
    candidate_keys, run_attack, AcaAdder32, ArxCipher, ExactAdder32, SAMPLE_CORPUS,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The victim encrypts an English corpus under a secret key.
    let secret = [0x1357_9BDF, 0x2468_ACE0, 0xFEDC_BA98, 0xDEAD_BEEF];
    let cipher = ArxCipher::new(secret, 12);
    let mut enc = ExactAdder32::new();
    let ciphertext = cipher.encrypt_bytes(SAMPLE_CORPUS.as_bytes(), &mut enc);

    // The attacker has pruned the keyspace to 64 candidates and tries
    // each one, scoring letter frequencies of the decryption.
    let candidates = candidate_keys(secret, 6);
    println!(
        "{} ciphertext blocks, {} candidate keys",
        ciphertext.len(),
        candidates.len()
    );

    // Decryption kernel on an Almost Correct Adder (window sized for
    // 99.9% per-addition accuracy — deliberately loose to show errors).
    let mut aca = AcaAdder32::for_accuracy(0.999)?;
    let outcome = run_attack(&ciphertext, &candidates, 12, &mut aca);
    println!(
        "speculative search: {} additions, {} of them wrong ({:.2e} per add)",
        outcome.additions,
        outcome.adder_errors,
        outcome.adder_errors as f64 / outcome.additions as f64
    );
    println!(
        "true key rank = {:?}  (best score {:.3}, runner-up {:.3})",
        outcome.rank_of(secret),
        outcome.ranking[0].score,
        outcome.ranking[1].score
    );
    assert_eq!(outcome.best_key(), secret);

    // Once the key is known, fix any mangled blocks with an exact adder.
    let mut exact = ExactAdder32::new();
    let plain = ArxCipher::new(outcome.best_key(), 12).decrypt_bytes(&ciphertext, &mut exact);
    let text = String::from_utf8_lossy(&plain);
    println!("\nrecovered plaintext starts: {:?}...", &text[..60]);
    assert!(text.starts_with("The evening fog"));
    Ok(())
}
