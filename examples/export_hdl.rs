//! Export generated circuits as synthesizable HDL — the last mile of
//! the paper's C++ → VHDL flow.
//!
//! Run with: `cargo run --example export_hdl`
//! Files are written under `target/hdl/`.

use std::fs;
use std::path::Path;
use vlsa::core::{almost_correct_adder, vlsa_adder};
use vlsa::hdl::{to_verilog, to_vhdl, verilog_testbench};
use vlsa::seq::{sequential_vlsa, to_verilog_seq};
use vlsa::techlib::TechLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("target/hdl");
    fs::create_dir_all(out)?;

    let aca = almost_correct_adder(64, 18);
    let vlsa = vlsa_adder(64, 18).with_fanout_limit(8);

    for (name, text) in [
        ("aca64.v", to_verilog(&aca)),
        ("aca64.vhd", to_vhdl(&aca)),
        ("vlsa64.v", to_verilog(&vlsa)),
        ("vlsa64.vhd", to_vhdl(&vlsa)),
    ] {
        let path = out.join(name);
        fs::write(&path, &text)?;
        println!("wrote {} ({} lines)", path.display(), text.lines().count());
    }

    // A self-checking testbench for the ACA (run under any Verilog
    // simulator to validate the export against this workspace's model).
    let tb_path = out.join("aca64_tb.v");
    fs::write(&tb_path, verilog_testbench(&aca, 32, 2008)?)?;
    println!("wrote {}", tb_path.display());

    // The sequential Fig. 6 circuit, clocked wrapper included.
    let seq_path = out.join("vlsa64_seq.v");
    fs::write(&seq_path, to_verilog_seq(&sequential_vlsa(64, 18)?))?;
    println!("wrote {}", seq_path.display());

    // Ship the technology library alongside, in its Liberty-lite form.
    let lib_path = out.join("umc180.lib");
    fs::write(&lib_path, TechLibrary::umc180().to_liberty())?;
    println!("wrote {}", lib_path.display());

    // And a DOT rendering of a small ACA for documentation figures.
    let dot_path = out.join("aca8.dot");
    fs::write(&dot_path, almost_correct_adder(8, 3).to_dot())?;
    println!("wrote {} (render with `dot -Tsvg`)", dot_path.display());
    Ok(())
}
