//! Quickstart: the speculative adder in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use vlsa::core::{almost_correct_adder, error_detector, SpeculativeAdder};
use vlsa::techlib::TechLibrary;
use vlsa::timing::{analyze, area};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Word-level: add with a 64-bit ACA sized for 99.99% accuracy.
    let adder = SpeculativeAdder::for_accuracy(64, 0.9999)?;
    println!(
        "64-bit speculative adder: window = {} bits, predicted error rate = {:.2e}\n",
        adder.window(),
        adder.detection_probability()
    );

    let r = adder.add_u64(0x0123_4567_89AB_CDEF, 0x1111_2222_3333_4444);
    println!(
        "typical add : spec = {:#x}, exact = {:#x}, flagged = {}",
        r.speculative, r.exact, r.error_detected
    );
    assert!(r.is_correct());

    // An adversarial pair that carries across the whole word.
    let r = adder.add_u64(u64::MAX / 2, 1);
    println!(
        "worst case  : spec = {:#x}, exact = {:#x}, flagged = {}",
        r.speculative, r.exact, r.error_detected
    );
    assert!(r.error_detected, "wrong results are always flagged");

    // --- 2. Gate level: generate the circuits and time them.
    let lib = TechLibrary::umc180();
    let window = adder.window();
    let aca = almost_correct_adder(64, window).with_fanout_limit(8);
    let det = error_detector(64, window).with_fanout_limit(8);
    let exact =
        vlsa::adders::prefix_adder(64, vlsa::adders::PrefixArch::KoggeStone).with_fanout_limit(8);

    println!("\ncircuit            delay(ps)  area(NAND2e)  gates");
    for (name, nl) in [
        ("kogge-stone (exact)", &exact),
        ("aca", &aca),
        ("detector", &det),
    ] {
        let t = analyze(nl, &lib)?;
        let a = area(nl, &lib)?;
        println!(
            "{name:<18} {:>10.0} {:>13.0} {:>6}",
            t.max_delay_ps, a.total, a.gates
        );
    }
    println!(
        "\nSpeculation pays: the ACA and the detector are both faster than the \
         exact adder,\nso the VLSA clock can be ~1.4-2.5x shorter and errors \
         (p < 1e-4) just cost one extra cycle."
    );
    Ok(())
}
