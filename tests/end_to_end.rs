//! End-to-end flow tests: statistics → window sizing → circuit
//! generation → timing/area → pipeline — the whole paper in one pass.

use rand::SeedableRng;
use vlsa::core::{almost_correct_adder, error_detector, SpeculativeAdder};
use vlsa::pipeline::{random_operands, EffectiveLatency, VlsaPipeline};
use vlsa::runstats::{min_bound_for_prob, prob_longest_run_gt};
use vlsa::sim::check_adder_random;
use vlsa::techlib::TechLibrary;
use vlsa::timing::{analyze, area};

/// The full design flow at the paper's 64-bit / 99.99% design point.
#[test]
fn paper_design_flow_64_bits() {
    // 1. Statistics: size the window.
    let nbits = 64;
    let window = min_bound_for_prob(nbits, 0.9999) + 1;
    assert!(prob_longest_run_gt(nbits, window - 1) <= 1e-4);

    // 2. Circuits.
    let lib = TechLibrary::umc180();
    let aca = almost_correct_adder(nbits, window).with_fanout_limit(8);
    let det = error_detector(nbits, window).with_fanout_limit(8);
    let trad = vlsa::adders::prefix_adder(nbits, vlsa::adders::PrefixArch::KoggeStone)
        .with_fanout_limit(8);

    // 3. Timing: the speculation and detection paths are both shorter
    // than the exact adder (this is what makes the VLSA clock short).
    let t_aca = analyze(&aca, &lib).expect("timing").max_delay_ps;
    let t_det = analyze(&det, &lib).expect("timing").max_delay_ps;
    let t_trad = analyze(&trad, &lib).expect("timing").max_delay_ps;
    assert!(t_aca < t_trad, "{t_aca} vs {t_trad}");
    assert!(t_det < t_trad, "{t_det} vs {t_trad}");

    // 4. Area: the ACA is not larger than the traditional adder.
    let a_aca = area(&aca, &lib).expect("area").total;
    let a_trad = area(&trad, &lib).expect("area").total;
    assert!(a_aca <= a_trad * 1.1, "{a_aca} vs {a_trad}");

    // 5. Functional error rate at the design point.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let report = check_adder_random(&aca, nbits, 50_000, &mut rng).expect("simulate");
    assert!(report.error_rate() <= 2e-4, "rate {}", report.error_rate());

    // 6. Pipeline: near-single-cycle average latency, net speedup.
    let adder = SpeculativeAdder::new(nbits, window).expect("valid");
    let mut pipe = VlsaPipeline::new(adder);
    let trace = pipe.run(&random_operands(nbits, 200_000, &mut rng));
    assert!(trace.average_latency() < 1.001);
    let eff = EffectiveLatency {
        t_clock_ps: t_aca.max(t_det),
        t_traditional_ps: t_trad,
    };
    let speedup = eff.speedup(&trace).expect("non-empty trace");
    assert!(speedup > 1.2, "speedup {speedup}");
}

/// The gate-level error rate agrees with the software model and the
/// exact prediction across several design points.
#[test]
fn predictions_models_and_gates_agree() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    for (nbits, window) in [(32usize, 6usize), (64, 9)] {
        let predicted = prob_longest_run_gt(nbits, window - 1);
        // Gate level.
        let nl = almost_correct_adder(nbits, window);
        let gate = check_adder_random(&nl, nbits, 100_000, &mut rng)
            .expect("simulate")
            .error_rate();
        // Software model (detection rate upper-bounds error rate).
        let adder = SpeculativeAdder::new(nbits, window).expect("valid");
        let ops = random_operands(nbits, 100_000, &mut rng);
        let detected = ops
            .iter()
            .filter(|&&(a, b)| adder.add_u64(a, b).error_detected)
            .count() as f64
            / ops.len() as f64;
        assert!(
            gate <= detected + 3e-3,
            "gate {gate} vs detected {detected}"
        );
        assert!(
            (detected - predicted).abs() < 0.3 * predicted + 1e-3,
            "detected {detected} vs predicted {predicted} (n={nbits} w={window})"
        );
    }
}

/// Scaling shape: ACA delay is flat in width while the exact adder
/// grows logarithmically, so the speedup widens (paper Fig. 8).
#[test]
fn speedup_shape_versus_width() {
    let lib = TechLibrary::umc180();
    let mut last_speedup = 0.0;
    for nbits in [64usize, 256, 1024] {
        let window = min_bound_for_prob(nbits, 0.9999) + 1;
        let aca = almost_correct_adder(nbits, window).with_fanout_limit(8);
        let trad = vlsa::adders::prefix_adder(nbits, vlsa::adders::PrefixArch::KoggeStone)
            .with_fanout_limit(8);
        let speedup = analyze(&trad, &lib).expect("t").max_delay_ps
            / analyze(&aca, &lib).expect("t").max_delay_ps;
        assert!(speedup > last_speedup, "speedup must widen: {speedup}");
        last_speedup = speedup;
    }
    assert!(last_speedup > 2.0);
}
