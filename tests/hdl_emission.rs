//! HDL emission across generated circuits: structural sanity of the
//! Verilog and VHDL produced for every architecture in the workspace.

use vlsa::adders::{AdderArch, PrefixArch};
use vlsa::core::{almost_correct_adder, vlsa_adder};
use vlsa::hdl::{to_verilog, to_vhdl};
use vlsa::netlist::{CellKind, Netlist};

fn assign_count(verilog: &str) -> usize {
    verilog.matches("assign ").count()
}

fn expected_assigns(nl: &Netlist) -> usize {
    // One per non-input node (gates + constants) + one per input bit
    // binding + one per output binding.
    let non_input = nl
        .nodes()
        .filter(|(_, n)| n.kind() != CellKind::Input)
        .count();
    non_input + nl.primary_inputs().len() + nl.primary_outputs().len()
}

#[test]
fn verilog_structure_for_all_architectures() {
    for arch in [
        AdderArch::Ripple,
        AdderArch::Cla { group: 4 },
        AdderArch::Prefix(PrefixArch::KoggeStone),
        AdderArch::Prefix(PrefixArch::BrentKung),
    ] {
        let nl = arch.generate(24);
        let v = to_verilog(&nl);
        assert_eq!(assign_count(&v), expected_assigns(&nl), "{arch}");
        assert!(v.contains("input [23:0] a;"), "{arch}");
        assert!(v.contains("output [23:0] s;"), "{arch}");
        assert!(v.contains("output cout;"), "{arch}");
        assert!(v.trim_end().ends_with("endmodule"), "{arch}");
    }
}

#[test]
fn vhdl_structure_for_speculative_circuits() {
    let aca = almost_correct_adder(32, 8);
    let text = to_vhdl(&aca);
    assert!(text.contains("entity aca32w8 is"));
    assert!(text.contains("a : in std_logic_vector(31 downto 0)"));
    assert!(text.contains("s : out std_logic_vector(31 downto 0)"));
    assert_eq!(text.matches("signal n").count(), aca.len());

    let vlsa = vlsa_adder(32, 8);
    let text = to_vhdl(&vlsa);
    assert!(text.contains("err : out std_logic"));
    assert!(text.contains("spec : out std_logic_vector(31 downto 0)"));
}

#[test]
fn emission_is_deterministic() {
    let a = to_verilog(&almost_correct_adder(16, 5));
    let b = to_verilog(&almost_correct_adder(16, 5));
    assert_eq!(a, b);
}

#[test]
fn buffered_netlists_emit_cleanly() {
    let nl = vlsa_adder(48, 7).with_fanout_limit(4);
    let v = to_verilog(&nl);
    assert_eq!(assign_count(&v), expected_assigns(&nl));
    // Buffers appear as plain copies.
    assert!(nl.nodes().any(|(_, node)| node.kind() == CellKind::Buf));
}
