//! Cross-crate equivalence: every adder in the workspace — reliable
//! baselines, the ACA at full window, VLSA recovery, and their
//! fanout-buffered forms — computes the same function.

use rand::SeedableRng;
use vlsa::adders::{AdderArch, PrefixArch};
use vlsa::core::{almost_correct_adder, vlsa_adder};
use vlsa::sim::{check_adder_random, equiv_random};

#[test]
fn all_baselines_are_pairwise_equivalent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let nbits = 48;
    let archs = [
        AdderArch::Ripple,
        AdderArch::CarrySkip { block: 5 },
        AdderArch::CarrySelect { block: 6 },
        AdderArch::Cla { group: 4 },
        AdderArch::ConditionalSum,
        AdderArch::Prefix(PrefixArch::Sklansky),
        AdderArch::Prefix(PrefixArch::KoggeStone),
        AdderArch::Prefix(PrefixArch::BrentKung),
        AdderArch::Prefix(PrefixArch::HanCarlson),
        AdderArch::Prefix(PrefixArch::LadnerFischer),
        AdderArch::Prefix(PrefixArch::Serial),
    ];
    let reference = archs[0].generate(nbits);
    for arch in &archs[1..] {
        equiv_random(&reference, &arch.generate(nbits), 6, &mut rng)
            .unwrap_or_else(|e| panic!("{arch} differs from ripple: {e}"));
    }
}

#[test]
fn fanout_buffering_preserves_function() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for arch in [
        AdderArch::Prefix(PrefixArch::Sklansky),
        AdderArch::Prefix(PrefixArch::KoggeStone),
        AdderArch::Cla { group: 4 },
    ] {
        let nl = arch.generate(40);
        for max_fanout in [2usize, 4, 8] {
            let buffered = nl.with_fanout_limit(max_fanout);
            assert!(buffered.max_fanout() <= max_fanout, "{arch}");
            equiv_random(&nl, &buffered, 4, &mut rng)
                .unwrap_or_else(|e| panic!("{arch} fo={max_fanout}: {e}"));
        }
    }
}

#[test]
fn aca_with_full_window_matches_exact_adders() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let nbits = 33;
    let aca = almost_correct_adder(nbits, nbits);
    let exact = AdderArch::Prefix(PrefixArch::BrentKung).generate(nbits);
    equiv_random(&aca, &exact, 8, &mut rng).expect("full-window ACA is exact");
}

#[test]
fn vlsa_recovery_output_is_exact_across_widths_and_windows() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for (nbits, window) in [(17usize, 3usize), (64, 7), (96, 10), (160, 13)] {
        let nl = vlsa_adder(nbits, window);
        let report = check_adder_random(&nl, nbits, 128, &mut rng).expect("simulate");
        assert!(
            report.is_exact(),
            "vlsa {nbits}/{window}: {:?}",
            report.first_failure
        );
    }
}

#[test]
fn buffered_vlsa_is_still_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let nl = vlsa_adder(64, 8).with_fanout_limit(6);
    let report = check_adder_random(&nl, 64, 128, &mut rng).expect("simulate");
    assert!(report.is_exact());
}
